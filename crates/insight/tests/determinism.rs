//! The critical-path analysis must be a *stable fingerprint* of a run:
//! identical binding-stage histograms and window attributions across every
//! `FASTGL_PREFETCH` × `FASTGL_THREADS` combination, and per-window
//! visible times that sum to the epoch's reported simulated total with
//! exact integer equality — for the plain FastGL pipeline and for the
//! overlapped (dedicated-sampler) configuration.

use fastgl_core::system::TrainingSystem;
use fastgl_core::{CachePolicy, CacheRankPolicy, FastGl, FastGlConfig, Pipeline, PipelinePolicy};
use fastgl_gpusim::SimTime;
use fastgl_graph::{Dataset, DatasetBundle};
use fastgl_insight::critical_path;
use std::sync::Mutex;

/// Serializes tests: the tensor thread override is process-global.
static LOCK: Mutex<()> = Mutex::new(());

fn data() -> DatasetBundle {
    Dataset::Products.generate_scaled(1.0 / 1024.0, 11)
}

fn config(prefetch: usize) -> FastGlConfig {
    let mut cfg = FastGlConfig::default()
        .with_batch_size(32)
        .with_fanouts(vec![3, 5])
        .with_prefetch_windows(prefetch);
    // Small windows so the epoch splits into several of them and the
    // histogram has something to count.
    cfg.reorder_window = 2;
    cfg
}

const MATRIX: [(usize, usize); 4] = [(1, 1), (1, 8), (4, 1), (4, 8)];

#[test]
fn binding_histogram_is_identical_across_prefetch_and_threads() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let bundle = data();
    let mut reference: Option<critical_path::CriticalPath> = None;
    for (prefetch, threads) in MATRIX {
        fastgl_tensor::parallel::set_num_threads(threads);
        let mut sys = FastGl::new(config(prefetch).with_threads(threads));
        let stats = sys.run_epoch(&bundle, 0);
        let trace = sys.window_trace().expect("epoch ran");
        let cp = critical_path::analyze(trace);
        fastgl_tensor::parallel::set_num_threads(0);

        assert!(
            cp.histogram.total() > 1,
            "need several windows to attribute"
        );
        // The attribution must reproduce the epoch's own accounting
        // exactly — no tolerance, integer nanoseconds.
        assert_eq!(cp.breakdown, stats.breakdown);
        assert_eq!(cp.visible_total(), stats.total());
        match &reference {
            None => reference = Some(cp),
            Some(r) => {
                assert_eq!(
                    cp.histogram, r.histogram,
                    "binding histogram changed at prefetch={prefetch} threads={threads}"
                );
                assert_eq!(
                    cp, *r,
                    "full attribution changed at prefetch={prefetch} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn overlapped_pipeline_attribution_sums_exactly_and_is_stable() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let bundle = data();
    let policy = PipelinePolicy {
        use_match: false,
        use_reorder: false,
        cache: CachePolicy::None,
        sampler_gpus: 1,
        overlap_sample: true,
        cache_rank: CacheRankPolicy::Degree,
    };
    let mut reference: Option<critical_path::CriticalPath> = None;
    for (prefetch, threads) in MATRIX {
        fastgl_tensor::parallel::set_num_threads(threads);
        let mut sys = Pipeline::new(
            "factored",
            config(prefetch).with_threads(threads),
            policy,
        );
        let stats = sys.run_epoch(&bundle, 0);
        let trace = sys.window_trace().expect("epoch ran");
        let cp = critical_path::analyze(trace);
        fastgl_tensor::parallel::set_num_threads(0);

        assert!(cp.overlap_sample);
        assert_eq!(cp.breakdown, stats.breakdown);
        assert_eq!(cp.visible_total(), stats.total());
        assert!(
            cp.hidden_sample > SimTime::ZERO,
            "the dedicated sampler must hide some sampling"
        );
        // Partitioning the total by binding stage conserves it exactly.
        let partitioned: SimTime = critical_path::BindingStage::all()
            .into_iter()
            .map(|s| cp.bound_time(s))
            .sum();
        assert_eq!(partitioned, cp.visible_total());
        match &reference {
            None => reference = Some(cp),
            Some(r) => assert_eq!(
                cp, *r,
                "overlapped attribution changed at prefetch={prefetch} threads={threads}"
            ),
        }
    }
}
