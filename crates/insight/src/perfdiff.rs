//! The noise-aware perf-regression gate over `results/*.json` reports.
//!
//! Every `fastgl-bench` experiment persists its tables as a JSON report.
//! Those cells split into two populations with very different statistics:
//!
//! * **simulated** values (times, bytes, ratios, percentages derived from
//!   [`SimTime`](fastgl_gpusim::SimTime)) are *deterministic* — the same
//!   tree must reproduce them bit-for-bit on any machine, at any thread
//!   count. They diff under the **exact tier**: any change is a
//!   regression (improvements included, because an unexplained change in
//!   a pinned quantity means the model changed and the baseline must be
//!   re-committed deliberately).
//! * **wall-clock** values vary run to run and machine to machine. They
//!   live in columns whose headers contain `wall` (a naming convention
//!   the experiments follow) and are only compared when the caller opts
//!   in with a relative tolerance ([`DiffOptions::wall_tol`]), direction
//!   aware: a time growing past the tolerance is a regression, as is a
//!   `speedup` shrinking past it. Without a tolerance, wall cells are
//!   counted and skipped.
//! * compound `busy/stall` cells are informational and never compared.
//!
//! Reports also carry a **provenance** stamp (scale profile, thread/
//! prefetch overrides, git revision). Comparing runs from different scale
//! profiles is apples-to-oranges — the gate refuses rather than reporting
//! nonsense regressions.

use crate::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// One table of a parsed report document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDoc {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Formatted cell strings.
    pub rows: Vec<Vec<String>>,
}

/// A parsed `results/<id>.json` report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportDoc {
    /// Experiment id.
    pub id: String,
    /// One-line description.
    pub description: String,
    /// The tables.
    pub tables: Vec<TableDoc>,
    /// Provenance stamp, if the writing build recorded one.
    pub provenance: Option<BTreeMap<String, String>>,
}

/// Parses a report JSON document.
///
/// # Errors
///
/// Returns a description of the first syntax or shape error.
pub fn parse_report(text: &str) -> Result<ReportDoc, String> {
    let v = json::parse(text)?;
    let str_field = |obj: &Value, key: &str| -> Result<String, String> {
        obj.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing string field '{key}'"))
    };
    let id = str_field(&v, "id")?;
    let description = str_field(&v, "description")?;
    let mut tables = Vec::new();
    for t in v
        .get("tables")
        .and_then(Value::as_arr)
        .ok_or("missing 'tables' array")?
    {
        let str_vec = |key: &str| -> Result<Vec<String>, String> {
            t.get(key)
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("table missing '{key}'"))?
                .iter()
                .map(|c| {
                    c.as_str()
                        .map(str::to_string)
                        .ok_or("non-string cell".into())
                })
                .collect()
        };
        let mut rows = Vec::new();
        for r in t
            .get("rows")
            .and_then(Value::as_arr)
            .ok_or("table missing 'rows'")?
        {
            let cells: Result<Vec<String>, String> = r
                .as_arr()
                .ok_or("row is not an array")?
                .iter()
                .map(|c| {
                    c.as_str()
                        .map(str::to_string)
                        .ok_or("non-string cell".into())
                })
                .collect();
            rows.push(cells?);
        }
        tables.push(TableDoc {
            title: str_field(t, "title")?,
            headers: str_vec("headers")?,
            rows,
        });
    }
    let provenance = v.get("provenance").map(|p| match p {
        Value::Obj(m) => m
            .iter()
            .map(|(k, val)| {
                let s = match val {
                    Value::Str(s) => s.clone(),
                    Value::Bool(b) => b.to_string(),
                    Value::Num(n) => format!("{n}"),
                    other => format!("{other:?}"),
                };
                (k.clone(), s)
            })
            .collect(),
        _ => BTreeMap::new(),
    });
    Ok(ReportDoc {
        id,
        description,
        tables,
        provenance,
    })
}

/// How a column's cells are compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Deterministic simulated value: any string difference fails.
    Exact,
    /// Wall-clock value: compared only under [`DiffOptions::wall_tol`].
    Wall,
    /// Compound/diagnostic cell: never compared.
    Informational,
}

/// Classifies a column header into its comparison tier.
///
/// Convention (enforced by the experiments): wall-clock columns say
/// `wall` in the header; compound busy/stall diagnostics say `busy/stall`.
/// Everything else is simulated and exact.
pub fn tier(header: &str) -> Tier {
    let h = header.to_ascii_lowercase();
    if h.contains("busy/stall") {
        Tier::Informational
    } else if h.contains("wall") {
        Tier::Wall
    } else {
        Tier::Exact
    }
}

/// Parses a formatted report cell into a comparable magnitude.
///
/// Understands the bench formatters: `2.500s` / `4.218ms` / `3.1us`
/// (seconds), `60.7%`, `1.17x`, `3.00GB` / `1.5MB` / `2KB` / `512B`
/// (bytes), and bare numbers. Returns `None` for labels and compound
/// cells.
pub fn parse_cell(cell: &str) -> Option<f64> {
    let s = cell.trim();
    let tail = |suffix: &str| -> Option<f64> {
        s.strip_suffix(suffix)
            .and_then(|head| head.parse::<f64>().ok())
    };
    // Longest suffixes first so "ms" wins over "s" and "GB" over "B".
    for (suffix, scale) in [
        ("ms", 1e-3),
        ("us", 1e-6),
        ("GB", 1024.0 * 1024.0 * 1024.0),
        ("MB", 1024.0 * 1024.0),
        ("KB", 1024.0),
        ("s", 1.0),
        ("%", 0.01),
        ("x", 1.0),
        ("B", 1.0),
    ] {
        if let Some(v) = tail(suffix) {
            return Some(v * scale);
        }
    }
    s.parse::<f64>().ok()
}

/// Gate configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiffOptions {
    /// Relative tolerance for wall-tier cells (e.g. `0.25` allows ±25%).
    /// `None` skips wall cells entirely.
    pub wall_tol: Option<f64>,
}

/// What a finding means for the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// A compared value got worse (or an exact value changed at all).
    Regression,
    /// The report shapes differ (tables/headers/rows added or removed).
    Structural,
    /// The runs are not comparable (provenance mismatch); nothing was
    /// diffed for this report.
    Incompatible,
}

impl FindingKind {
    fn name(self) -> &'static str {
        match self {
            FindingKind::Regression => "regression",
            FindingKind::Structural => "structural",
            FindingKind::Incompatible => "incompatible",
        }
    }
}

/// One gate finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Report id.
    pub report: String,
    /// Where in the report (`table / row / column`).
    pub location: String,
    /// Baseline cell (or shape description).
    pub baseline: String,
    /// Candidate cell (or shape description).
    pub candidate: String,
    /// Severity class.
    pub kind: FindingKind,
    /// Human explanation.
    pub detail: String,
}

/// Aggregate outcome of a gate run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffSummary {
    /// Everything that failed or was refused.
    pub findings: Vec<Finding>,
    /// Reports diffed (baseline side).
    pub reports_compared: usize,
    /// Cells compared exactly.
    pub exact_cells: usize,
    /// Wall cells compared under the tolerance.
    pub wall_cells_checked: usize,
    /// Wall cells skipped because no tolerance was given.
    pub wall_cells_skipped: usize,
    /// Informational cells skipped by design.
    pub info_cells_skipped: usize,
}

impl DiffSummary {
    /// Whether anything regressed (structurally or by value).
    pub fn has_regressions(&self) -> bool {
        self.findings
            .iter()
            .any(|f| matches!(f.kind, FindingKind::Regression | FindingKind::Structural))
    }

    /// Whether any report pair was refused as incomparable.
    pub fn has_incompatible(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.kind == FindingKind::Incompatible)
    }

    /// Renders the CI-facing markdown summary.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("# perfdiff\n\n");
        let _ = writeln!(
            out,
            "Compared {} report(s): {} exact cell(s), {} wall cell(s) \
             checked, {} wall cell(s) skipped (no tolerance), {} \
             informational cell(s) skipped.\n",
            self.reports_compared,
            self.exact_cells,
            self.wall_cells_checked,
            self.wall_cells_skipped,
            self.info_cells_skipped,
        );
        if self.findings.is_empty() {
            out.push_str("**VERDICT: PASS** — no regressions.\n");
            return out;
        }
        let verdict = if self.has_regressions() {
            "FAIL"
        } else {
            "REFUSED"
        };
        let _ = writeln!(
            out,
            "**VERDICT: {verdict}** — {} finding(s).\n",
            self.findings.len()
        );
        out.push_str("| report | location | baseline | candidate | kind | detail |\n");
        out.push_str("|---|---|---|---|---|---|\n");
        for f in &self.findings {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} |",
                f.report,
                f.location,
                f.baseline,
                f.candidate,
                f.kind.name(),
                f.detail
            );
        }
        out
    }
}

/// Provenance keys that must match for two runs to be comparable. The
/// scale profile changes every simulated number; thread/prefetch/telemetry
/// settings are pinned not to (by the determinism test suite), so they
/// may differ.
const PROFILE_KEY: &str = "profile";

/// Diffs one report pair into `summary`.
pub fn diff_reports(
    baseline: &ReportDoc,
    candidate: &ReportDoc,
    opts: &DiffOptions,
    summary: &mut DiffSummary,
) {
    summary.reports_compared += 1;
    let id = baseline.id.clone();
    // Provenance gate: refuse apples-to-oranges profiles. Reports written
    // before stamping existed (no provenance) compare without the guard.
    if let (Some(b), Some(c)) = (&baseline.provenance, &candidate.provenance) {
        let bp = b.get(PROFILE_KEY);
        let cp = c.get(PROFILE_KEY);
        if bp != cp {
            summary.findings.push(Finding {
                report: id,
                location: "provenance".into(),
                baseline: format!("profile={}", bp.map_or("?", |s| s)),
                candidate: format!("profile={}", cp.map_or("?", |s| s)),
                kind: FindingKind::Incompatible,
                detail: "scale profiles differ; re-run both sides under the same \
                         FASTGL_QUICK setting"
                    .into(),
            });
            return;
        }
    }
    if baseline.tables.len() != candidate.tables.len() {
        summary.findings.push(Finding {
            report: id,
            location: "tables".into(),
            baseline: format!("{} table(s)", baseline.tables.len()),
            candidate: format!("{} table(s)", candidate.tables.len()),
            kind: FindingKind::Structural,
            detail: "table count changed".into(),
        });
        return;
    }
    for (t_idx, (bt, ct)) in baseline.tables.iter().zip(&candidate.tables).enumerate() {
        let table_loc = format!("table {t_idx} ({})", bt.title);
        if bt.headers != ct.headers {
            summary.findings.push(Finding {
                report: id.clone(),
                location: table_loc,
                baseline: bt.headers.join(" | "),
                candidate: ct.headers.join(" | "),
                kind: FindingKind::Structural,
                detail: "headers changed".into(),
            });
            continue;
        }
        if bt.rows.len() != ct.rows.len() {
            summary.findings.push(Finding {
                report: id.clone(),
                location: table_loc,
                baseline: format!("{} row(s)", bt.rows.len()),
                candidate: format!("{} row(s)", ct.rows.len()),
                kind: FindingKind::Structural,
                detail: "row count changed".into(),
            });
            continue;
        }
        for (br, cr) in bt.rows.iter().zip(&ct.rows) {
            let row_label = br.first().cloned().unwrap_or_default();
            for ((header, bc), cc) in bt.headers.iter().zip(br).zip(cr) {
                let loc = format!("{table_loc} / row '{row_label}' / {header}");
                match tier(header) {
                    Tier::Informational => summary.info_cells_skipped += 1,
                    Tier::Exact => {
                        summary.exact_cells += 1;
                        if bc != cc {
                            summary.findings.push(Finding {
                                report: id.clone(),
                                location: loc,
                                baseline: bc.clone(),
                                candidate: cc.clone(),
                                kind: FindingKind::Regression,
                                detail: "exact-tier (simulated) value changed".into(),
                            });
                        }
                    }
                    Tier::Wall => match opts.wall_tol {
                        None => summary.wall_cells_skipped += 1,
                        Some(tol) => {
                            summary.wall_cells_checked += 1;
                            if let Some(f) = wall_regression(header, bc, cc, tol, &id, &loc) {
                                summary.findings.push(f);
                            }
                        }
                    },
                }
            }
        }
    }
}

/// Checks one wall-tier cell pair under a relative tolerance.
fn wall_regression(
    header: &str,
    baseline: &str,
    candidate: &str,
    tol: f64,
    id: &str,
    loc: &str,
) -> Option<Finding> {
    let (b, c) = (parse_cell(baseline)?, parse_cell(candidate)?);
    if b <= 0.0 {
        return None;
    }
    // "speedup" columns are better when larger; times are better smaller.
    let higher_is_better = header.to_ascii_lowercase().contains("speedup");
    let rel = (c - b) / b;
    let regressed = if higher_is_better {
        rel < -tol
    } else {
        rel > tol
    };
    regressed.then(|| Finding {
        report: id.to_string(),
        location: loc.to_string(),
        baseline: baseline.to_string(),
        candidate: candidate.to_string(),
        kind: FindingKind::Regression,
        detail: format!(
            "wall-tier value moved {:+.1}% (tolerance ±{:.1}%)",
            rel * 100.0,
            tol * 100.0
        ),
    })
}

/// Diffs every `*.json` report in `baseline_dir` against its counterpart
/// in `candidate_dir`. Reports present only in the candidate are new work
/// and ignored; reports missing from the candidate are structural
/// failures.
///
/// # Errors
///
/// Returns IO/parse failures on either side (a malformed committed
/// baseline should fail loudly, not read as "no regressions").
pub fn diff_dirs(
    baseline_dir: &Path,
    candidate_dir: &Path,
    opts: &DiffOptions,
) -> Result<DiffSummary, String> {
    let mut names: Vec<String> = std::fs::read_dir(baseline_dir)
        .map_err(|e| format!("cannot read {}: {e}", baseline_dir.display()))?
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            name.ends_with(".json").then_some(name)
        })
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!(
            "no baseline reports (*.json) in {}",
            baseline_dir.display()
        ));
    }
    let mut summary = DiffSummary::default();
    for name in names {
        let read_and_parse = |dir: &Path| -> Result<ReportDoc, String> {
            let path = dir.join(&name);
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            parse_report(&text).map_err(|e| format!("{}: {e}", path.display()))
        };
        let baseline = read_and_parse(baseline_dir)?;
        if !candidate_dir.join(&name).exists() {
            summary.reports_compared += 1;
            summary.findings.push(Finding {
                report: baseline.id.clone(),
                location: name.clone(),
                baseline: "present".into(),
                candidate: "missing".into(),
                kind: FindingKind::Structural,
                detail: "candidate run did not produce this report".into(),
            });
            continue;
        }
        let candidate = read_and_parse(candidate_dir)?;
        diff_reports(&baseline, &candidate, opts, &mut summary);
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: &str, cells: &[[&str; 3]]) -> ReportDoc {
        ReportDoc {
            id: id.into(),
            description: "test".into(),
            tables: vec![TableDoc {
                title: "T".into(),
                headers: vec!["case".into(), "sim time".into(), "wall epoch time".into()],
                rows: cells
                    .iter()
                    .map(|r| r.iter().map(|c| c.to_string()).collect())
                    .collect(),
            }],
            provenance: None,
        }
    }

    fn run_diff(b: &ReportDoc, c: &ReportDoc, opts: DiffOptions) -> DiffSummary {
        let mut s = DiffSummary::default();
        diff_reports(b, c, &opts, &mut s);
        s
    }

    #[test]
    fn cell_parser_understands_every_formatter() {
        assert_eq!(parse_cell("2.500s"), Some(2.5));
        assert_eq!(parse_cell("4.218ms"), Some(4.218 * 1e-3));
        assert_eq!(parse_cell("2.500us"), Some(2.5 * 1e-6));
        assert_eq!(parse_cell("60.7%"), Some(60.7 * 0.01));
        assert_eq!(parse_cell("1.17x"), Some(1.17));
        assert_eq!(parse_cell("3.00GB"), Some(3.0 * 1024.0 * 1024.0 * 1024.0));
        assert_eq!(parse_cell("1.5MB"), Some(1.5 * 1024.0 * 1024.0));
        assert_eq!(parse_cell("2KB"), Some(2048.0));
        assert_eq!(parse_cell("512B"), Some(512.0));
        assert_eq!(parse_cell("42"), Some(42.0));
        assert_eq!(parse_cell("gcn/products"), None);
        assert_eq!(parse_cell("1.2ms / 3.4ms"), None);
    }

    #[test]
    fn tiers_follow_the_header_convention() {
        assert_eq!(tier("sim time"), Tier::Exact);
        assert_eq!(tier("speedup"), Tier::Exact); // simulated ratio
        assert_eq!(tier("wall epoch time"), Tier::Wall);
        assert_eq!(tier("Wall speedup vs serial"), Tier::Wall);
        assert_eq!(tier("sample busy/stall (wall)"), Tier::Informational);
    }

    #[test]
    fn identical_reports_pass_clean() {
        let b = doc("r", &[["a", "2.500ms", "1.000s"]]);
        let s = run_diff(&b, &b.clone(), DiffOptions::default());
        assert!(!s.has_regressions());
        assert_eq!(s.exact_cells, 2); // "case" label + "sim time"
        assert_eq!(s.wall_cells_skipped, 1);
        assert!(s.to_markdown().contains("VERDICT: PASS"));
    }

    #[test]
    fn exact_tier_flags_any_change_even_improvements() {
        let b = doc("r", &[["a", "2.500ms", "1.000s"]]);
        let c = doc("r", &[["a", "2.400ms", "1.000s"]]);
        let s = run_diff(&b, &c, DiffOptions::default());
        assert!(s.has_regressions());
        assert_eq!(s.findings.len(), 1);
        assert_eq!(s.findings[0].kind, FindingKind::Regression);
        let md = s.to_markdown();
        assert!(md.contains("VERDICT: FAIL"));
        assert!(md.contains("2.500ms"), "markdown row carries the cells");
        assert!(md.contains("2.400ms"));
    }

    #[test]
    fn wall_tier_is_noise_tolerant_and_direction_aware() {
        let b = doc("r", &[["a", "2.500ms", "1.000s"]]);
        let within = doc("r", &[["a", "2.500ms", "1.100s"]]);
        let beyond = doc("r", &[["a", "2.500ms", "1.400s"]]);
        let faster = doc("r", &[["a", "2.500ms", "0.500s"]]);
        let opts = DiffOptions {
            wall_tol: Some(0.25),
        };
        assert!(!run_diff(&b, &within, opts).has_regressions());
        let s = run_diff(&b, &beyond, opts);
        assert!(s.has_regressions());
        assert!(s.findings[0].detail.contains("+40.0%"));
        // Getting faster is never a wall regression.
        assert!(!run_diff(&b, &faster, opts).has_regressions());
        // Without a tolerance even a 40% slowdown is skipped.
        assert!(!run_diff(&b, &beyond, DiffOptions::default()).has_regressions());
    }

    #[test]
    fn wall_speedup_columns_invert_the_direction() {
        let mk = |v: &str| ReportDoc {
            tables: vec![TableDoc {
                title: "T".into(),
                headers: vec!["case".into(), "wall speedup vs serial".into()],
                rows: vec![vec!["a".into(), v.into()]],
            }],
            ..doc("r", &[])
        };
        let opts = DiffOptions {
            wall_tol: Some(0.2),
        };
        // Speedup shrinking past the tolerance regresses...
        assert!(run_diff(&mk("2.00x"), &mk("1.40x"), opts).has_regressions());
        // ...growing does not.
        assert!(!run_diff(&mk("2.00x"), &mk("3.00x"), opts).has_regressions());
    }

    #[test]
    fn structural_changes_are_regressions() {
        let b = doc("r", &[["a", "1ms", "1s"], ["b", "2ms", "2s"]]);
        let fewer_rows = doc("r", &[["a", "1ms", "1s"]]);
        let s = run_diff(&b, &fewer_rows, DiffOptions::default());
        assert!(s.has_regressions());
        assert_eq!(s.findings[0].kind, FindingKind::Structural);
        let mut renamed = b.clone();
        renamed.tables[0].headers[1] = "other".into();
        assert!(run_diff(&b, &renamed, DiffOptions::default()).has_regressions());
    }

    #[test]
    fn profile_mismatch_is_refused_not_diffed() {
        let mut b = doc("r", &[["a", "1ms", "1s"]]);
        let mut c = doc("r", &[["a", "999ms", "1s"]]); // would be a regression
        b.provenance = Some([("profile".to_string(), "default".to_string())].into());
        c.provenance = Some([("profile".to_string(), "quick".to_string())].into());
        let s = run_diff(&b, &c, DiffOptions::default());
        assert!(s.has_incompatible());
        assert!(!s.has_regressions(), "refused, so no value findings");
        assert_eq!(s.exact_cells, 0);
        assert!(s.to_markdown().contains("VERDICT: REFUSED"));
        // Same profile on both sides: diffed normally.
        c.provenance = b.provenance.clone();
        let s = run_diff(&b, &c, DiffOptions::default());
        assert!(s.has_regressions());
    }

    #[test]
    fn missing_provenance_on_either_side_still_compares() {
        let mut b = doc("r", &[["a", "1ms", "1s"]]);
        let c = doc("r", &[["a", "2ms", "1s"]]);
        b.provenance = Some([("profile".to_string(), "default".to_string())].into());
        assert!(run_diff(&b, &c, DiffOptions::default()).has_regressions());
    }

    #[test]
    fn parse_report_round_trips_bench_json() {
        let text = "{\"id\":\"x\",\"description\":\"d\",\"notes\":[\"n\"],\
                    \"tables\":[{\"title\":\"T\",\"headers\":[\"a\"],\
                    \"rows\":[[\"1ms\"]]}],\
                    \"provenance\":{\"profile\":\"quick\",\"telemetry\":false}}\n";
        let doc = parse_report(text).unwrap();
        assert_eq!(doc.id, "x");
        assert_eq!(doc.tables[0].rows[0][0], "1ms");
        let prov = doc.provenance.unwrap();
        assert_eq!(prov.get("profile").map(String::as_str), Some("quick"));
        assert_eq!(prov.get("telemetry").map(String::as_str), Some("false"));
        assert!(parse_report("{\"id\":\"x\"}").is_err());
    }

    #[test]
    fn diff_dirs_flags_missing_candidates_and_walks_all_reports() {
        let base = std::env::temp_dir().join("fastgl_perfdiff_base");
        let cand = std::env::temp_dir().join("fastgl_perfdiff_cand");
        let _ = std::fs::remove_dir_all(&base);
        let _ = std::fs::remove_dir_all(&cand);
        std::fs::create_dir_all(&base).unwrap();
        std::fs::create_dir_all(&cand).unwrap();
        let report = "{\"id\":\"a\",\"description\":\"d\",\"notes\":[],\
                      \"tables\":[{\"title\":\"T\",\"headers\":[\"v\"],\
                      \"rows\":[[\"1ms\"]]}]}\n";
        std::fs::write(base.join("a.json"), report).unwrap();
        std::fs::write(cand.join("a.json"), report).unwrap();
        std::fs::write(base.join("b.json"), report.replace("\"a\"", "\"b\"")).unwrap();
        let s = diff_dirs(&base, &cand, &DiffOptions::default()).unwrap();
        assert_eq!(s.reports_compared, 2);
        assert!(s.has_regressions(), "b.json missing from candidate");
        assert_eq!(s.findings[0].candidate, "missing");
        // Empty baseline dir is an error, not a pass.
        let empty = std::env::temp_dir().join("fastgl_perfdiff_empty");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(diff_dirs(&empty, &cand, &DiffOptions::default()).is_err());
        let _ = std::fs::remove_dir_all(&base);
        let _ = std::fs::remove_dir_all(&cand);
        let _ = std::fs::remove_dir_all(&empty);
    }
}
