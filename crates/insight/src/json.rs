//! A minimal recursive-descent JSON parser (RFC 8259 subset).
//!
//! The workspace builds fully offline, so `perfdiff` cannot pull in a JSON
//! crate; the report documents it reads are machine-written by
//! `fastgl-bench` (flat strings, no exotic escapes), which this parser
//! covers completely. Numbers parse as `f64`; `\uXXXX` escapes decode the
//! BMP and reject lone surrogates.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable description (with byte offset) of the first
/// syntax error, or of trailing garbage after the document.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number '{s}' at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = char::from_u32(code)
                                .ok_or_else(|| format!("invalid \\u{code:04x} escape"))?;
                            out.push(c);
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, however many bytes it spans.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "non-ascii \\u escape".to_string())?;
        let code = u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape '{s}'"))?;
        self.pos = end;
        Ok(code)
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_report_shaped_document() {
        let doc = r#"{"id":"fig01","notes":["a \"quoted\" note"],
            "tables":[{"title":"T","headers":["h1","h2"],
            "rows":[["1.00x","60.7%"],["2.50ms","3.00GB"]]}],"n":-1.5e2}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("fig01"));
        assert_eq!(v.get("n").unwrap().as_num(), Some(-150.0));
        let tables = v.get("tables").unwrap().as_arr().unwrap();
        let rows = tables[0].get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows[1].as_arr().unwrap()[1].as_str(), Some("3.00GB"));
        assert_eq!(
            v.get("notes").unwrap().as_arr().unwrap()[0].as_str(),
            Some("a \"quoted\" note")
        );
    }

    #[test]
    fn escapes_decode() {
        let v = parse(r#""a\n\tA\\""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\tA\\"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "12 34", "tru", "[1]x"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_lone_surrogate_escape() {
        assert!(parse(r#""\ud800""#).is_err());
    }

    #[test]
    fn empty_containers_and_unicode() {
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(BTreeMap::new()));
        assert_eq!(parse("\"héllo\"").unwrap().as_str(), Some("héllo"));
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
    }
}
