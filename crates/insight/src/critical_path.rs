//! Critical-path analysis of the pipelined epoch executor.
//!
//! Works on two complementary records of the same epoch:
//!
//! * the **simulated** per-window stage timings
//!   ([`EpochWindowTrace`]) — deterministic, identical at every
//!   `FASTGL_THREADS`/`FASTGL_PREFETCH` setting, so the binding-stage
//!   histogram this module derives is a stable fingerprint of a run;
//! * the **wall-clock** busy/stall split per executor stage
//!   ([`PipelineWallStats`]) — machine- and scheduling-dependent, used to
//!   attribute *why* a host thread waited (starved upstream vs
//!   backpressured downstream vs doing work), never compared exactly.
//!
//! The load-bearing invariant, inherited from
//! [`GpuRoles::visible_sample_per_window`](fastgl_core::multi_gpu::GpuRoles::visible_sample_per_window):
//! the per-window visible times of an analysis sum to the epoch's total
//! simulated time **exactly**, in integer nanoseconds. The attribution
//! never "loses" time to rounding.

use fastgl_core::{EpochWindowTrace, PipelineWallStats, StageWallStats, WindowPhases};
use fastgl_gpusim::{PhaseBreakdown, SimTime};
use std::time::Duration;

/// The pipeline stage a window spends most of its visible time in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BindingStage {
    /// Neighbour sampling (after overlap hiding).
    Sample,
    /// Feature IO: host gather + PCIe transfer.
    Io,
    /// Aggregation + update + all-reduce.
    Compute,
}

impl BindingStage {
    /// Lower-case stage name, matching the phase names the simulator and
    /// the paper use.
    pub fn name(self) -> &'static str {
        match self {
            BindingStage::Sample => "sample",
            BindingStage::Io => "io",
            BindingStage::Compute => "compute",
        }
    }

    /// All stages in pipeline order.
    pub fn all() -> [BindingStage; 3] {
        [
            BindingStage::Sample,
            BindingStage::Io,
            BindingStage::Compute,
        ]
    }
}

/// One window's attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowAttribution {
    /// Window index in execution order.
    pub index: usize,
    /// The window's phase times (visible and raw).
    pub phases: WindowPhases,
    /// The visible phase the window spends the most time in. Ties break
    /// toward the *later* pipeline stage (compute over io over sample),
    /// deterministically: a window that is equally sample- and
    /// compute-bound reads as compute-bound.
    pub binding: BindingStage,
}

/// How many windows each stage binds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BindingHistogram {
    /// Windows bound by (visible) sampling.
    pub sample: usize,
    /// Windows bound by feature IO.
    pub io: usize,
    /// Windows bound by compute.
    pub compute: usize,
}

impl BindingHistogram {
    /// Windows counted in total.
    pub fn total(&self) -> usize {
        self.sample + self.io + self.compute
    }

    /// The count for `stage`.
    pub fn count(&self, stage: BindingStage) -> usize {
        match stage {
            BindingStage::Sample => self.sample,
            BindingStage::Io => self.io,
            BindingStage::Compute => self.compute,
        }
    }
}

/// The full critical-path analysis of one epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// Per-window attribution, in execution order.
    pub windows: Vec<WindowAttribution>,
    /// The binding-stage histogram over all windows.
    pub histogram: BindingHistogram,
    /// Visible phase totals; sums the per-window entries exactly.
    pub breakdown: PhaseBreakdown,
    /// Sampling time the overlap model hid behind training.
    pub hidden_sample: SimTime,
    /// Whether the run overlapped sampling (dedicated sampler GPUs).
    pub overlap_sample: bool,
}

impl CriticalPath {
    /// Total visible simulated time; equals the epoch's reported total.
    pub fn visible_total(&self) -> SimTime {
        self.breakdown.total()
    }

    /// Visible time summed over the windows `stage` binds.
    pub fn bound_time(&self, stage: BindingStage) -> SimTime {
        self.windows
            .iter()
            .filter(|w| w.binding == stage)
            .map(|w| w.phases.visible_total())
            .sum()
    }
}

/// Analyzes a window trace into binding stages and the histogram.
pub fn analyze(trace: &EpochWindowTrace) -> CriticalPath {
    let mut windows = Vec::with_capacity(trace.len());
    let mut histogram = BindingHistogram::default();
    for (index, &phases) in trace.windows.iter().enumerate() {
        let binding = binding_stage(&phases);
        match binding {
            BindingStage::Sample => histogram.sample += 1,
            BindingStage::Io => histogram.io += 1,
            BindingStage::Compute => histogram.compute += 1,
        }
        windows.push(WindowAttribution {
            index,
            phases,
            binding,
        });
    }
    CriticalPath {
        windows,
        histogram,
        breakdown: trace.visible_breakdown(),
        hidden_sample: trace.hidden_sample(),
        overlap_sample: trace.overlap_sample,
    }
}

/// The stage with the largest visible time; ties go to the later stage.
fn binding_stage(w: &WindowPhases) -> BindingStage {
    let candidates = [
        (w.visible_sample, BindingStage::Sample),
        (w.io, BindingStage::Io),
        (w.compute, BindingStage::Compute),
    ];
    // max_by_key keeps the *last* maximum, which is exactly the tie rule.
    candidates
        .into_iter()
        .max_by_key(|&(t, _)| t)
        .expect("three candidates")
        .1
}

/// Why a wall-clock executor stage spent its time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallVerdict {
    /// Mostly inside the stage closure: the stage is the bottleneck (or
    /// the run was serial, where stages never wait).
    WorkBound,
    /// Mostly blocked receiving: the upstream stage cannot keep up.
    Starved,
    /// Mostly blocked sending: the downstream stage cannot keep up.
    Backpressured,
}

impl StallVerdict {
    /// Short label for tables.
    pub fn name(self) -> &'static str {
        match self {
            StallVerdict::WorkBound => "work-bound",
            StallVerdict::Starved => "starved",
            StallVerdict::Backpressured => "backpressured",
        }
    }
}

/// One executor stage's wall-time attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageWallAttribution {
    /// Stage name ("sample", "prepare", "execute").
    pub stage: &'static str,
    /// Time inside the stage closure.
    pub busy: Duration,
    /// Time blocked receiving from upstream (starvation).
    pub stall_in: Duration,
    /// Time blocked sending downstream (backpressure).
    pub stall_out: Duration,
    /// The dominant bucket. Ties break toward `WorkBound`, then
    /// `Starved` — an idle stage with all-zero times reads as work-bound.
    pub verdict: StallVerdict,
}

impl StageWallAttribution {
    fn from_stats(stage: &'static str, st: &StageWallStats) -> Self {
        let verdict = if st.busy >= st.stall_in && st.busy >= st.stall_out {
            StallVerdict::WorkBound
        } else if st.stall_in >= st.stall_out {
            StallVerdict::Starved
        } else {
            StallVerdict::Backpressured
        };
        Self {
            stage,
            busy: st.busy,
            stall_in: st.stall_in,
            stall_out: st.stall_out,
            verdict,
        }
    }
}

/// Attributes each executor stage's wall time to work, starvation, or
/// backpressure, in pipeline order.
pub fn attribute_wall(stats: &PipelineWallStats) -> [StageWallAttribution; 3] {
    [
        StageWallAttribution::from_stats("sample", &stats.sample),
        StageWallAttribution::from_stats("prepare", &stats.prepare),
        StageWallAttribution::from_stats("execute", &stats.execute),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn w(sample: u64, visible: u64, io: u64, compute: u64) -> WindowPhases {
        WindowPhases {
            sample: t(sample),
            visible_sample: t(visible),
            io: t(io),
            compute: t(compute),
        }
    }

    #[test]
    fn binding_picks_the_largest_visible_phase() {
        assert_eq!(binding_stage(&w(900, 900, 10, 20)), BindingStage::Sample);
        assert_eq!(binding_stage(&w(900, 5, 10, 8)), BindingStage::Io);
        assert_eq!(binding_stage(&w(1, 1, 2, 30)), BindingStage::Compute);
    }

    #[test]
    fn binding_ties_break_toward_the_later_stage() {
        assert_eq!(binding_stage(&w(5, 5, 5, 5)), BindingStage::Compute);
        assert_eq!(binding_stage(&w(7, 7, 7, 3)), BindingStage::Io);
        assert_eq!(binding_stage(&w(0, 0, 0, 0)), BindingStage::Compute);
    }

    #[test]
    fn analysis_sums_exactly_and_counts_every_window() {
        let trace = EpochWindowTrace {
            windows: vec![w(100, 100, 30, 20), w(90, 0, 40, 200), w(10, 10, 80, 5)],
            overlap_sample: true,
        };
        let cp = analyze(&trace);
        assert_eq!(cp.histogram.total(), 3);
        assert_eq!(cp.histogram.sample, 1);
        assert_eq!(cp.histogram.compute, 1);
        assert_eq!(cp.histogram.io, 1);
        assert_eq!(cp.visible_total(), trace.visible_total());
        assert_eq!(cp.breakdown, trace.visible_breakdown());
        assert_eq!(cp.hidden_sample, t(90));
        // Partitioning by binding stage also conserves the total.
        let partitioned: SimTime = BindingStage::all()
            .into_iter()
            .map(|s| cp.bound_time(s))
            .sum();
        assert_eq!(partitioned, cp.visible_total());
    }

    #[test]
    fn wall_attribution_names_the_dominant_bucket() {
        let st = |busy_ms: u64, in_ms: u64, out_ms: u64| StageWallStats {
            busy: Duration::from_millis(busy_ms),
            stall_in: Duration::from_millis(in_ms),
            stall_out: Duration::from_millis(out_ms),
            items: 4,
            replays: 0,
        };
        let stats = PipelineWallStats {
            prefetch: 2,
            channel_bound: 2,
            sample: st(10, 0, 90),
            prepare: st(10, 80, 5),
            execute: st(90, 10, 0),
        };
        let attr = attribute_wall(&stats);
        assert_eq!(attr[0].verdict, StallVerdict::Backpressured);
        assert_eq!(attr[1].verdict, StallVerdict::Starved);
        assert_eq!(attr[2].verdict, StallVerdict::WorkBound);
        assert_eq!(attr[0].stage, "sample");
        // All-zero (serial run) stages read as work-bound.
        let idle = StageWallAttribution::from_stats("prepare", &StageWallStats::default());
        assert_eq!(idle.verdict, StallVerdict::WorkBound);
    }
}
