//! Post-hoc analysis of FastGL runs: where did the time and the bytes go,
//! and did this change make anything worse?
//!
//! The simulator and the pipelined executor already *record* everything —
//! deterministic per-window stage timings
//! ([`fastgl_core::EpochWindowTrace`]), wall-clock busy/stall splits
//! ([`fastgl_core::PipelineWallStats`]), and the telemetry counter
//! taxonomy ([`fastgl_telemetry::names`]). This crate turns those records
//! into answers:
//!
//! * [`critical_path`] — which stage *binds* each mini-batch window, how
//!   much sampling the overlap model hid, and whether the pipeline's wall
//!   threads stall on starvation or backpressure. The per-window visible
//!   times sum to the epoch total **exactly** (integer nanoseconds); the
//!   analysis is bit-identical at any `FASTGL_THREADS`/`FASTGL_PREFETCH`.
//! * [`memory`] — folds the runtime counters into the paper-style
//!   memory-hierarchy breakdown (shared / L1 / L2 / global / PCIe bytes,
//!   cache hit rates, Match-Reorder savings), regenerating the Fig. 1 /
//!   Fig. 10-shaped attribution from any run's telemetry.
//! * [`perfdiff`] — a noise-aware regression gate over the `results/*.json`
//!   reports: simulated values diff under an **exact** tier (any change
//!   fails), wall-clock values under an opt-in relative-tolerance tier,
//!   and run provenance guards against apples-to-oranges comparisons.
//! * [`json`] — the dependency-free JSON parser the gate reads report
//!   files with.
//!
//! DESIGN.md §11 documents the architecture and the tolerance-tier
//! rationale.

#![deny(missing_docs)]

pub mod critical_path;
pub mod json;
pub mod memory;
pub mod perfdiff;

pub use critical_path::{BindingHistogram, BindingStage, CriticalPath, WindowAttribution};
pub use memory::MemoryAttribution;
pub use perfdiff::{DiffOptions, DiffSummary, ReportDoc};
