//! Memory-hierarchy attribution from the runtime counter taxonomy.
//!
//! The compute engine folds every aggregation kernel's per-level byte
//! profile into the global counters (`gpusim.bytes_*`), the IO engine
//! counts PCIe traffic and cache hits, and the pipeline counts the bytes
//! Match-Reorder kept off the bus. This module gathers those counters
//! back into one struct shaped like the paper's memory analysis (Fig. 1's
//! "where does the time go" and Fig. 10's IO-savings story, in bytes):
//! how much traffic each level of the hierarchy served, how effective the
//! feature cache was, and how much PCIe traffic the reuse machinery
//! avoided.
//!
//! Everything here is simulated and deterministic: counter totals are
//! pinned thread-invariant by the telemetry test suite, so the same run
//! produces the same attribution on any machine.

use fastgl_telemetry::{names, Snapshot};

/// Per-level traffic and savings of one run, folded from counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryAttribution {
    /// Aggregation FLOPs executed.
    pub flops: u64,
    /// Bytes served from shared memory (Memory-Aware staging).
    pub bytes_shared: u64,
    /// Bytes served by L1 hits.
    pub bytes_l1: u64,
    /// Bytes served by L2 hits (missed L1).
    pub bytes_l2: u64,
    /// Bytes served by device DRAM (missed both caches).
    pub bytes_global: u64,
    /// Feature bytes moved host-to-device over PCIe.
    pub bytes_pcie: u64,
    /// Simulated kernel launches.
    pub kernel_launches: u64,
    /// Feature-cache row hits.
    pub cache_hits: u64,
    /// Feature-cache row misses.
    pub cache_misses: u64,
    /// Feature rows actually loaded over PCIe.
    pub rows_loaded: u64,
    /// PCIe bytes avoided by Match (cross-batch row reuse).
    pub bytes_reuse_saved: u64,
    /// PCIe bytes avoided by the GPU feature cache.
    pub bytes_cache_saved: u64,
}

impl MemoryAttribution {
    /// Reads the attribution out of a drained snapshot. Absent counters
    /// read as zero, so partial runs (e.g. no caching configured) still
    /// fold cleanly.
    pub fn from_snapshot(snap: &Snapshot) -> Self {
        let c = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        Self {
            flops: c(names::GPUSIM_FLOPS),
            bytes_shared: c(names::GPUSIM_BYTES_SHARED),
            bytes_l1: c(names::GPUSIM_BYTES_L1),
            bytes_l2: c(names::GPUSIM_BYTES_L2),
            bytes_global: c(names::GPUSIM_BYTES_GLOBAL),
            bytes_pcie: c(names::IO_BYTES_H2D),
            kernel_launches: c(names::GPUSIM_KERNEL_LAUNCHES),
            cache_hits: c(names::CACHE_HITS),
            cache_misses: c(names::CACHE_MISSES),
            rows_loaded: c(names::IO_ROWS_LOADED),
            bytes_reuse_saved: c(names::PIPELINE_BYTES_REUSE_SAVED),
            bytes_cache_saved: c(names::PIPELINE_BYTES_CACHE_SAVED),
        }
    }

    /// On-device request bytes: everything the aggregation kernels asked
    /// the memory system for, summed over the level that served it.
    pub fn device_bytes(&self) -> u64 {
        self.bytes_shared + self.bytes_l1 + self.bytes_l2 + self.bytes_global
    }

    /// `(level name, bytes served)` rows in hierarchy order, device levels
    /// first, then the host link.
    pub fn levels(&self) -> [(&'static str, u64); 5] {
        [
            ("shared", self.bytes_shared),
            ("L1", self.bytes_l1),
            ("L2", self.bytes_l2),
            ("global", self.bytes_global),
            ("PCIe", self.bytes_pcie),
        ]
    }

    /// Share of device request bytes `level_bytes` represents (0 when no
    /// device traffic was recorded).
    pub fn device_share(&self, level_bytes: u64) -> f64 {
        let total = self.device_bytes();
        if total == 0 {
            0.0
        } else {
            level_bytes as f64 / total as f64
        }
    }

    /// Fraction of cache-interrogated rows the feature cache served.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of *kernel* requests the on-chip levels (shared + L1 + L2)
    /// absorbed — the quantity Memory-Aware aggregation (§4.2) raises.
    pub fn on_chip_rate(&self) -> f64 {
        let total = self.device_bytes();
        if total == 0 {
            0.0
        } else {
            (self.bytes_shared + self.bytes_l1 + self.bytes_l2) as f64 / total as f64
        }
    }

    /// PCIe bytes that *would* have moved without Match-Reorder and the
    /// feature cache: actual traffic plus both savings buckets.
    pub fn pcie_bytes_unoptimized(&self) -> u64 {
        self.bytes_pcie + self.bytes_reuse_saved + self.bytes_cache_saved
    }

    /// Fraction of would-be PCIe traffic the reuse machinery eliminated
    /// (the Fig. 10 story, in bytes).
    pub fn pcie_savings_rate(&self) -> f64 {
        let total = self.pcie_bytes_unoptimized();
        if total == 0 {
            0.0
        } else {
            (self.bytes_reuse_saved + self.bytes_cache_saved) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn snap(pairs: &[(&'static str, u64)]) -> Snapshot {
        Snapshot {
            counters: pairs.iter().copied().collect::<BTreeMap<_, _>>(),
            ..Snapshot::default()
        }
    }

    #[test]
    fn folds_counters_and_derives_rates() {
        let s = snap(&[
            (names::GPUSIM_FLOPS, 1000),
            (names::GPUSIM_BYTES_SHARED, 100),
            (names::GPUSIM_BYTES_L1, 300),
            (names::GPUSIM_BYTES_L2, 200),
            (names::GPUSIM_BYTES_GLOBAL, 400),
            (names::IO_BYTES_H2D, 5000),
            (names::GPUSIM_KERNEL_LAUNCHES, 7),
            (names::CACHE_HITS, 30),
            (names::CACHE_MISSES, 10),
            (names::PIPELINE_BYTES_REUSE_SAVED, 2000),
            (names::PIPELINE_BYTES_CACHE_SAVED, 3000),
        ]);
        let m = MemoryAttribution::from_snapshot(&s);
        assert_eq!(m.device_bytes(), 1000);
        assert_eq!(m.device_share(m.bytes_l1), 0.3);
        assert_eq!(m.on_chip_rate(), 0.6);
        assert_eq!(m.cache_hit_rate(), 0.75);
        assert_eq!(m.pcie_bytes_unoptimized(), 10_000);
        assert_eq!(m.pcie_savings_rate(), 0.5);
        assert_eq!(m.levels()[4], ("PCIe", 5000));
        assert_eq!(m.kernel_launches, 7);
        assert_eq!(m.flops, 1000);
    }

    #[test]
    fn empty_snapshot_is_all_zero_and_divides_safely() {
        let m = MemoryAttribution::from_snapshot(&Snapshot::default());
        assert_eq!(m, MemoryAttribution::default());
        assert_eq!(m.cache_hit_rate(), 0.0);
        assert_eq!(m.on_chip_rate(), 0.0);
        assert_eq!(m.device_share(0), 0.0);
        assert_eq!(m.pcie_savings_rate(), 0.0);
    }
}
