//! Real (numeric) training for the convergence study (paper Fig. 16).
//!
//! The paper validates FastGL's correctness by showing its training loss
//! matches DGL's: the three techniques change *when and how* data moves,
//! never *what* is computed — except that Reorder permutes the mini-batch
//! order within each sampled window, which stochastic optimisation is
//! robust to. This module trains real models (real gradients, real Adam)
//! with and without reordering so the claim can be verified numerically.

use crate::match_reorder::greedy_reorder;
use crate::resilience::{Checkpoint, CheckpointError, TrainerState};
use fastgl_gnn::{GnnModel, ModelConfig, ModelKind};
use fastgl_graph::{Csr, DeterministicRng, FeatureStore, NodeId};
use fastgl_sample::overlap::match_degree_matrix;
use fastgl_sample::{FusedIdMap, MinibatchPlan, NeighborSampler, SampledSubgraph};
use fastgl_tensor::{Adam, Matrix};

/// Configuration of a convergence run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerConfig {
    /// Model family.
    pub model: ModelKind,
    /// Hidden width.
    pub hidden_dim: usize,
    /// Per-hop fanouts (defines the layer count).
    pub fanouts: Vec<usize>,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Whether mini-batches are greedily reordered per window (FastGL) or
    /// run in the sampled order (DGL).
    pub reorder: bool,
    /// Reorder window size.
    pub window: usize,
    /// Random seed (sampling and initialisation).
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            model: ModelKind::Gcn,
            hidden_dim: 64,
            fanouts: vec![5, 10],
            batch_size: 256,
            learning_rate: 0.003,
            epochs: 5,
            reorder: false,
            window: 4,
            seed: 1,
        }
    }
}

/// The trace of a convergence run.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceRun {
    /// Loss of every training iteration, in execution order.
    pub iteration_losses: Vec<f32>,
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Training accuracy of the final model, measured on a re-sample of
    /// the final epoch's last planned mini-batch (a pure function of the
    /// trained weights, so checkpointed resumes reproduce it exactly).
    pub final_accuracy: f64,
    /// Held-out accuracy after each epoch (empty when no validation nodes
    /// were supplied).
    pub val_accuracy: Vec<f64>,
}

impl ConvergenceRun {
    /// Mean of the final `k` iteration losses (converged level).
    pub fn tail_loss(&self, k: usize) -> f32 {
        let n = self.iteration_losses.len();
        let k = k.min(n).max(1);
        self.iteration_losses[n - k..].iter().sum::<f32>() / k as f32
    }
}

/// Trains a model on a labelled graph and records the loss trajectory.
///
/// # Panics
///
/// Panics if `features` is not materialized, `labels` does not cover the
/// graph, or `train_nodes` is empty.
pub fn train(
    graph: &Csr,
    features: &FeatureStore,
    labels: &[u32],
    train_nodes: &[NodeId],
    config: &TrainerConfig,
) -> ConvergenceRun {
    train_with_validation(graph, features, labels, train_nodes, &[], config)
}

/// [`train`] with a held-out node set evaluated (forward only, sampled the
/// same way as training batches) after every epoch.
///
/// # Panics
///
/// Same conditions as [`train`].
pub fn train_with_validation(
    graph: &Csr,
    features: &FeatureStore,
    labels: &[u32],
    train_nodes: &[NodeId],
    val_nodes: &[NodeId],
    config: &TrainerConfig,
) -> ConvergenceRun {
    match train_resumable(
        graph,
        features,
        labels,
        train_nodes,
        val_nodes,
        config,
        None,
        None,
    ) {
        Ok(TrainOutcome::Complete(run)) => run,
        Ok(TrainOutcome::Interrupted(_)) => unreachable!("no halt was requested"),
        Err(e) => unreachable!("a fresh run resumes nothing: {e}"),
    }
}

/// The outcome of a resumable convergence run.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainOutcome {
    /// Training ran to the end; the run is bit-identical to an
    /// uninterrupted [`train_with_validation`] call.
    Complete(ConvergenceRun),
    /// Training halted at the requested batch; pass the checkpoint back
    /// to [`train_resumable`] to continue.
    Interrupted(Box<Checkpoint>),
}

/// The RNG stream of one training mini-batch: derived from the epoch and
/// the batch's index *in plan order*, never from execution order, thread
/// schedule, or resume position — the root of the trainer's
/// determinism-under-replay guarantee.
fn batch_rng(seed: u64, epoch: u64, batch_in_epoch: u64) -> DeterministicRng {
    DeterministicRng::seed(seed ^ 0xABCD)
        .derive(epoch)
        .derive(batch_in_epoch)
}

/// [`train_with_validation`], but killable and resumable at mini-batch
/// granularity.
///
/// `halt_after` simulates a kill: training stops before executing global
/// batch `halt_after` (counting from 0 across all epochs) and returns
/// [`TrainOutcome::Interrupted`] with a [`Checkpoint`] holding the model
/// weights, Adam moments, loss trajectories, and the batch cursor. Passing
/// that checkpoint back via `resume` continues the run and produces final
/// weights, losses, and accuracies **bit-identical** to an uninterrupted
/// run: every mini-batch's RNG stream is derived from its plan position
/// (`batch_rng` internally), so the resumed run re-samples its window and
/// replays the exact draws and floating-point accumulation order.
///
/// # Errors
///
/// Returns [`CheckpointError::Mismatch`] when `resume` has no trainer
/// section, was trained with a different seed, does not fit this config's
/// epoch/batch plan, or holds a model of the wrong shape.
///
/// # Panics
///
/// Same conditions as [`train`].
#[allow(clippy::too_many_arguments)]
pub fn train_resumable(
    graph: &Csr,
    features: &FeatureStore,
    labels: &[u32],
    train_nodes: &[NodeId],
    val_nodes: &[NodeId],
    config: &TrainerConfig,
    resume: Option<&Checkpoint>,
    halt_after: Option<u64>,
) -> Result<TrainOutcome, CheckpointError> {
    let feats = features
        .as_slice()
        .expect("convergence training needs materialized features");
    assert_eq!(labels.len() as u64, graph.num_nodes(), "one label per node");
    assert!(!train_nodes.is_empty(), "no training nodes");
    let num_classes = labels.iter().copied().max().unwrap_or(0) as usize + 1;
    let dim = features.dim();

    let model_cfg = ModelConfig::paper(config.model, dim, num_classes)
        .with_layers(config.fanouts.len())
        .with_hidden(config.hidden_dim);
    let mut init_rng = DeterministicRng::seed(config.seed ^ 0x1217);
    let mut model = GnnModel::new(&model_cfg, &mut init_rng);
    let mut opt = Adam::new(config.learning_rate);
    let sampler = NeighborSampler::new(config.fanouts.clone());
    let id_map = FusedIdMap::new();

    let win = config.window.max(1);
    // Every epoch shuffles the same node set into the same batch count.
    let batches_per_epoch = MinibatchPlan::new(train_nodes, config.batch_size, config.seed, 0)
        .iter()
        .count() as u64;
    let total = config.epochs as u64 * batches_per_epoch;

    let mut iteration_losses = Vec::new();
    let mut epoch_losses = Vec::new();
    let mut val_accuracy = Vec::new();
    let mut epoch_loss_sum = 0.0f32;
    let mut epoch_batches = 0u64;
    let mut next: u64 = 0;

    if let Some(ckpt) = resume {
        let st = ckpt.trainer.as_ref().ok_or_else(|| {
            CheckpointError::Mismatch(
                "checkpoint has no trainer section (was it saved by a simulated run?)".into(),
            )
        })?;
        if st.seed != config.seed {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint was trained with seed {} but this run uses seed {}",
                st.seed, config.seed
            )));
        }
        if st.next_batch > total {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint cursor at batch {} but this run only has {total} batches \
                 ({} epochs of {batches_per_epoch})",
                st.next_batch, config.epochs
            )));
        }
        if st.iteration_losses.len() as u64 != st.next_batch {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint cursor at batch {} but {} iteration losses recorded",
                st.next_batch,
                st.iteration_losses.len()
            )));
        }
        model
            .load_state(&st.model)
            .map_err(CheckpointError::Mismatch)?;
        opt.restore(&st.optimizer);
        iteration_losses = st.iteration_losses.clone();
        epoch_losses = st.epoch_losses.clone();
        val_accuracy = st.val_accuracy.clone();
        epoch_loss_sum = st.epoch_loss_sum;
        epoch_batches = st.epoch_batches;
        next = st.next_batch;
    }

    // Gather a subgraph's feature rows (the memory IO phase); runs on the
    // parallel backend above the gather cutoff.
    let gather = |sg: &SampledSubgraph| -> Matrix {
        let idx: Vec<usize> = sg.nodes.iter().map(|n| n.index()).collect();
        Matrix::gather_flat(feats, dim, labels.len(), &idx)
    };

    while next < total {
        let epoch = next / batches_per_epoch;
        let _epoch_span = fastgl_telemetry::span("trainer.epoch").with_u64("epoch", epoch);
        let plan = MinibatchPlan::new(train_nodes, config.batch_size, config.seed, epoch);
        let batches: Vec<&[NodeId]> = plan.iter().collect();

        while next < total && next / batches_per_epoch == epoch {
            let r = (next % batches_per_epoch) as usize;
            let start = (r / win) * win;
            let chunk = &batches[start..(start + win).min(batches.len())];
            // Sample the whole window even when resuming into its middle:
            // the reorder below needs every member, and each batch's
            // stream re-derives from its plan position, so the re-sampled
            // window is identical to the first time around.
            let subgraphs: Vec<SampledSubgraph> = chunk
                .iter()
                .enumerate()
                .map(|(i, seeds)| {
                    let mut rng = batch_rng(config.seed, epoch, (start + i) as u64);
                    sampler.sample(graph, seeds, &id_map, &mut rng).0
                })
                .collect();
            let order: Vec<usize> = if config.reorder && subgraphs.len() > 1 {
                let sets: Vec<&[NodeId]> =
                    subgraphs.iter().map(|s| s.sorted_global_ids()).collect();
                greedy_reorder(&match_degree_matrix(&sets))
            } else {
                (0..subgraphs.len()).collect()
            };

            // Skip the window entries an interrupted run already executed.
            for &idx in order.iter().skip(r - start) {
                if halt_after.is_some_and(|h| next >= h) {
                    return Ok(TrainOutcome::Interrupted(Box::new(Checkpoint {
                        trainer: Some(TrainerState {
                            seed: config.seed,
                            next_batch: next,
                            model: model.state(),
                            optimizer: opt.state(),
                            iteration_losses,
                            epoch_losses,
                            val_accuracy,
                            epoch_loss_sum,
                            epoch_batches,
                        }),
                        simulation: None,
                    })));
                }
                let sg = &subgraphs[idx];
                let _iter_span =
                    fastgl_telemetry::span("trainer.iteration").with_u64("nodes", sg.num_nodes());
                fastgl_telemetry::observe("trainer.batch_nodes", sg.num_nodes());
                let x = gather(sg);
                let batch_labels: Vec<u32> = sg
                    .seed_locals
                    .iter()
                    .map(|&l| labels[sg.nodes[l as usize].index()])
                    .collect();
                opt.next_iteration();
                let logits = {
                    let _fwd = fastgl_telemetry::span("trainer.forward");
                    model.forward(sg, &x)
                };
                let out = fastgl_tensor::loss::softmax_cross_entropy(&logits, &batch_labels);
                {
                    let _bwd = fastgl_telemetry::span("trainer.backward");
                    model.backward(sg, &out.grad);
                    model.apply_grads(&mut opt);
                }
                iteration_losses.push(out.loss);
                epoch_loss_sum += out.loss;
                epoch_batches += 1;
                next += 1;
            }
        }

        // The inner loop only exits at an epoch boundary (halts return).
        epoch_losses.push(epoch_loss_sum / epoch_batches.max(1) as f32);
        epoch_loss_sum = 0.0;
        epoch_batches = 0;

        if !val_nodes.is_empty() {
            let mut val_rng = DeterministicRng::seed(config.seed ^ 0x7A1).derive(epoch);
            let mut correct = 0.0;
            let mut total_eval = 0usize;
            for seeds in val_nodes.chunks(config.batch_size) {
                let (sg, _) = sampler.sample(graph, seeds, &id_map, &mut val_rng);
                let x = gather(&sg);
                let batch_labels: Vec<u32> = sg
                    .seed_locals
                    .iter()
                    .map(|&l| labels[sg.nodes[l as usize].index()])
                    .collect();
                let (_, acc) = model.evaluate(&sg, &x, &batch_labels);
                correct += acc * batch_labels.len() as f64;
                total_eval += batch_labels.len();
            }
            val_accuracy.push(correct / total_eval.max(1) as f64);
        }
    }

    // Final training accuracy: evaluate the trained model on a re-sample
    // of the final epoch's last planned batch. A pure function of the
    // final weights, so it survives kill/resume unchanged.
    let final_accuracy = if total == 0 {
        0.0
    } else {
        let last = total - 1;
        let (epoch, r) = (
            last / batches_per_epoch,
            (last % batches_per_epoch) as usize,
        );
        let plan = MinibatchPlan::new(train_nodes, config.batch_size, config.seed, epoch);
        let seeds = plan.iter().nth(r).expect("plan covers its own batch count");
        let mut rng = batch_rng(config.seed, epoch, r as u64);
        let (sg, _) = sampler.sample(graph, seeds, &id_map, &mut rng);
        let x = gather(&sg);
        let batch_labels: Vec<u32> = sg
            .seed_locals
            .iter()
            .map(|&l| labels[sg.nodes[l as usize].index()])
            .collect();
        model.evaluate(&sg, &x, &batch_labels).1
    };

    Ok(TrainOutcome::Complete(ConvergenceRun {
        iteration_losses,
        epoch_losses,
        final_accuracy,
        val_accuracy,
    }))
}

/// Exact (non-sampled) full-graph accuracy of a trained model: runs the
/// forward pass over every node's complete neighbourhood and scores the
/// predictions of `nodes` — the standard inference step after sampled
/// training (sampling is a training-time approximation only).
///
/// # Panics
///
/// Panics if `features` is not materialized or `labels` does not cover the
/// graph.
pub fn full_graph_accuracy(
    model: &mut GnnModel,
    graph: &Csr,
    features: &FeatureStore,
    labels: &[u32],
    nodes: &[NodeId],
) -> f64 {
    let feats = features
        .as_slice()
        .expect("full-graph inference needs materialized features");
    assert_eq!(labels.len() as u64, graph.num_nodes(), "one label per node");
    let sg = fastgl_sample::full_graph_blocks(graph, model.num_layers());
    let dim = features.dim();
    let x = Matrix::from_vec(graph.num_nodes() as usize, dim, feats.to_vec());
    let logits = model.forward(&sg, &x);
    let mut correct = 0usize;
    for &node in nodes {
        let row = logits.row(node.index());
        let mut best = 0usize;
        for (c, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = c;
            }
        }
        if best == labels[node.index()] as usize {
            correct += 1;
        }
    }
    correct as f64 / nodes.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgl_graph::generate::community::{self, CommunityConfig};

    fn data() -> community::CommunityGraph {
        community::generate(
            &CommunityConfig {
                num_nodes: 1_200,
                num_classes: 4,
                intra_degree: 12.0,
                inter_degree: 1.0,
                feature_dim: 16,
                feature_noise: 0.8,
            },
            3,
        )
    }

    fn nodes(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn quick_config() -> TrainerConfig {
        TrainerConfig {
            fanouts: vec![4, 4],
            batch_size: 128,
            epochs: 4,
            learning_rate: 0.01,
            ..Default::default()
        }
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let d = data();
        let run = train(
            &d.graph,
            &d.features,
            &d.labels,
            &nodes(600),
            &quick_config(),
        );
        assert_eq!(run.epoch_losses.len(), 4);
        let first = run.epoch_losses[0];
        let last = *run.epoch_losses.last().unwrap();
        assert!(last < first * 0.8, "loss {first} -> {last}");
        assert!(run.final_accuracy > 0.5, "accuracy {}", run.final_accuracy);
    }

    #[test]
    fn reordered_training_converges_like_default() {
        // The paper's Fig. 16 claim: FastGL (reordered) converges to
        // approximately the same loss as DGL (default order).
        let d = data();
        let mut cfg = quick_config();
        let base = train(&d.graph, &d.features, &d.labels, &nodes(600), &cfg);
        cfg.reorder = true;
        let reordered = train(&d.graph, &d.features, &d.labels, &nodes(600), &cfg);
        let a = base.tail_loss(10);
        let b = reordered.tail_loss(10);
        assert!(
            (a - b).abs() < 0.15 * a.max(b),
            "converged losses diverge: {a} vs {b}"
        );
    }

    #[test]
    fn full_graph_inference_matches_sampled_training_quality() {
        let d = data();
        let train_nodes = nodes(600);
        let cfg = quick_config();
        let run = train(&d.graph, &d.features, &d.labels, &train_nodes, &cfg);
        assert!(run.final_accuracy > 0.5);
        // Rebuild the trained model via the same deterministic path, then
        // score it exactly over the full graph on held-out nodes.
        let num_classes = d.labels.iter().copied().max().unwrap() as usize + 1;
        let model_cfg = fastgl_gnn::ModelConfig::paper(cfg.model, d.features.dim(), num_classes)
            .with_layers(cfg.fanouts.len())
            .with_hidden(cfg.hidden_dim);
        let mut init_rng = DeterministicRng::seed(cfg.seed ^ 0x1217);
        let mut fresh = GnnModel::new(&model_cfg, &mut init_rng);
        // Untrained full-graph accuracy is near chance...
        let held_out: Vec<NodeId> = (900..1_200).map(NodeId).collect();
        let untrained =
            full_graph_accuracy(&mut fresh, &d.graph, &d.features, &d.labels, &held_out);
        assert!(untrained < 0.6, "untrained accuracy {untrained}");
        // ...and training the same model raises it far above chance.
        let rerun = train(&d.graph, &d.features, &d.labels, &train_nodes, &cfg);
        assert!(rerun.final_accuracy > untrained);
    }

    #[test]
    fn deterministic_runs() {
        let d = data();
        let cfg = quick_config();
        let a = train(&d.graph, &d.features, &d.labels, &nodes(400), &cfg);
        let b = train(&d.graph, &d.features, &d.labels, &nodes(400), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn tail_loss_of_short_runs() {
        let run = ConvergenceRun {
            iteration_losses: vec![4.0, 2.0],
            epoch_losses: vec![3.0],
            final_accuracy: 0.0,
            val_accuracy: vec![],
        };
        assert_eq!(run.tail_loss(10), 3.0);
        assert_eq!(run.tail_loss(1), 2.0);
    }

    #[test]
    fn validation_accuracy_tracks_learning() {
        let d = data();
        let train_nodes = nodes(600);
        let val_nodes: Vec<NodeId> = (600..900).map(NodeId).collect();
        let run = train_with_validation(
            &d.graph,
            &d.features,
            &d.labels,
            &train_nodes,
            &val_nodes,
            &quick_config(),
        );
        assert_eq!(run.val_accuracy.len(), 4);
        let first = run.val_accuracy[0];
        let last = *run.val_accuracy.last().unwrap();
        // The community task is easy enough to solve within one epoch, so
        // assert the trajectory is non-degrading and ends high.
        assert!(last >= first - 0.05, "val accuracy {first} -> {last}");
        assert!(last > 0.8, "final val accuracy {last}");
        assert!(run.val_accuracy.iter().all(|a| (0.0..=1.0).contains(a)));
        // Plain train() records no validation.
        let plain = train(
            &d.graph,
            &d.features,
            &d.labels,
            &train_nodes,
            &quick_config(),
        );
        assert!(plain.val_accuracy.is_empty());
    }

    #[test]
    fn kill_and_resume_is_bit_identical() {
        let d = data();
        let cfg = TrainerConfig {
            reorder: true,
            epochs: 3,
            ..quick_config()
        };
        let train_nodes = nodes(500);
        let val_nodes: Vec<NodeId> = (600..800).map(NodeId).collect();
        let full = train_with_validation(
            &d.graph,
            &d.features,
            &d.labels,
            &train_nodes,
            &val_nodes,
            &cfg,
        );
        // Kill mid-window, mid-epoch (batch 5 of 4-per-epoch windows).
        let TrainOutcome::Interrupted(ckpt) = train_resumable(
            &d.graph,
            &d.features,
            &d.labels,
            &train_nodes,
            &val_nodes,
            &cfg,
            None,
            Some(5),
        )
        .unwrap() else {
            panic!("expected an interruption")
        };
        assert_eq!(ckpt.trainer.as_ref().unwrap().next_batch, 5);
        let resumed = train_resumable(
            &d.graph,
            &d.features,
            &d.labels,
            &train_nodes,
            &val_nodes,
            &cfg,
            Some(&ckpt),
            None,
        )
        .unwrap();
        assert_eq!(resumed, TrainOutcome::Complete(full));
    }

    #[test]
    fn mismatched_trainer_checkpoints_are_typed_errors() {
        let d = data();
        let cfg = quick_config();
        let train_nodes = nodes(400);
        let no_trainer = Checkpoint::default();
        let err = train_resumable(
            &d.graph,
            &d.features,
            &d.labels,
            &train_nodes,
            &[],
            &cfg,
            Some(&no_trainer),
            None,
        )
        .unwrap_err();
        assert!(err.to_string().contains("no trainer section"), "{err}");

        let TrainOutcome::Interrupted(ckpt) = train_resumable(
            &d.graph,
            &d.features,
            &d.labels,
            &train_nodes,
            &[],
            &cfg,
            None,
            Some(2),
        )
        .unwrap() else {
            panic!("expected an interruption")
        };
        let mut wrong_seed = cfg.clone();
        wrong_seed.seed ^= 1;
        let err = train_resumable(
            &d.graph,
            &d.features,
            &d.labels,
            &train_nodes,
            &[],
            &wrong_seed,
            Some(&ckpt),
            None,
        )
        .unwrap_err();
        assert!(err.to_string().contains("seed"), "{err}");

        let mut short = cfg.clone();
        short.epochs = 0;
        let err = train_resumable(
            &d.graph,
            &d.features,
            &d.labels,
            &train_nodes,
            &[],
            &short,
            Some(&ckpt),
            None,
        )
        .unwrap_err();
        assert!(err.to_string().contains("batches"), "{err}");
    }

    #[test]
    fn halt_at_zero_checkpoints_fresh_state() {
        let d = data();
        let cfg = quick_config();
        let train_nodes = nodes(400);
        let TrainOutcome::Interrupted(ckpt) = train_resumable(
            &d.graph,
            &d.features,
            &d.labels,
            &train_nodes,
            &[],
            &cfg,
            None,
            Some(0),
        )
        .unwrap() else {
            panic!("expected an interruption")
        };
        let st = ckpt.trainer.as_ref().unwrap();
        assert_eq!(st.next_batch, 0);
        assert!(st.iteration_losses.is_empty());
        let resumed = train_resumable(
            &d.graph,
            &d.features,
            &d.labels,
            &train_nodes,
            &[],
            &cfg,
            Some(&ckpt),
            None,
        )
        .unwrap();
        let direct = train(&d.graph, &d.features, &d.labels, &train_nodes, &cfg);
        assert_eq!(resumed, TrainOutcome::Complete(direct));
    }

    #[test]
    #[should_panic(expected = "materialized features")]
    fn virtual_features_rejected() {
        let d = data();
        let virt = FeatureStore::virtual_store(d.graph.num_nodes(), 16);
        let _ = train(&d.graph, &virt, &d.labels, &nodes(10), &quick_config());
    }
}
