//! Real (numeric) training for the convergence study (paper Fig. 16).
//!
//! The paper validates FastGL's correctness by showing its training loss
//! matches DGL's: the three techniques change *when and how* data moves,
//! never *what* is computed — except that Reorder permutes the mini-batch
//! order within each sampled window, which stochastic optimisation is
//! robust to. This module trains real models (real gradients, real Adam)
//! with and without reordering so the claim can be verified numerically.

use crate::match_reorder::greedy_reorder;
use fastgl_gnn::{GnnModel, ModelConfig, ModelKind};
use fastgl_graph::{Csr, DeterministicRng, FeatureStore, NodeId};
use fastgl_sample::overlap::match_degree_matrix;
use fastgl_sample::{FusedIdMap, MinibatchPlan, NeighborSampler, SampledSubgraph};
use fastgl_tensor::loss::accuracy;
use fastgl_tensor::{Adam, Matrix};

/// Configuration of a convergence run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerConfig {
    /// Model family.
    pub model: ModelKind,
    /// Hidden width.
    pub hidden_dim: usize,
    /// Per-hop fanouts (defines the layer count).
    pub fanouts: Vec<usize>,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Whether mini-batches are greedily reordered per window (FastGL) or
    /// run in the sampled order (DGL).
    pub reorder: bool,
    /// Reorder window size.
    pub window: usize,
    /// Random seed (sampling and initialisation).
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            model: ModelKind::Gcn,
            hidden_dim: 64,
            fanouts: vec![5, 10],
            batch_size: 256,
            learning_rate: 0.003,
            epochs: 5,
            reorder: false,
            window: 4,
            seed: 1,
        }
    }
}

/// The trace of a convergence run.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceRun {
    /// Loss of every training iteration, in execution order.
    pub iteration_losses: Vec<f32>,
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Training accuracy measured after the final epoch.
    pub final_accuracy: f64,
    /// Held-out accuracy after each epoch (empty when no validation nodes
    /// were supplied).
    pub val_accuracy: Vec<f64>,
}

impl ConvergenceRun {
    /// Mean of the final `k` iteration losses (converged level).
    pub fn tail_loss(&self, k: usize) -> f32 {
        let n = self.iteration_losses.len();
        let k = k.min(n).max(1);
        self.iteration_losses[n - k..].iter().sum::<f32>() / k as f32
    }
}

/// Trains a model on a labelled graph and records the loss trajectory.
///
/// # Panics
///
/// Panics if `features` is not materialized, `labels` does not cover the
/// graph, or `train_nodes` is empty.
pub fn train(
    graph: &Csr,
    features: &FeatureStore,
    labels: &[u32],
    train_nodes: &[NodeId],
    config: &TrainerConfig,
) -> ConvergenceRun {
    train_with_validation(graph, features, labels, train_nodes, &[], config)
}

/// [`train`] with a held-out node set evaluated (forward only, sampled the
/// same way as training batches) after every epoch.
///
/// # Panics
///
/// Same conditions as [`train`].
pub fn train_with_validation(
    graph: &Csr,
    features: &FeatureStore,
    labels: &[u32],
    train_nodes: &[NodeId],
    val_nodes: &[NodeId],
    config: &TrainerConfig,
) -> ConvergenceRun {
    let feats = features
        .as_slice()
        .expect("convergence training needs materialized features");
    assert_eq!(labels.len() as u64, graph.num_nodes(), "one label per node");
    assert!(!train_nodes.is_empty(), "no training nodes");
    let num_classes = labels.iter().copied().max().unwrap_or(0) as usize + 1;
    let dim = features.dim();

    let model_cfg = ModelConfig::paper(config.model, dim, num_classes)
        .with_layers(config.fanouts.len())
        .with_hidden(config.hidden_dim);
    let mut init_rng = DeterministicRng::seed(config.seed ^ 0x1217);
    let mut model = GnnModel::new(&model_cfg, &mut init_rng);
    let mut opt = Adam::new(config.learning_rate);
    let sampler = NeighborSampler::new(config.fanouts.clone());
    let id_map = FusedIdMap::new();

    let mut iteration_losses = Vec::new();
    let mut epoch_losses = Vec::new();
    let mut val_accuracy = Vec::new();
    let mut last_logits_labels: Option<(Matrix, Vec<u32>)> = None;

    // Gather a subgraph's feature rows (the memory IO phase); runs on the
    // parallel backend above the gather cutoff.
    let gather = |sg: &SampledSubgraph| -> Matrix {
        let idx: Vec<usize> = sg.nodes.iter().map(|n| n.index()).collect();
        Matrix::gather_flat(feats, dim, labels.len(), &idx)
    };

    for epoch in 0..config.epochs {
        let _epoch_span = fastgl_telemetry::span("trainer.epoch").with_u64("epoch", epoch as u64);
        let plan = MinibatchPlan::new(train_nodes, config.batch_size, config.seed, epoch as u64);
        let mut rng = DeterministicRng::seed(config.seed ^ 0xABCD).derive(epoch as u64);
        let batches: Vec<&[NodeId]> = plan.iter().collect();
        let mut epoch_loss = 0.0f32;
        let mut count = 0usize;

        for chunk in batches.chunks(config.window.max(1)) {
            // Sample the window (identical draws whether or not we reorder:
            // sampling happens before ordering, as in Fig. 5).
            let subgraphs: Vec<SampledSubgraph> = chunk
                .iter()
                .map(|seeds| sampler.sample(graph, seeds, &id_map, &mut rng).0)
                .collect();
            let order: Vec<usize> = if config.reorder && subgraphs.len() > 1 {
                let sets: Vec<&[NodeId]> =
                    subgraphs.iter().map(|s| s.sorted_global_ids()).collect();
                greedy_reorder(&match_degree_matrix(&sets))
            } else {
                (0..subgraphs.len()).collect()
            };

            for &idx in &order {
                let sg = &subgraphs[idx];
                let _iter_span =
                    fastgl_telemetry::span("trainer.iteration").with_u64("nodes", sg.num_nodes());
                fastgl_telemetry::observe("trainer.batch_nodes", sg.num_nodes());
                let x = gather(sg);
                let batch_labels: Vec<u32> = sg
                    .seed_locals
                    .iter()
                    .map(|&l| labels[sg.nodes[l as usize].index()])
                    .collect();
                opt.next_iteration();
                let logits = {
                    let _fwd = fastgl_telemetry::span("trainer.forward");
                    model.forward(sg, &x)
                };
                let out = fastgl_tensor::loss::softmax_cross_entropy(&logits, &batch_labels);
                {
                    let _bwd = fastgl_telemetry::span("trainer.backward");
                    model.backward(sg, &out.grad);
                    model.apply_grads(&mut opt);
                }
                iteration_losses.push(out.loss);
                epoch_loss += out.loss;
                count += 1;
                last_logits_labels = Some((logits, batch_labels));
            }
        }
        epoch_losses.push(epoch_loss / count.max(1) as f32);

        if !val_nodes.is_empty() {
            let mut val_rng = DeterministicRng::seed(config.seed ^ 0x7A1).derive(epoch as u64);
            let mut correct = 0.0;
            let mut total = 0usize;
            for seeds in val_nodes.chunks(config.batch_size) {
                let (sg, _) = sampler.sample(graph, seeds, &id_map, &mut val_rng);
                let x = gather(&sg);
                let batch_labels: Vec<u32> = sg
                    .seed_locals
                    .iter()
                    .map(|&l| labels[sg.nodes[l as usize].index()])
                    .collect();
                let (_, acc) = model.evaluate(&sg, &x, &batch_labels);
                correct += acc * batch_labels.len() as f64;
                total += batch_labels.len();
            }
            val_accuracy.push(correct / total.max(1) as f64);
        }
    }

    let final_accuracy = last_logits_labels
        .map(|(logits, labels)| accuracy(&logits, &labels))
        .unwrap_or(0.0);
    ConvergenceRun {
        iteration_losses,
        epoch_losses,
        final_accuracy,
        val_accuracy,
    }
}

/// Exact (non-sampled) full-graph accuracy of a trained model: runs the
/// forward pass over every node's complete neighbourhood and scores the
/// predictions of `nodes` — the standard inference step after sampled
/// training (sampling is a training-time approximation only).
///
/// # Panics
///
/// Panics if `features` is not materialized or `labels` does not cover the
/// graph.
pub fn full_graph_accuracy(
    model: &mut GnnModel,
    graph: &Csr,
    features: &FeatureStore,
    labels: &[u32],
    nodes: &[NodeId],
) -> f64 {
    let feats = features
        .as_slice()
        .expect("full-graph inference needs materialized features");
    assert_eq!(labels.len() as u64, graph.num_nodes(), "one label per node");
    let sg = fastgl_sample::full_graph_blocks(graph, model.num_layers());
    let dim = features.dim();
    let x = Matrix::from_vec(graph.num_nodes() as usize, dim, feats.to_vec());
    let logits = model.forward(&sg, &x);
    let mut correct = 0usize;
    for &node in nodes {
        let row = logits.row(node.index());
        let mut best = 0usize;
        for (c, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = c;
            }
        }
        if best == labels[node.index()] as usize {
            correct += 1;
        }
    }
    correct as f64 / nodes.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgl_graph::generate::community::{self, CommunityConfig};

    fn data() -> community::CommunityGraph {
        community::generate(
            &CommunityConfig {
                num_nodes: 1_200,
                num_classes: 4,
                intra_degree: 12.0,
                inter_degree: 1.0,
                feature_dim: 16,
                feature_noise: 0.8,
            },
            3,
        )
    }

    fn nodes(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn quick_config() -> TrainerConfig {
        TrainerConfig {
            fanouts: vec![4, 4],
            batch_size: 128,
            epochs: 4,
            learning_rate: 0.01,
            ..Default::default()
        }
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let d = data();
        let run = train(
            &d.graph,
            &d.features,
            &d.labels,
            &nodes(600),
            &quick_config(),
        );
        assert_eq!(run.epoch_losses.len(), 4);
        let first = run.epoch_losses[0];
        let last = *run.epoch_losses.last().unwrap();
        assert!(last < first * 0.8, "loss {first} -> {last}");
        assert!(run.final_accuracy > 0.5, "accuracy {}", run.final_accuracy);
    }

    #[test]
    fn reordered_training_converges_like_default() {
        // The paper's Fig. 16 claim: FastGL (reordered) converges to
        // approximately the same loss as DGL (default order).
        let d = data();
        let mut cfg = quick_config();
        let base = train(&d.graph, &d.features, &d.labels, &nodes(600), &cfg);
        cfg.reorder = true;
        let reordered = train(&d.graph, &d.features, &d.labels, &nodes(600), &cfg);
        let a = base.tail_loss(10);
        let b = reordered.tail_loss(10);
        assert!(
            (a - b).abs() < 0.15 * a.max(b),
            "converged losses diverge: {a} vs {b}"
        );
    }

    #[test]
    fn full_graph_inference_matches_sampled_training_quality() {
        let d = data();
        let train_nodes = nodes(600);
        let cfg = quick_config();
        let run = train(&d.graph, &d.features, &d.labels, &train_nodes, &cfg);
        assert!(run.final_accuracy > 0.5);
        // Rebuild the trained model via the same deterministic path, then
        // score it exactly over the full graph on held-out nodes.
        let num_classes = d.labels.iter().copied().max().unwrap() as usize + 1;
        let model_cfg = fastgl_gnn::ModelConfig::paper(cfg.model, d.features.dim(), num_classes)
            .with_layers(cfg.fanouts.len())
            .with_hidden(cfg.hidden_dim);
        let mut init_rng = DeterministicRng::seed(cfg.seed ^ 0x1217);
        let mut fresh = GnnModel::new(&model_cfg, &mut init_rng);
        // Untrained full-graph accuracy is near chance...
        let held_out: Vec<NodeId> = (900..1_200).map(NodeId).collect();
        let untrained =
            full_graph_accuracy(&mut fresh, &d.graph, &d.features, &d.labels, &held_out);
        assert!(untrained < 0.6, "untrained accuracy {untrained}");
        // ...and training the same model raises it far above chance.
        let rerun = train(&d.graph, &d.features, &d.labels, &train_nodes, &cfg);
        assert!(rerun.final_accuracy > untrained);
    }

    #[test]
    fn deterministic_runs() {
        let d = data();
        let cfg = quick_config();
        let a = train(&d.graph, &d.features, &d.labels, &nodes(400), &cfg);
        let b = train(&d.graph, &d.features, &d.labels, &nodes(400), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn tail_loss_of_short_runs() {
        let run = ConvergenceRun {
            iteration_losses: vec![4.0, 2.0],
            epoch_losses: vec![3.0],
            final_accuracy: 0.0,
            val_accuracy: vec![],
        };
        assert_eq!(run.tail_loss(10), 3.0);
        assert_eq!(run.tail_loss(1), 2.0);
    }

    #[test]
    fn validation_accuracy_tracks_learning() {
        let d = data();
        let train_nodes = nodes(600);
        let val_nodes: Vec<NodeId> = (600..900).map(NodeId).collect();
        let run = train_with_validation(
            &d.graph,
            &d.features,
            &d.labels,
            &train_nodes,
            &val_nodes,
            &quick_config(),
        );
        assert_eq!(run.val_accuracy.len(), 4);
        let first = run.val_accuracy[0];
        let last = *run.val_accuracy.last().unwrap();
        // The community task is easy enough to solve within one epoch, so
        // assert the trajectory is non-degrading and ends high.
        assert!(last >= first - 0.05, "val accuracy {first} -> {last}");
        assert!(last > 0.8, "final val accuracy {last}");
        assert!(run.val_accuracy.iter().all(|a| (0.0..=1.0).contains(a)));
        // Plain train() records no validation.
        let plain = train(
            &d.graph,
            &d.features,
            &d.labels,
            &train_nodes,
            &quick_config(),
        );
        assert!(plain.val_accuracy.is_empty());
    }

    #[test]
    #[should_panic(expected = "materialized features")]
    fn virtual_features_rejected() {
        let d = data();
        let virt = FeatureStore::virtual_store(d.graph.num_nodes(), 16);
        let _ = train(&d.graph, &virt, &d.labels, &nodes(10), &quick_config());
    }
}
