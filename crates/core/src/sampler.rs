//! The sample-phase engine: draws subgraphs and converts the run's event
//! counts into simulated time.

use crate::config::{FastGlConfig, IdMapKind, SampleDevice, SamplerKind};
use fastgl_gpusim::{CostParams, SimTime};
use fastgl_graph::{Csr, DeterministicRng, NodeId};
use fastgl_sample::{
    BaselineIdMap, FusedIdMap, IdMap, LayerWiseSampler, NeighborSampler, RandomWalkSampler,
    SampleStats, SampledSubgraph,
};

/// Time attribution of one sampled mini-batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleTiming {
    /// Total sample-phase time (draws + ID map + per-batch overhead).
    pub total: SimTime,
    /// The ID-map share of `total`.
    pub id_map: SimTime,
}

/// Draws subgraphs under a configured sampler / device / ID-map strategy
/// and prices the work.
#[derive(Debug, Clone)]
pub struct SamplerEngine {
    kind: SamplerKind,
    device: SampleDevice,
    id_map: IdMapKind,
    neighbor: NeighborSampler,
    walk: RandomWalkSampler,
    layer_wise: LayerWiseSampler,
    baseline_map: BaselineIdMap,
    fused_map: FusedIdMap,
}

impl SamplerEngine {
    /// An engine matching `config`.
    pub fn new(config: &FastGlConfig) -> Self {
        Self {
            kind: config.sampler,
            device: config.sample_device,
            id_map: config.id_map,
            neighbor: NeighborSampler::new(config.fanouts.clone()),
            walk: RandomWalkSampler::paper_default(),
            // Per-layer node budgets: fanout × batch size approximates the
            // LADIES guidance of budgets proportional to layer width.
            layer_wise: LayerWiseSampler::new(
                config
                    .fanouts
                    .iter()
                    .map(|&f| f * config.batch_size.max(1) as usize)
                    .collect(),
            ),
            baseline_map: BaselineIdMap::new(),
            fused_map: FusedIdMap::new(),
        }
    }

    /// The active ID-map strategy as a trait object.
    fn id_mapper(&self) -> &dyn IdMap {
        match self.id_map {
            IdMapKind::Baseline => &self.baseline_map,
            IdMapKind::Fused => &self.fused_map,
        }
    }

    /// Samples one mini-batch.
    pub fn sample_batch(
        &self,
        graph: &Csr,
        seeds: &[NodeId],
        rng: &mut DeterministicRng,
    ) -> (SampledSubgraph, SampleStats) {
        let _span =
            fastgl_telemetry::span("core.sample_batch").with_u64("seeds", seeds.len() as u64);
        match self.kind {
            SamplerKind::Neighbor => self.neighbor.sample(graph, seeds, self.id_mapper(), rng),
            SamplerKind::RandomWalk => self.walk.sample(graph, seeds, self.id_mapper(), rng),
            SamplerKind::LayerWise => self.layer_wise.sample(graph, seeds, self.id_mapper(), rng),
        }
    }

    /// Prices a sampling run's event counts (paper §3.3 cost structure).
    pub fn sample_time(&self, stats: &SampleStats, cost: &CostParams) -> SampleTiming {
        let m = &stats.id_map;
        match self.device {
            SampleDevice::Cpu => {
                // PyG-style: single-digit-thread CPU sampling; renumbering
                // is hash-map work at CPU speed per processed ID.
                let draw_ns = stats.edges_sampled as f64 * cost.cpu_sample_edge_ns;
                let map_ns =
                    (m.total_ids + m.probes + m.lookups) as f64 * cost.cpu_sample_edge_ns * 0.5;
                let id_map = SimTime::from_secs_f64(map_ns * 1e-9);
                SampleTiming {
                    total: SimTime::from_secs_f64(draw_ns * 1e-9)
                        + id_map
                        + SimTime::from_nanos(cost.per_batch_overhead_ns),
                    id_map,
                }
            }
            SampleDevice::Gpu => {
                let draw_ns = stats.edges_sampled as f64 * cost.gpu_sample_edge_ns;
                let map_ns = m.total_ids as f64 * cost.gpu_hash_op_ns
                    + m.probes as f64 * cost.gpu_probe_ns
                    + m.cas_conflicts as f64 * cost.gpu_cas_conflict_ns
                    + m.sync_serializations as f64 * cost.gpu_sync_serialization_ns
                    + m.lookups as f64 * cost.gpu_lookup_ns
                    + ((m.kernel_launches + m.device_syncs) * cost.kernel_launch_ns) as f64;
                let id_map = SimTime::from_secs_f64(map_ns * 1e-9);
                SampleTiming {
                    total: SimTime::from_secs_f64(draw_ns * 1e-9)
                        + id_map
                        + SimTime::from_nanos(cost.per_batch_overhead_ns),
                    id_map,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgl_graph::generate::rmat::{self, RmatConfig};

    fn graph() -> Csr {
        rmat::generate(&RmatConfig::social(30_000, 300_000), 2)
    }

    fn seeds() -> Vec<NodeId> {
        (0..1_024).map(|i| NodeId(i * 13 % 30_000)).collect()
    }

    fn engine(cfg: &FastGlConfig) -> SamplerEngine {
        SamplerEngine::new(cfg)
    }

    #[test]
    fn cpu_sampling_is_far_slower_than_gpu() {
        let g = graph();
        let cost = CostParams::default();
        let mut cfg = FastGlConfig {
            fanouts: vec![5, 5],
            ..Default::default()
        };
        let gpu = engine(&cfg);
        cfg.sample_device = SampleDevice::Cpu;
        let cpu = engine(&cfg);
        let mut rng = DeterministicRng::seed(1);
        let (_, stats) = gpu.sample_batch(&g, &seeds(), &mut rng);
        let t_gpu = gpu.sample_time(&stats, &cost);
        let t_cpu = cpu.sample_time(&stats, &cost);
        assert!(
            t_cpu.total.as_secs_f64() > 5.0 * t_gpu.total.as_secs_f64(),
            "cpu {} gpu {}",
            t_cpu.total,
            t_gpu.total
        );
    }

    #[test]
    fn fused_map_is_faster_than_baseline() {
        let g = graph();
        let cost = CostParams::default();
        let mut cfg = FastGlConfig {
            fanouts: vec![5, 10],
            ..Default::default()
        };
        let fused = engine(&cfg);
        cfg.id_map = IdMapKind::Baseline;
        let base = engine(&cfg);
        let mut r1 = DeterministicRng::seed(2);
        let mut r2 = DeterministicRng::seed(2);
        let (_, fs) = fused.sample_batch(&g, &seeds(), &mut r1);
        let (_, bs) = base.sample_batch(&g, &seeds(), &mut r2);
        let tf = fused.sample_time(&fs, &cost);
        let tb = base.sample_time(&bs, &cost);
        let ratio = tb.id_map.as_secs_f64() / tf.id_map.as_secs_f64();
        // Paper Table 8: the baseline's ID map is 2.1x – 2.7x slower.
        assert!(ratio > 1.5, "ID-map ratio {ratio}");
        assert!(ratio < 6.0, "ID-map ratio {ratio}");
    }

    #[test]
    fn id_map_dominates_gpu_sample_phase() {
        // Paper §3.3: the ID map takes up to 70% of the baseline sample
        // phase on GPU.
        let g = graph();
        let cost = CostParams::default();
        let cfg = FastGlConfig {
            fanouts: vec![5, 10],
            id_map: IdMapKind::Baseline,
            ..Default::default()
        };
        let base = engine(&cfg);
        let mut rng = DeterministicRng::seed(3);
        let (_, stats) = base.sample_batch(&g, &seeds(), &mut rng);
        let t = base.sample_time(&stats, &cost);
        let share = t.id_map.as_secs_f64() / t.total.as_secs_f64();
        assert!(share > 0.3, "id map share {share}");
    }

    #[test]
    fn layer_wise_sampler_runs_through_pipeline_engine() {
        let g = graph();
        let cfg = FastGlConfig::default()
            .with_batch_size(64)
            .with_fanouts(vec![2, 3])
            .with_layer_wise();
        let eng = engine(&cfg);
        let mut rng = DeterministicRng::seed(6);
        let (sg, stats) = eng.sample_batch(&g, &seeds()[..64], &mut rng);
        sg.validate().unwrap();
        assert_eq!(sg.blocks.len(), 2);
        // Budget bound: seeds + Σ fanout × batch.
        assert!(sg.num_nodes() <= 64 + (2 + 3) * 64);
        let t = eng.sample_time(&stats, &CostParams::default());
        assert!(t.total > SimTime::ZERO);
    }

    #[test]
    fn random_walk_sampler_runs() {
        let g = graph();
        let cfg = FastGlConfig::default().with_random_walk();
        let eng = engine(&cfg);
        let mut rng = DeterministicRng::seed(4);
        let (sg, stats) = eng.sample_batch(&g, &seeds(), &mut rng);
        sg.validate().unwrap();
        assert_eq!(sg.blocks.len(), 1);
        let t = eng.sample_time(&stats, &CostParams::default());
        assert!(t.total > SimTime::ZERO);
    }
}
