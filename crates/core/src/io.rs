//! The memory-IO engine: feature loads from host to device.
//!
//! Each load has two stages (paper §7): the host gathers scattered feature
//! rows into a contiguous pinned buffer (sharing host-memory bandwidth with
//! every other GPU's loader process), then the buffer crosses PCIe on the
//! GPU's own link.

use fastgl_gpusim::{PcieEngine, SimTime, SystemSpec};

/// Prices feature loads for one GPU of a possibly multi-GPU system.
#[derive(Debug, Clone)]
pub struct IoEngine {
    pcie: PcieEngine,
    /// Host-gather slowdown from other GPUs' loader processes sharing the
    /// host memory bus (≈ number of concurrently loading GPUs).
    gather_contention: f64,
}

impl IoEngine {
    /// An engine for a system where `concurrent_loaders` GPUs gather from
    /// host memory at once.
    ///
    /// # Panics
    ///
    /// Panics if `concurrent_loaders == 0`.
    pub fn new(spec: &SystemSpec, concurrent_loaders: usize) -> Self {
        assert!(concurrent_loaders > 0, "need at least one loader");
        Self {
            pcie: PcieEngine::new(spec.host.clone()),
            gather_contention: concurrent_loaders as f64,
        }
    }

    /// Time to load `rows` feature rows of `row_bytes` each: contended host
    /// gather plus the PCIe copy. Zero rows cost nothing.
    pub fn load_rows(&mut self, rows: u64, row_bytes: u64) -> SimTime {
        if rows == 0 {
            return SimTime::ZERO;
        }
        let bytes = rows * row_bytes;
        fastgl_telemetry::counter_add("io.rows_loaded", rows);
        fastgl_telemetry::counter_add("io.bytes_h2d", bytes);
        self.pcie.host_gather_time(bytes) * self.gather_contention + self.pcie.h2d(bytes)
    }

    /// Time for a small topology transfer (subgraph CSR); these are
    /// prefetched and overlapped with compute in every system (paper §6.5),
    /// so callers usually only account the latency component.
    pub fn topology_transfer(&mut self, bytes: u64) -> SimTime {
        self.pcie.h2d(bytes)
    }

    /// Feature bytes moved host→device so far.
    pub fn bytes_h2d(&self) -> u64 {
        self.pcie.h2d_total()
    }

    /// Resets the byte ledger.
    pub fn reset(&mut self) {
        self.pcie.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rows_free() {
        let spec = SystemSpec::rtx3090_server(2);
        let mut io = IoEngine::new(&spec, 1);
        assert_eq!(io.load_rows(0, 400), SimTime::ZERO);
        assert_eq!(io.bytes_h2d(), 0);
    }

    #[test]
    fn load_time_scales_with_rows() {
        let spec = SystemSpec::rtx3090_server(2);
        let mut io = IoEngine::new(&spec, 1);
        let t1 = io.load_rows(10_000, 400);
        let t2 = io.load_rows(20_000, 400);
        assert!(t2 > t1);
        assert_eq!(io.bytes_h2d(), 30_000 * 400);
    }

    #[test]
    fn contention_slows_gathers() {
        let spec = SystemSpec::rtx3090_server(8);
        let mut solo = IoEngine::new(&spec, 1);
        let mut crowded = IoEngine::new(&spec, 8);
        let t1 = solo.load_rows(100_000, 400);
        let t8 = crowded.load_rows(100_000, 400);
        assert!(t8 > t1);
        // PCIe copy itself is per-GPU: the slowdown is less than 8x.
        assert!(t8.as_secs_f64() < 8.0 * t1.as_secs_f64());
    }

    #[test]
    #[should_panic(expected = "at least one loader")]
    fn zero_loaders_rejected() {
        let spec = SystemSpec::rtx3090_server(1);
        let _ = IoEngine::new(&spec, 0);
    }
}
