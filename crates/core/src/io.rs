//! The memory-IO engine: feature loads from host to device.
//!
//! Each load has two stages (paper §7): the host gathers scattered feature
//! rows into a contiguous pinned buffer (sharing host-memory bandwidth with
//! every other GPU's loader process), then the buffer crosses PCIe on the
//! GPU's own link.

use fastgl_gpusim::{
    FaultedTransfer, PcieEngine, RetryCostModel, SimTime, SystemSpec, TransferFault,
};

/// Prices feature loads for one GPU of a possibly multi-GPU system.
#[derive(Debug, Clone)]
pub struct IoEngine {
    pcie: PcieEngine,
    /// Host-gather slowdown from other GPUs' loader processes sharing the
    /// host memory bus (≈ number of concurrently loading GPUs).
    gather_contention: f64,
}

impl IoEngine {
    /// An engine for a system where `concurrent_loaders` GPUs gather from
    /// host memory at once.
    ///
    /// # Panics
    ///
    /// Panics if `concurrent_loaders == 0`.
    pub fn new(spec: &SystemSpec, concurrent_loaders: usize) -> Self {
        assert!(concurrent_loaders > 0, "need at least one loader");
        Self {
            pcie: PcieEngine::new(spec.host.clone()),
            gather_contention: concurrent_loaders as f64,
        }
    }

    /// Time to load `rows` feature rows of `row_bytes` each: contended host
    /// gather plus the PCIe copy. Zero rows cost nothing.
    pub fn load_rows(&mut self, rows: u64, row_bytes: u64) -> SimTime {
        if rows == 0 {
            return SimTime::ZERO;
        }
        let bytes = rows * row_bytes;
        fastgl_telemetry::counter_add("io.rows_loaded", rows);
        fastgl_telemetry::counter_add("io.bytes_h2d", bytes);
        self.pcie.host_gather_time(bytes) * self.gather_contention + self.pcie.h2d(bytes)
    }

    /// Like [`load_rows`](Self::load_rows), but the PCIe copy may carry an
    /// injected [`TransferFault`] (see [`crate::resilience`]): a stall
    /// multiplies the copy time, a retryable error adds the `model`'s
    /// backoff and re-sends the wasted partial copies (which are counted
    /// into the byte ledger as real traffic). [`FaultedTransfer::time`]
    /// is the total including recovery overhead; with `fault == None` it
    /// is bit-identical to `load_rows` and the overhead is zero.
    pub fn load_rows_faulted(
        &mut self,
        rows: u64,
        row_bytes: u64,
        fault: Option<&TransferFault>,
        model: &RetryCostModel,
    ) -> FaultedTransfer {
        if rows == 0 {
            return FaultedTransfer::default();
        }
        let bytes = rows * row_bytes;
        fastgl_telemetry::counter_add("io.rows_loaded", rows);
        fastgl_telemetry::counter_add("io.bytes_h2d", bytes);
        let gather = self.pcie.host_gather_time(bytes) * self.gather_contention;
        let mut out = self.pcie.h2d_with_fault(bytes, fault, model);
        out.time += gather;
        out
    }

    /// Time for a small topology transfer (subgraph CSR); these are
    /// prefetched and overlapped with compute in every system (paper §6.5),
    /// so callers usually only account the latency component.
    pub fn topology_transfer(&mut self, bytes: u64) -> SimTime {
        self.pcie.h2d(bytes)
    }

    /// Feature bytes moved host→device so far.
    pub fn bytes_h2d(&self) -> u64 {
        self.pcie.h2d_total()
    }

    /// Resets the byte ledger.
    pub fn reset(&mut self) {
        self.pcie.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rows_free() {
        let spec = SystemSpec::rtx3090_server(2);
        let mut io = IoEngine::new(&spec, 1);
        assert_eq!(io.load_rows(0, 400), SimTime::ZERO);
        assert_eq!(io.bytes_h2d(), 0);
    }

    #[test]
    fn load_time_scales_with_rows() {
        let spec = SystemSpec::rtx3090_server(2);
        let mut io = IoEngine::new(&spec, 1);
        let t1 = io.load_rows(10_000, 400);
        let t2 = io.load_rows(20_000, 400);
        assert!(t2 > t1);
        assert_eq!(io.bytes_h2d(), 30_000 * 400);
    }

    #[test]
    fn contention_slows_gathers() {
        let spec = SystemSpec::rtx3090_server(8);
        let mut solo = IoEngine::new(&spec, 1);
        let mut crowded = IoEngine::new(&spec, 8);
        let t1 = solo.load_rows(100_000, 400);
        let t8 = crowded.load_rows(100_000, 400);
        assert!(t8 > t1);
        // PCIe copy itself is per-GPU: the slowdown is less than 8x.
        assert!(t8.as_secs_f64() < 8.0 * t1.as_secs_f64());
    }

    #[test]
    fn fault_free_faulted_load_matches_load_rows() {
        let spec = SystemSpec::rtx3090_server(2);
        let mut a = IoEngine::new(&spec, 2);
        let mut b = IoEngine::new(&spec, 2);
        let clean = a.load_rows(5_000, 400);
        let faulted = b.load_rows_faulted(5_000, 400, None, &RetryCostModel::default());
        assert_eq!(faulted.time, clean, "bit-identical clean time");
        assert_eq!(faulted.overhead, SimTime::ZERO);
        assert_eq!(faulted.retries, 0);
        assert!(!faulted.stalled);
        assert_eq!(a.bytes_h2d(), b.bytes_h2d());
    }

    #[test]
    fn stall_and_retry_faults_cost_time() {
        let spec = SystemSpec::rtx3090_server(2);
        let model = RetryCostModel::default();
        let mut io = IoEngine::new(&spec, 1);
        let stalled = io.load_rows_faulted(
            10_000,
            400,
            Some(&TransferFault::Stall { factor: 4.0 }),
            &model,
        );
        assert!(stalled.stalled);
        assert!(stalled.overhead > SimTime::ZERO);
        let ledger_after_stall = io.bytes_h2d();
        assert_eq!(
            ledger_after_stall,
            10_000 * 400,
            "stalls move no extra bytes"
        );

        let retried = io.load_rows_faulted(
            10_000,
            400,
            Some(&TransferFault::Retryable { failures: 2 }),
            &model,
        );
        assert_eq!(retried.retries, 2);
        assert!(retried.overhead > SimTime::ZERO);
        assert!(
            io.bytes_h2d() > ledger_after_stall + 10_000 * 400,
            "wasted partial copies are real PCIe traffic"
        );
    }

    #[test]
    fn faulted_zero_rows_free() {
        let spec = SystemSpec::rtx3090_server(1);
        let mut io = IoEngine::new(&spec, 1);
        let out = io.load_rows_faulted(
            0,
            400,
            Some(&TransferFault::Stall { factor: 8.0 }),
            &RetryCostModel::default(),
        );
        assert_eq!(out, FaultedTransfer::default());
    }

    #[test]
    #[should_panic(expected = "at least one loader")]
    fn zero_loaders_rejected() {
        let spec = SystemSpec::rtx3090_server(1);
        let _ = IoEngine::new(&spec, 0);
    }
}
