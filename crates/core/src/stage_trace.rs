//! Stable per-window stage timings of one pipelined epoch.
//!
//! The pipeline used to expose its per-window accounting only as merged
//! telemetry histograms, which cannot be attributed back to individual
//! windows. [`EpochWindowTrace`] is the typed, deterministic record the
//! critical-path analysis in `fastgl-insight` consumes instead: one
//! [`WindowPhases`] entry per window, all in simulated time, so the same
//! run produces the identical trace at any `FASTGL_THREADS` /
//! `FASTGL_PREFETCH` setting.
//!
//! The invariant that makes the trace trustworthy: summing the visible
//! phases over all windows reproduces the epoch's
//! [`PhaseBreakdown`] **exactly** (integer
//! nanoseconds, no tolerance). `visible_sample` carries the overlap
//! model's per-window split (see
//! [`GpuRoles::visible_sample_per_window`](crate::multi_gpu::GpuRoles::visible_sample_per_window));
//! `io` and `compute` are always fully visible.

use fastgl_gpusim::{PhaseBreakdown, SimTime};

/// Simulated phase times of one mini-batch window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowPhases {
    /// Sampling time of the window's batches (before overlap hiding).
    pub sample: SimTime,
    /// Sampling time left on the critical path after overlap hiding
    /// (equals `sample` when the run does not overlap sampling).
    pub visible_sample: SimTime,
    /// Feature-IO time (host gather + PCIe, including fault recovery).
    pub io: SimTime,
    /// Compute time (aggregation + update + all-reduce).
    pub compute: SimTime,
}

impl WindowPhases {
    /// Total visible time the window contributes to the epoch.
    pub fn visible_total(&self) -> SimTime {
        self.visible_sample + self.io + self.compute
    }
}

/// Per-window stage timings of one epoch, in window execution order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EpochWindowTrace {
    /// One entry per mini-batch window.
    pub windows: Vec<WindowPhases>,
    /// Whether the run hid sampling behind training (dedicated sampler
    /// GPUs); when false, `visible_sample == sample` for every window.
    pub overlap_sample: bool,
}

impl EpochWindowTrace {
    /// Number of windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether the epoch ran zero windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The visible phase totals across all windows. Equals the epoch's
    /// reported `EpochStats::breakdown` exactly — pinned by the
    /// `fastgl-insight` integration tests.
    pub fn visible_breakdown(&self) -> PhaseBreakdown {
        let mut b = PhaseBreakdown::default();
        for w in &self.windows {
            b.sample += w.visible_sample;
            b.io += w.io;
            b.compute += w.compute;
        }
        b
    }

    /// Total visible simulated time across all windows.
    pub fn visible_total(&self) -> SimTime {
        self.windows.iter().map(WindowPhases::visible_total).sum()
    }

    /// Sampling time the overlap model hid behind training (zero when the
    /// run does not overlap sampling; the producer-side scaling of
    /// dedicated samplers can make the hidden share negative in theory,
    /// so this saturates at zero per window).
    pub fn hidden_sample(&self) -> SimTime {
        self.windows
            .iter()
            .map(|w| w.sample.saturating_sub(w.visible_sample))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn trace() -> EpochWindowTrace {
        EpochWindowTrace {
            windows: vec![
                WindowPhases {
                    sample: t(100),
                    visible_sample: t(100),
                    io: t(30),
                    compute: t(200),
                },
                WindowPhases {
                    sample: t(90),
                    visible_sample: t(0),
                    io: t(40),
                    compute: t(210),
                },
            ],
            overlap_sample: true,
        }
    }

    #[test]
    fn breakdown_sums_all_windows() {
        let b = trace().visible_breakdown();
        assert_eq!(b.sample, t(100));
        assert_eq!(b.io, t(70));
        assert_eq!(b.compute, t(410));
        assert_eq!(trace().visible_total(), t(580));
        assert_eq!(trace().visible_total(), b.total());
    }

    #[test]
    fn hidden_sample_is_the_overlap_benefit() {
        assert_eq!(trace().hidden_sample(), t(90));
    }

    #[test]
    fn empty_trace() {
        let e = EpochWindowTrace::default();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.visible_total(), SimTime::ZERO);
        assert_eq!(e.visible_breakdown(), PhaseBreakdown::default());
    }
}
