//! The common interface every training system implements.
//!
//! FastGL and all five baselines (PyG-, DGL-, GNNLab-, GNNAdvisor-, and
//! PaGraph-like) run on the same substrate and expose the same interface,
//! so every benchmark compares pipeline *policies* rather than incidental
//! implementation differences — the property the paper gets from running
//! all systems on identical hardware.

use fastgl_gpusim::{PhaseBreakdown, SimTime};
use fastgl_graph::DatasetBundle;
use serde::{Deserialize, Serialize};

/// The measured outcome of one simulated training epoch.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EpochStats {
    /// Per-phase simulated time (per GPU, i.e. the epoch's critical path).
    pub breakdown: PhaseBreakdown,
    /// Mini-batches trained.
    pub iterations: u64,
    /// Feature bytes moved host→device.
    pub bytes_h2d: u64,
    /// Feature rows loaded over PCIe.
    pub rows_loaded: u64,
    /// Feature rows reused from the previous resident mini-batch (Match).
    pub rows_reused: u64,
    /// Feature rows served by the static device cache.
    pub rows_cached: u64,
    /// Neighbour draws performed.
    pub edges_sampled: u64,
    /// Time inside the ID-map process (included in `breakdown.sample`).
    pub id_map_time: SimTime,
    /// Mean L1 hit rate of the naive aggregation traces (0 when the
    /// Memory-Aware kernel runs — it bypasses the caches by construction).
    pub l1_hit_rate: f64,
    /// Mean L2 hit rate of the naive aggregation traces.
    pub l2_hit_rate: f64,
    /// Peak modelled device-memory use, bytes.
    pub peak_memory_bytes: u64,
    /// Mean achieved GFLOP/s of the aggregation kernels.
    pub aggregation_gflops: f64,
}

impl EpochStats {
    /// Total epoch time.
    pub fn total(&self) -> SimTime {
        self.breakdown.total()
    }

    /// Fraction of needed feature rows that crossed PCIe (lower is better;
    /// Match and caching both reduce it).
    pub fn load_fraction(&self) -> f64 {
        let needed = self.rows_loaded + self.rows_reused + self.rows_cached;
        if needed == 0 {
            0.0
        } else {
            self.rows_loaded as f64 / needed as f64
        }
    }

    /// Averages per-epoch statistics the way the paper reports multi-epoch
    /// numbers (peak memory takes the max, everything else the mean).
    ///
    /// Accumulation is sequential in slice order, so averaging a prefix
    /// restored from a checkpoint plus freshly re-run epochs reproduces an
    /// uninterrupted run's rounding bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `stats` is empty.
    pub fn average(stats: &[EpochStats]) -> EpochStats {
        assert!(!stats.is_empty(), "need at least one epoch");
        let epochs = stats.len() as u64;
        let mut acc = EpochStats::default();
        let mut l1 = 0.0;
        let mut l2 = 0.0;
        let mut gf = 0.0;
        let mut peak = 0u64;
        for s in stats {
            acc.breakdown += s.breakdown;
            acc.iterations += s.iterations;
            acc.bytes_h2d += s.bytes_h2d;
            acc.rows_loaded += s.rows_loaded;
            acc.rows_reused += s.rows_reused;
            acc.rows_cached += s.rows_cached;
            acc.edges_sampled += s.edges_sampled;
            acc.id_map_time += s.id_map_time;
            l1 += s.l1_hit_rate;
            l2 += s.l2_hit_rate;
            gf += s.aggregation_gflops;
            peak = peak.max(s.peak_memory_bytes);
        }
        let inv = 1.0 / epochs as f64;
        EpochStats {
            breakdown: acc.breakdown.scaled(inv),
            iterations: acc.iterations / epochs,
            bytes_h2d: (acc.bytes_h2d as f64 * inv) as u64,
            rows_loaded: (acc.rows_loaded as f64 * inv) as u64,
            rows_reused: (acc.rows_reused as f64 * inv) as u64,
            rows_cached: (acc.rows_cached as f64 * inv) as u64,
            edges_sampled: (acc.edges_sampled as f64 * inv) as u64,
            id_map_time: acc.id_map_time * inv,
            l1_hit_rate: l1 * inv,
            l2_hit_rate: l2 * inv,
            peak_memory_bytes: peak,
            aggregation_gflops: gf * inv,
        }
    }
}

/// A sampling-based GNN training system.
pub trait TrainingSystem {
    /// Display name used in benchmark tables.
    fn name(&self) -> &'static str;

    /// Simulates one training epoch over `data` and returns its statistics.
    fn run_epoch(&mut self, data: &DatasetBundle, epoch: u64) -> EpochStats;

    /// Runs `epochs` epochs and returns the average statistics, the way
    /// the paper reports 20-epoch averages.
    fn run_epochs(&mut self, data: &DatasetBundle, epochs: u64) -> EpochStats {
        assert!(epochs > 0, "need at least one epoch");
        let stats: Vec<EpochStats> = (0..epochs).map(|e| self.run_epoch(data, e)).collect();
        EpochStats::average(&stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgl_graph::Dataset;

    struct Fake {
        per_epoch: SimTime,
    }

    impl TrainingSystem for Fake {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn run_epoch(&mut self, _data: &DatasetBundle, epoch: u64) -> EpochStats {
            EpochStats {
                breakdown: PhaseBreakdown {
                    sample: self.per_epoch,
                    io: self.per_epoch * 2,
                    compute: self.per_epoch,
                },
                iterations: 10,
                bytes_h2d: 100,
                rows_loaded: 50,
                rows_reused: 25,
                rows_cached: 25,
                peak_memory_bytes: 1000 + epoch,
                ..Default::default()
            }
        }
    }

    #[test]
    fn run_epochs_averages() {
        let bundle = Dataset::Reddit.generate_scaled(1.0 / 4096.0, 1);
        let mut sys = Fake {
            per_epoch: SimTime::from_millis(10),
        };
        let avg = sys.run_epochs(&bundle, 4);
        assert_eq!(avg.iterations, 10);
        assert_eq!(avg.breakdown.sample, SimTime::from_millis(10));
        assert_eq!(avg.bytes_h2d, 100);
        assert_eq!(avg.peak_memory_bytes, 1003, "peak takes the max");
    }

    #[test]
    fn load_fraction_accounts_reuse_and_cache() {
        let s = EpochStats {
            rows_loaded: 50,
            rows_reused: 25,
            rows_cached: 25,
            ..Default::default()
        };
        assert!((s.load_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(EpochStats::default().load_fraction(), 0.0);
    }
}
