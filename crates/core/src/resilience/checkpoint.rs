//! Epoch/batch checkpointing with a bit-exact hand-rolled binary codec.
//!
//! The workspace's `serde` is an offline marker stand-in (no backend), so
//! checkpoints use the same style of explicit little-endian binary format
//! as `fastgl_graph::io`: magic bytes, a version word, then
//! length-prefixed sections. Floating-point values are stored as raw IEEE
//! bit patterns (`to_le_bytes`), which is what makes a resumed run
//! **bit-identical** to an uninterrupted one — no decimal round-trip.
//!
//! A checkpoint can carry either or both of:
//!
//! * [`TrainerState`] — the numeric trainer's model weights, Adam moments,
//!   loss trajectories, and batch cursor (mid-epoch, batch-granular);
//! * [`SimulationState`] — per-epoch [`EpochStats`] of a simulated
//!   multi-epoch run plus the next epoch to execute (epoch-granular; RNG
//!   cursors are implicit because every per-batch stream is re-derived
//!   from the global batch index).

use crate::system::EpochStats;
use fastgl_gpusim::{PhaseBreakdown, SimTime};
use fastgl_tensor::{AdamSlotState, AdamState};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes of the checkpoint format.
const MAGIC: &[u8; 8] = b"FGLCKPT1";
/// Format version.
const VERSION: u32 = 1;
/// Sanity cap on decoded vector lengths (elements): corrupt length
/// prefixes must not trigger absurd allocations.
const MAX_LEN: u64 = 1 << 33;

/// Errors from checkpoint save/load.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file is not a FastGL checkpoint, or is truncated/corrupt.
    BadFormat(String),
    /// The checkpoint is well-formed but does not fit the run it is being
    /// resumed into (wrong model shape, epoch count, seed, …).
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::BadFormat(msg) => {
                write!(f, "bad checkpoint format: {msg}")
            }
            CheckpointError::Mismatch(msg) => {
                write!(f, "checkpoint does not match this run: {msg}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// The checkpointable state of the numeric trainer
/// (see [`crate::trainer::train_resumable`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerState {
    /// The run's master seed (resume validates it matches the config).
    pub seed: u64,
    /// Global index of the next batch to execute (`epoch * batches_per_epoch
    /// + executed_in_epoch`); RNG cursors are implicit in this index.
    pub next_batch: u64,
    /// Flat model parameters ([`fastgl_gnn::GnnModel::state`]).
    pub model: Vec<f32>,
    /// Adam timestep and moment buffers.
    pub optimizer: AdamState,
    /// Loss of every executed iteration so far, in execution order.
    pub iteration_losses: Vec<f32>,
    /// Mean loss of every completed epoch.
    pub epoch_losses: Vec<f32>,
    /// Held-out accuracy after every completed epoch.
    pub val_accuracy: Vec<f64>,
    /// Running loss sum of the in-flight epoch.
    pub epoch_loss_sum: f32,
    /// Batches contributing to `epoch_loss_sum`.
    pub epoch_batches: u64,
}

/// The checkpointable state of a simulated multi-epoch run
/// (see [`crate::resilience::run_epochs_checkpointed`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimulationState {
    /// The next epoch to simulate.
    pub next_epoch: u64,
    /// Statistics of every completed epoch, in order.
    pub completed: Vec<EpochStats>,
}

/// A saved training position: everything needed to resume a killed run
/// and reproduce the uninterrupted run bit-for-bit.
///
/// # Examples
///
/// In-memory round-trip through the binary codec:
///
/// ```
/// use fastgl_core::resilience::{Checkpoint, SimulationState};
///
/// let ckpt = Checkpoint {
///     trainer: None,
///     simulation: Some(SimulationState {
///         next_epoch: 2,
///         completed: vec![Default::default(); 2],
///     }),
/// };
/// let mut buf = Vec::new();
/// ckpt.write_to(&mut buf).unwrap();
/// let back = Checkpoint::read_from(&buf[..]).unwrap();
/// assert_eq!(back, ckpt);
/// ```
///
/// Truncated files are typed errors, not panics:
///
/// ```
/// use fastgl_core::resilience::{Checkpoint, CheckpointError};
///
/// let err = Checkpoint::read_from(&b"FGLCKPT1"[..4]).unwrap_err();
/// assert!(matches!(err, CheckpointError::BadFormat(_)));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Checkpoint {
    /// Numeric-trainer state, if the checkpoint came from a trainer run.
    pub trainer: Option<TrainerState>,
    /// Simulated-run state, if the checkpoint came from a pipeline run.
    pub simulation: Option<SimulationState>,
}

impl Checkpoint {
    /// Writes the checkpoint to `path` (atomically enough for a crash
    /// drill: the file is complete when `save` returns).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut w)?;
        w.flush()?;
        fastgl_telemetry::counter_add(fastgl_telemetry::names::CHECKPOINT_SAVES, 1);
        Ok(())
    }

    /// Reads a checkpoint back from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on filesystem failure and
    /// [`CheckpointError::BadFormat`] on a truncated or corrupt file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let mut r = BufReader::new(std::fs::File::open(path)?);
        let ckpt = Self::read_from(&mut r)?;
        fastgl_telemetry::counter_add(fastgl_telemetry::names::CHECKPOINT_LOADS, 1);
        Ok(ckpt)
    }

    /// Serialises into any writer (the codec behind [`save`](Self::save)).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on write failure.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), CheckpointError> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        let flags: u8 =
            u8::from(self.trainer.is_some()) | (u8::from(self.simulation.is_some()) << 1);
        w.write_all(&[flags])?;
        if let Some(t) = &self.trainer {
            write_trainer(w, t)?;
        }
        if let Some(s) = &self.simulation {
            write_simulation(w, s)?;
        }
        Ok(())
    }

    /// Deserialises from any reader (the codec behind [`load`](Self::load)).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::BadFormat`] on wrong magic, unsupported
    /// version, truncation, or implausible section lengths.
    pub fn read_from<R: Read>(mut r: R) -> Result<Self, CheckpointError> {
        let mut magic = [0u8; 8];
        read_exact(&mut r, &mut magic, "magic bytes")?;
        if &magic != MAGIC {
            return Err(CheckpointError::BadFormat(format!(
                "not a FastGL checkpoint (magic {:?})",
                String::from_utf8_lossy(&magic)
            )));
        }
        let version = read_u32(&mut r)?;
        if version != VERSION {
            return Err(CheckpointError::BadFormat(format!(
                "unsupported checkpoint version {version} (this build reads {VERSION})"
            )));
        }
        let mut flags = [0u8; 1];
        read_exact(&mut r, &mut flags, "section flags")?;
        let trainer = if flags[0] & 1 != 0 {
            Some(read_trainer(&mut r)?)
        } else {
            None
        };
        let simulation = if flags[0] & 2 != 0 {
            Some(read_simulation(&mut r)?)
        } else {
            None
        };
        Ok(Self {
            trainer,
            simulation,
        })
    }
}

fn write_trainer<W: Write>(w: &mut W, t: &TrainerState) -> Result<(), CheckpointError> {
    w.write_all(&t.seed.to_le_bytes())?;
    w.write_all(&t.next_batch.to_le_bytes())?;
    w.write_all(&t.epoch_loss_sum.to_le_bytes())?;
    w.write_all(&t.epoch_batches.to_le_bytes())?;
    write_f32s(w, &t.model)?;
    w.write_all(&t.optimizer.lr.to_le_bytes())?;
    w.write_all(&t.optimizer.t.to_le_bytes())?;
    w.write_all(&(t.optimizer.slots.len() as u64).to_le_bytes())?;
    for slot in &t.optimizer.slots {
        w.write_all(&slot.slot.to_le_bytes())?;
        write_f32s(w, &slot.m)?;
        write_f32s(w, &slot.v)?;
    }
    write_f32s(w, &t.iteration_losses)?;
    write_f32s(w, &t.epoch_losses)?;
    write_f64s(w, &t.val_accuracy)?;
    Ok(())
}

fn read_trainer<R: Read>(r: &mut R) -> Result<TrainerState, CheckpointError> {
    let seed = read_u64(r)?;
    let next_batch = read_u64(r)?;
    let epoch_loss_sum = read_f32(r)?;
    let epoch_batches = read_u64(r)?;
    let model = read_f32s(r, "model parameters")?;
    let lr = read_f32(r)?;
    let t = read_u64(r)?;
    let num_slots = read_len(r, "optimizer slots")?;
    let mut slots = Vec::with_capacity(num_slots.min(1024) as usize);
    for _ in 0..num_slots {
        let slot = read_u64(r)?;
        let m = read_f32s(r, "Adam first moments")?;
        let v = read_f32s(r, "Adam second moments")?;
        slots.push(AdamSlotState { slot, m, v });
    }
    let iteration_losses = read_f32s(r, "iteration losses")?;
    let epoch_losses = read_f32s(r, "epoch losses")?;
    let val_accuracy = read_f64s(r, "validation accuracy")?;
    Ok(TrainerState {
        seed,
        next_batch,
        model,
        optimizer: AdamState { lr, t, slots },
        iteration_losses,
        epoch_losses,
        val_accuracy,
        epoch_loss_sum,
        epoch_batches,
    })
}

fn write_simulation<W: Write>(w: &mut W, s: &SimulationState) -> Result<(), CheckpointError> {
    w.write_all(&s.next_epoch.to_le_bytes())?;
    w.write_all(&(s.completed.len() as u64).to_le_bytes())?;
    for e in &s.completed {
        for v in [
            e.breakdown.sample.as_nanos(),
            e.breakdown.io.as_nanos(),
            e.breakdown.compute.as_nanos(),
            e.iterations,
            e.bytes_h2d,
            e.rows_loaded,
            e.rows_reused,
            e.rows_cached,
            e.edges_sampled,
            e.id_map_time.as_nanos(),
            e.peak_memory_bytes,
        ] {
            w.write_all(&v.to_le_bytes())?;
        }
        for v in [e.l1_hit_rate, e.l2_hit_rate, e.aggregation_gflops] {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_simulation<R: Read>(r: &mut R) -> Result<SimulationState, CheckpointError> {
    let next_epoch = read_u64(r)?;
    let count = read_len(r, "completed epochs")?;
    let mut completed = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        let sample = SimTime::from_nanos(read_u64(r)?);
        let io = SimTime::from_nanos(read_u64(r)?);
        let compute = SimTime::from_nanos(read_u64(r)?);
        let iterations = read_u64(r)?;
        let bytes_h2d = read_u64(r)?;
        let rows_loaded = read_u64(r)?;
        let rows_reused = read_u64(r)?;
        let rows_cached = read_u64(r)?;
        let edges_sampled = read_u64(r)?;
        let id_map_time = SimTime::from_nanos(read_u64(r)?);
        let peak_memory_bytes = read_u64(r)?;
        let l1_hit_rate = read_f64(r)?;
        let l2_hit_rate = read_f64(r)?;
        let aggregation_gflops = read_f64(r)?;
        completed.push(EpochStats {
            breakdown: PhaseBreakdown {
                sample,
                io,
                compute,
            },
            iterations,
            bytes_h2d,
            rows_loaded,
            rows_reused,
            rows_cached,
            edges_sampled,
            id_map_time,
            l1_hit_rate,
            l2_hit_rate,
            peak_memory_bytes,
            aggregation_gflops,
        });
    }
    Ok(SimulationState {
        next_epoch,
        completed,
    })
}

fn read_exact<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> Result<(), CheckpointError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CheckpointError::BadFormat(format!("truncated checkpoint file (while reading {what})"))
        } else {
            CheckpointError::Io(e)
        }
    })
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, CheckpointError> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b, "a u32 field")?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, CheckpointError> {
    let mut b = [0u8; 8];
    read_exact(r, &mut b, "a u64 field")?;
    Ok(u64::from_le_bytes(b))
}

fn read_f32<R: Read>(r: &mut R) -> Result<f32, CheckpointError> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b, "an f32 field")?;
    Ok(f32::from_le_bytes(b))
}

fn read_f64<R: Read>(r: &mut R) -> Result<f64, CheckpointError> {
    let mut b = [0u8; 8];
    read_exact(r, &mut b, "an f64 field")?;
    Ok(f64::from_le_bytes(b))
}

fn read_len<R: Read>(r: &mut R, what: &str) -> Result<u64, CheckpointError> {
    let len = read_u64(r)?;
    if len > MAX_LEN {
        return Err(CheckpointError::BadFormat(format!(
            "implausible length {len} for {what}: the file is corrupt"
        )));
    }
    Ok(len)
}

fn write_f32s<W: Write>(w: &mut W, values: &[f32]) -> Result<(), CheckpointError> {
    w.write_all(&(values.len() as u64).to_le_bytes())?;
    for v in values {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_f32s<R: Read>(r: &mut R, what: &str) -> Result<Vec<f32>, CheckpointError> {
    let len = read_len(r, what)?;
    let mut out = Vec::with_capacity(len.min(1 << 24) as usize);
    for _ in 0..len {
        out.push(read_f32(r)?);
    }
    Ok(out)
}

fn write_f64s<W: Write>(w: &mut W, values: &[f64]) -> Result<(), CheckpointError> {
    w.write_all(&(values.len() as u64).to_le_bytes())?;
    for v in values {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_f64s<R: Read>(r: &mut R, what: &str) -> Result<Vec<f64>, CheckpointError> {
    let len = read_len(r, what)?;
    let mut out = Vec::with_capacity(len.min(1 << 24) as usize);
    for _ in 0..len {
        out.push(read_f64(r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            trainer: Some(TrainerState {
                seed: 42,
                next_batch: 17,
                model: vec![1.5, -2.25, f32::MIN_POSITIVE, 0.1],
                optimizer: AdamState {
                    lr: 0.003,
                    t: 17,
                    slots: vec![AdamSlotState {
                        slot: 2,
                        m: vec![0.25, -0.5],
                        v: vec![0.125, 0.0625],
                    }],
                },
                iteration_losses: vec![2.0, 1.5, 1.25],
                epoch_losses: vec![1.583_333_3],
                val_accuracy: vec![0.75],
                epoch_loss_sum: 1.25,
                epoch_batches: 1,
            }),
            simulation: Some(SimulationState {
                next_epoch: 3,
                completed: vec![
                    EpochStats {
                        iterations: 9,
                        bytes_h2d: 1 << 20,
                        l1_hit_rate: 0.875,
                        id_map_time: SimTime::from_micros(13),
                        ..Default::default()
                    };
                    3
                ],
            }),
        }
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let ckpt = sample_checkpoint();
        let mut buf = Vec::new();
        ckpt.write_to(&mut buf).unwrap();
        let back = Checkpoint::read_from(&buf[..]).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("fastgl_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ckpt");
        let ckpt = sample_checkpoint();
        ckpt.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ckpt);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_is_bad_format() {
        let err = Checkpoint::read_from(&b"NOTFASTG\x01\x00\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::BadFormat(_)));
        assert!(err.to_string().contains("not a FastGL checkpoint"));
    }

    #[test]
    fn truncation_at_every_prefix_is_graceful() {
        let ckpt = sample_checkpoint();
        let mut buf = Vec::new();
        ckpt.write_to(&mut buf).unwrap();
        // Every strict prefix must fail with a typed error, never panic.
        for cut in 0..buf.len() {
            let err = Checkpoint::read_from(&buf[..cut]).unwrap_err();
            assert!(
                matches!(err, CheckpointError::BadFormat(_)),
                "cut at {cut}: {err}"
            );
            assert!(err.to_string().contains("truncated"), "cut at {cut}");
        }
    }

    #[test]
    fn implausible_lengths_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.push(1); // trainer section present
        buf.extend_from_slice(&[0u8; 28]); // seed, next_batch, loss sum, batches
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd model length
        let err = Checkpoint::read_from(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("implausible length"), "{err}");
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.push(0);
        let err = Checkpoint::read_from(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Checkpoint::load("/nonexistent/fastgl.ckpt").unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }
}
