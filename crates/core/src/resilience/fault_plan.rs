//! Deterministic fault plans: which simulated faults fire, and where.
//!
//! A [`FaultPlan`] is a comma-separated list of `kind@scope=index`
//! entries, optionally suffixed `:magnitude`, configured either through
//! [`crate::FastGlConfig::faults`] or the `FASTGL_FAULTS` environment
//! variable:
//!
//! ```text
//! FASTGL_FAULTS=pcie_stall@batch=7,oom@epoch=1:0.5,worker_panic@window=3
//! ```
//!
//! Triggers are **pure functions of the simulated position** (epoch,
//! batch-in-epoch, window-in-epoch), never of wall clock or thread
//! schedule: a batch-scoped fault fires at that batch index of *every*
//! epoch, an epoch-scoped fault at that one epoch. This keeps
//! `run_epoch` a pure function of `(data, epoch)` even under faults,
//! which is what lets a checkpoint-resumed run replay the exact fault
//! sequence an uninterrupted run saw.

use fastgl_gpusim::{RetryCostModel, TransferFault};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::Mutex;

/// The kinds of fault the plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// PCIe link stall on a batch's feature load (`pcie_stall@batch=K`);
    /// magnitude = stall factor × copy time (default 4).
    PcieStall,
    /// Retryable transfer error on a batch's feature load
    /// (`transfer_error@batch=K`); magnitude = failed attempts (default 1).
    TransferError,
    /// Device-memory pressure at the start of an epoch (`oom@epoch=E`);
    /// magnitude = fraction of the feature cache evicted (default 0.5).
    Oom,
    /// Panic in the sample-stage worker the first time it processes a
    /// window (`worker_panic@window=W`); recovered by stage replay.
    WorkerPanic,
}

impl FaultKind {
    /// The plan-syntax token of the kind.
    pub fn token(self) -> &'static str {
        match self {
            FaultKind::PcieStall => "pcie_stall",
            FaultKind::TransferError => "transfer_error",
            FaultKind::Oom => "oom",
            FaultKind::WorkerPanic => "worker_panic",
        }
    }

    /// The trigger scope the kind requires (`batch`, `epoch`, `window`).
    pub fn scope(self) -> &'static str {
        match self {
            FaultKind::PcieStall | FaultKind::TransferError => "batch",
            FaultKind::Oom => "epoch",
            FaultKind::WorkerPanic => "window",
        }
    }

    fn from_token(token: &str) -> Option<Self> {
        match token {
            "pcie_stall" => Some(FaultKind::PcieStall),
            "transfer_error" => Some(FaultKind::TransferError),
            "oom" => Some(FaultKind::Oom),
            "worker_panic" => Some(FaultKind::WorkerPanic),
            _ => None,
        }
    }
}

/// One entry of a fault plan: a kind, its trigger index, and an optional
/// magnitude (meaning depends on the kind — see [`FaultKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// Trigger index in the kind's scope (batch / epoch / window).
    pub index: u64,
    /// Kind-specific magnitude; `None` uses the kind's default.
    pub magnitude: Option<f64>,
}

impl std::fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}@{}={}",
            self.kind.token(),
            self.kind.scope(),
            self.index
        )?;
        if let Some(m) = self.magnitude {
            write!(f, ":{m}")?;
        }
        Ok(())
    }
}

/// A parse or validation error of a fault plan.
///
/// Every variant renders an actionable message naming the offending
/// entry and the accepted syntax — malformed `FASTGL_FAULTS` values
/// surface as typed errors, never panics.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// The plan string contained no entries.
    EmptyPlan,
    /// An entry between commas was blank.
    EmptyEntry {
        /// 1-based position of the blank entry.
        position: usize,
    },
    /// The fault kind token is not recognised.
    UnknownKind {
        /// The unrecognised token.
        token: String,
    },
    /// The entry lacks the `@scope=index` trigger.
    MissingTrigger {
        /// The offending entry.
        entry: String,
    },
    /// The trigger scope does not match the kind's required scope.
    WrongScope {
        /// The fault kind.
        kind: FaultKind,
        /// The scope token that was given.
        scope: String,
    },
    /// The trigger index is not a non-negative integer.
    BadIndex {
        /// The offending entry.
        entry: String,
        /// The value that failed to parse.
        value: String,
    },
    /// The magnitude suffix is invalid for the kind.
    BadMagnitude {
        /// The fault kind.
        kind: FaultKind,
        /// The offending magnitude text.
        value: String,
        /// What the kind accepts.
        reason: &'static str,
    },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::EmptyPlan => write!(
                f,
                "empty fault plan: expected comma-separated entries like \
                 'pcie_stall@batch=7,oom@epoch=1' (unset FASTGL_FAULTS to \
                 disable injection)"
            ),
            FaultPlanError::EmptyEntry { position } => write!(
                f,
                "entry {position} of the fault plan is blank: remove the \
                 stray comma"
            ),
            FaultPlanError::UnknownKind { token } => write!(
                f,
                "unknown fault kind '{token}': expected one of pcie_stall, \
                 transfer_error, oom, worker_panic"
            ),
            FaultPlanError::MissingTrigger { entry } => write!(
                f,
                "fault entry '{entry}' has no trigger: expected \
                 'kind@scope=index', e.g. 'pcie_stall@batch=7'"
            ),
            FaultPlanError::WrongScope { kind, scope } => write!(
                f,
                "fault kind '{}' triggers on scope '{}', not '{scope}': \
                 write '{}@{}=<index>'",
                kind.token(),
                kind.scope(),
                kind.token(),
                kind.scope(),
            ),
            FaultPlanError::BadIndex { entry, value } => write!(
                f,
                "fault entry '{entry}' has a bad trigger index '{value}': \
                 expected a non-negative integer"
            ),
            FaultPlanError::BadMagnitude {
                kind,
                value,
                reason,
            } => write!(
                f,
                "bad magnitude '{value}' for fault kind '{}': {reason}",
                kind.token(),
            ),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A validated, deterministic fault-injection plan.
///
/// # Examples
///
/// Parsing and round-tripping the `FASTGL_FAULTS` syntax:
///
/// ```
/// use fastgl_core::resilience::{FaultKind, FaultPlan};
///
/// let plan = FaultPlan::parse("pcie_stall@batch=7,oom@epoch=1:0.5").unwrap();
/// assert_eq!(plan.specs().len(), 2);
/// assert_eq!(plan.specs()[0].kind, FaultKind::PcieStall);
/// assert_eq!(plan.to_string(), "pcie_stall@batch=7,oom@epoch=1:0.5");
/// ```
///
/// Malformed plans are typed errors with actionable messages, not panics:
///
/// ```
/// use fastgl_core::resilience::FaultPlan;
///
/// let err = FaultPlan::parse("gpu_on_fire@batch=1").unwrap_err();
/// assert!(err.to_string().contains("unknown fault kind"));
/// let err = FaultPlan::parse("oom@batch=1").unwrap_err();
/// assert!(err.to_string().contains("scope 'epoch'"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Parses the `kind@scope=index[:magnitude],...` syntax.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultPlanError`] encountered, left to right.
    pub fn parse(s: &str) -> Result<Self, FaultPlanError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(FaultPlanError::EmptyPlan);
        }
        let mut specs = Vec::new();
        for (i, raw) in s.split(',').enumerate() {
            let entry = raw.trim();
            if entry.is_empty() {
                return Err(FaultPlanError::EmptyEntry { position: i + 1 });
            }
            specs.push(Self::parse_entry(entry)?);
        }
        Ok(Self { specs })
    }

    fn parse_entry(entry: &str) -> Result<FaultSpec, FaultPlanError> {
        let (kind_tok, trigger) =
            entry
                .split_once('@')
                .ok_or_else(|| FaultPlanError::MissingTrigger {
                    entry: entry.to_string(),
                })?;
        let kind =
            FaultKind::from_token(kind_tok.trim()).ok_or_else(|| FaultPlanError::UnknownKind {
                token: kind_tok.trim().to_string(),
            })?;
        let (scope_tok, rest) =
            trigger
                .split_once('=')
                .ok_or_else(|| FaultPlanError::MissingTrigger {
                    entry: entry.to_string(),
                })?;
        if scope_tok.trim() != kind.scope() {
            return Err(FaultPlanError::WrongScope {
                kind,
                scope: scope_tok.trim().to_string(),
            });
        }
        let (index_tok, magnitude_tok) = match rest.split_once(':') {
            Some((i, m)) => (i, Some(m)),
            None => (rest, None),
        };
        let index = index_tok
            .trim()
            .parse::<u64>()
            .map_err(|_| FaultPlanError::BadIndex {
                entry: entry.to_string(),
                value: index_tok.trim().to_string(),
            })?;
        let magnitude = match magnitude_tok {
            None => None,
            Some(tok) => Some(Self::parse_magnitude(kind, tok.trim())?),
        };
        Ok(FaultSpec {
            kind,
            index,
            magnitude,
        })
    }

    fn parse_magnitude(kind: FaultKind, tok: &str) -> Result<f64, FaultPlanError> {
        let bad = |reason| FaultPlanError::BadMagnitude {
            kind,
            value: tok.to_string(),
            reason,
        };
        let value: f64 = tok
            .parse()
            .map_err(|_| bad("expected a number after ':'"))?;
        match kind {
            FaultKind::PcieStall => {
                if !value.is_finite() || value <= 0.0 {
                    return Err(bad("the stall factor must be a positive number"));
                }
            }
            FaultKind::TransferError => {
                if value.fract() != 0.0 || !(1.0..=16.0).contains(&value) {
                    return Err(bad("the failure count must be an integer in 1..=16"));
                }
            }
            FaultKind::Oom => {
                if !(value.is_finite() && 0.0 < value && value <= 1.0) {
                    return Err(bad("the evicted fraction must be in (0, 1]"));
                }
            }
            FaultKind::WorkerPanic => {
                return Err(bad("worker_panic takes no magnitude"));
            }
        }
        Ok(value)
    }

    /// Reads and parses the `FASTGL_FAULTS` environment variable; an
    /// unset or blank variable means no injection (`Ok(None)`).
    ///
    /// # Errors
    ///
    /// Returns the parse error of a malformed value.
    pub fn from_env() -> Result<Option<Self>, FaultPlanError> {
        match std::env::var("FASTGL_FAULTS") {
            Ok(v) if !v.trim().is_empty() => Self::parse(&v).map(Some),
            _ => Ok(None),
        }
    }

    /// The plan's entries, in declaration order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Whether the plan contains a [`FaultKind::WorkerPanic`] entry.
    pub fn has_worker_panics(&self) -> bool {
        self.specs.iter().any(|s| s.kind == FaultKind::WorkerPanic)
    }
}

impl std::fmt::Display for FaultPlan {
    /// Renders the plan back into its parseable syntax (round-trips).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, spec) in self.specs.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{spec}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for FaultPlan {
    type Err = FaultPlanError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

/// Runtime fault injector: answers "does a fault fire here?" queries from
/// the pipeline's stages.
///
/// Transfer and cache-pressure triggers are stateless pure functions of
/// the simulated position. Worker-panic triggers carry fire-once state
/// *per epoch* (keyed by `(entry, epoch)`): the first attempt at the
/// trigger window panics, the replayed attempt proceeds — and because the
/// state is keyed per epoch, `run_epoch` stays a pure function of the
/// epoch index, which checkpoint/resume relies on.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    model: RetryCostModel,
    fired_panics: Mutex<HashSet<(usize, u64)>>,
}

impl FaultInjector {
    /// An injector executing `plan` with the default retry cost model.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            model: RetryCostModel::default(),
            fired_panics: Mutex::new(HashSet::new()),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The deterministic retry pricing used for injected transfer errors.
    pub fn retry_model(&self) -> &RetryCostModel {
        &self.model
    }

    /// The transfer fault (if any) for the batch at `batch` within its
    /// epoch; first matching plan entry wins.
    pub fn transfer_fault(&self, batch: u64) -> Option<TransferFault> {
        self.plan.specs.iter().find_map(|s| match s.kind {
            FaultKind::PcieStall if s.index == batch => Some(TransferFault::Stall {
                factor: s.magnitude.unwrap_or(4.0),
            }),
            FaultKind::TransferError if s.index == batch => Some(TransferFault::Retryable {
                failures: s.magnitude.unwrap_or(1.0) as u32,
            }),
            _ => None,
        })
    }

    /// The fraction of the feature cache to evict at the start of
    /// `epoch`, if an `oom` entry targets it.
    pub fn cache_pressure(&self, epoch: u64) -> Option<f64> {
        self.plan.specs.iter().find_map(|s| match s.kind {
            FaultKind::Oom if s.index == epoch => Some(s.magnitude.unwrap_or(0.5)),
            _ => None,
        })
    }

    /// Whether the sample-stage worker should panic at `window` of
    /// `epoch`. Fires at most once per plan entry per epoch, so the
    /// executor's replay of the window succeeds.
    pub fn take_worker_panic(&self, epoch: u64, window: u64) -> bool {
        let mut fired = self.fired_panics.lock().expect("injector mutex poisoned");
        for (i, s) in self.plan.specs.iter().enumerate() {
            if s.kind == FaultKind::WorkerPanic && s.index == window && fired.insert((i, epoch)) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_issue_example() {
        let plan =
            FaultPlan::parse("pcie_stall@batch=7,oom@epoch=1,worker_panic@window=3").unwrap();
        assert_eq!(plan.specs().len(), 3);
        assert!(plan.has_worker_panics());
        assert_eq!(
            plan.to_string(),
            "pcie_stall@batch=7,oom@epoch=1,worker_panic@window=3"
        );
    }

    #[test]
    fn round_trips_with_magnitudes() {
        let text = "pcie_stall@batch=2:8,transfer_error@batch=5:3,oom@epoch=0:0.25";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.to_string(), text);
        let again: FaultPlan = plan.to_string().parse().unwrap();
        assert_eq!(plan, again);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let plan = FaultPlan::parse(" pcie_stall@batch=1 , oom@epoch=0 ").unwrap();
        assert_eq!(plan.specs().len(), 2);
    }

    #[test]
    fn rejects_malformed_plans_with_actionable_errors() {
        for (text, needle) in [
            ("", "empty fault plan"),
            ("pcie_stall@batch=1,,oom@epoch=0", "blank"),
            ("meteor_strike@batch=1", "unknown fault kind"),
            ("pcie_stall", "no trigger"),
            ("pcie_stall@batch", "no trigger"),
            ("oom@batch=1", "scope 'epoch'"),
            ("worker_panic@epoch=1", "scope 'window'"),
            ("pcie_stall@batch=minus_one", "bad trigger index"),
            ("pcie_stall@batch=1:-2", "positive"),
            ("transfer_error@batch=1:2.5", "integer in 1..=16"),
            ("transfer_error@batch=1:99", "integer in 1..=16"),
            ("oom@epoch=0:1.5", "(0, 1]"),
            ("worker_panic@window=1:3", "no magnitude"),
        ] {
            let err = FaultPlan::parse(text).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "plan '{text}': '{msg}' lacks '{needle}'"
            );
        }
    }

    #[test]
    fn injector_triggers_are_positional() {
        let inj = FaultInjector::new(
            FaultPlan::parse("pcie_stall@batch=2,transfer_error@batch=4:3,oom@epoch=1").unwrap(),
        );
        assert!(inj.transfer_fault(0).is_none());
        assert!(matches!(
            inj.transfer_fault(2),
            Some(TransferFault::Stall { .. })
        ));
        assert!(matches!(
            inj.transfer_fault(4),
            Some(TransferFault::Retryable { failures: 3 })
        ));
        assert_eq!(inj.cache_pressure(0), None);
        assert_eq!(inj.cache_pressure(1), Some(0.5));
    }

    #[test]
    fn worker_panic_fires_once_per_epoch() {
        let inj = FaultInjector::new(FaultPlan::parse("worker_panic@window=3").unwrap());
        assert!(!inj.take_worker_panic(0, 2));
        assert!(inj.take_worker_panic(0, 3), "first attempt panics");
        assert!(!inj.take_worker_panic(0, 3), "replay proceeds");
        assert!(inj.take_worker_panic(1, 3), "next epoch fires again");
    }
}
