//! Fault-tolerant training: deterministic fault injection, recovery
//! policies, and checkpoint/resume (DESIGN.md §10).
//!
//! FastGL targets multi-hour epochs on 111M-node graphs; production GNN
//! stacks treat preemption, transfer stalls, and OOM as routine events.
//! This module gives the reproduction the same posture, in three parts:
//!
//! * **Fault injection** — [`FaultPlan`] (parsed from
//!   [`crate::FastGlConfig::faults`] or `FASTGL_FAULTS`) describes
//!   simulated PCIe stalls, retryable transfer errors, device-memory
//!   pressure on the feature cache, and stage-worker panics. The
//!   [`FaultInjector`] fires them at deterministic simulated positions.
//! * **Recovery** — transfer faults are priced by the deterministic
//!   retry/backoff model in `fastgl_gpusim::fault`; cache pressure
//!   degrades gracefully (the cache shrinks, the extra PCIe traffic is
//!   counted); worker panics are recovered by the executor's bounded
//!   stage replay ([`crate::executor::PipelineExecutor::with_stage_retries`]).
//!   Every recovery is visible as a telemetry counter
//!   (`fastgl_telemetry::names`) and in [`ResilienceStats`].
//! * **Checkpointing** — [`Checkpoint`] serialises model weights,
//!   optimizer state, the batch/epoch cursor (RNG cursors are implicit:
//!   per-batch streams re-derive from the global batch index), and
//!   completed [`EpochStats`], so a killed run resumes **bit-identically**
//!   — same final weights, same statistics, same simulated time.
//!
//! The determinism-under-replay argument: every source of randomness and
//! every fault trigger is a pure function of the simulated position
//! (epoch, global batch index, window index), never of wall clock,
//! thread schedule, or prefetch depth. Replaying a window or resuming
//! from a cursor therefore reproduces the exact draws, faults, and
//! floating-point accumulation order of the uninterrupted run.

mod checkpoint;
mod fault_plan;

pub use checkpoint::{Checkpoint, CheckpointError, SimulationState, TrainerState};
pub use fault_plan::{FaultInjector, FaultKind, FaultPlan, FaultPlanError, FaultSpec};

use crate::system::{EpochStats, TrainingSystem};
use fastgl_gpusim::SimTime;
use fastgl_graph::DatasetBundle;

/// Counters of fault-recovery activity during one epoch (all zero on a
/// fault-free run).
///
/// Kept separate from [`EpochStats`] on purpose: fault-free statistics
/// stay byte-identical with or without the resilience layer compiled in,
/// and the degradation a fault causes shows up *inside* `EpochStats`
/// (more PCIe bytes, longer IO time) where it belongs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResilienceStats {
    /// Injected PCIe stalls ridden out.
    pub pcie_stalls: u64,
    /// Failed transfer attempts retried with simulated backoff.
    pub transfer_retries: u64,
    /// Simulated time lost to stalls, backoff, and wasted partial copies.
    pub fault_overhead: SimTime,
    /// Feature-cache rows evicted under injected memory pressure.
    pub evicted_rows: u64,
    /// Injected worker panics recovered by window replay.
    pub worker_panics: u64,
    /// Pipeline stage restarts performed by the executor.
    pub stage_replays: u64,
}

impl ResilienceStats {
    /// Whether any fault fired or any recovery ran.
    pub fn any(&self) -> bool {
        *self != Self::default()
    }

    /// Records the counters into telemetry (no-op when all zero, so
    /// fault-free runs leave no resilience metrics behind).
    ///
    /// `stage_replays` is deliberately absent: the executor emits
    /// [`fastgl_telemetry::names::STAGE_REPLAYS`] live as each replay
    /// happens, so re-emitting the per-epoch total here would double
    /// count it.
    pub fn emit_telemetry(&self) {
        use fastgl_telemetry::names;
        for (name, value) in [
            (names::FAULT_PCIE_STALLS, self.pcie_stalls),
            (names::FAULT_TRANSFER_RETRIES, self.transfer_retries),
            (names::FAULT_OVERHEAD_NS, self.fault_overhead.as_nanos()),
            (names::CACHE_EVICTED_ROWS, self.evicted_rows),
            (names::WORKER_PANICS, self.worker_panics),
        ] {
            if value > 0 {
                fastgl_telemetry::counter_add(name, value);
            }
        }
    }
}

impl std::ops::AddAssign for ResilienceStats {
    /// Accumulates another epoch's recovery counters (overhead times add).
    fn add_assign(&mut self, rhs: Self) {
        self.pcie_stalls += rhs.pcie_stalls;
        self.transfer_retries += rhs.transfer_retries;
        self.fault_overhead += rhs.fault_overhead;
        self.evicted_rows += rhs.evicted_rows;
        self.worker_panics += rhs.worker_panics;
        self.stage_replays += rhs.stage_replays;
    }
}

/// The outcome of a checkpointed simulated run: either it finished, or it
/// was interrupted and left a resumable [`Checkpoint`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimOutcome {
    /// The run completed; the averaged statistics match
    /// [`TrainingSystem::run_epochs`] bit-for-bit.
    Complete(EpochStats),
    /// The run was halted; resume by passing the checkpoint back in.
    Interrupted(Box<Checkpoint>),
}

/// Runs `epochs` epochs of `sys` like [`TrainingSystem::run_epochs`], but
/// resumable: `resume` continues from a previous [`Checkpoint`], and
/// `halt_after` (a total completed-epoch count) simulates a kill.
///
/// Epoch `e` of a pipeline is a pure function of `(data, e)` — per-batch
/// RNG streams derive from the global batch index and fault triggers are
/// positional — so re-running the remaining epochs after a resume and
/// re-averaging over the checkpointed prefix reproduces the
/// uninterrupted run's [`EpochStats`] (including per-phase [`SimTime`])
/// bit-for-bit, at any `FASTGL_PREFETCH` × `FASTGL_THREADS` setting.
///
/// # Errors
///
/// Returns [`CheckpointError::Mismatch`] if `resume` lacks a simulation
/// section or does not fit `epochs`.
pub fn run_epochs_checkpointed<S: TrainingSystem + ?Sized>(
    sys: &mut S,
    data: &DatasetBundle,
    epochs: u64,
    resume: Option<&Checkpoint>,
    halt_after: Option<u64>,
) -> Result<SimOutcome, CheckpointError> {
    assert!(epochs > 0, "need at least one epoch");
    let mut completed: Vec<EpochStats> = match resume {
        None => Vec::new(),
        Some(ckpt) => {
            let sim = ckpt.simulation.as_ref().ok_or_else(|| {
                CheckpointError::Mismatch(
                    "checkpoint has no simulation section (was it saved by the numeric trainer?)"
                        .into(),
                )
            })?;
            if sim.completed.len() as u64 != sim.next_epoch {
                return Err(CheckpointError::Mismatch(format!(
                    "checkpoint cursor at epoch {} but {} epochs recorded",
                    sim.next_epoch,
                    sim.completed.len()
                )));
            }
            if sim.next_epoch > epochs {
                return Err(CheckpointError::Mismatch(format!(
                    "checkpoint already ran {} epochs but this run wants {epochs}",
                    sim.next_epoch
                )));
            }
            sim.completed.clone()
        }
    };
    for e in completed.len() as u64..epochs {
        if let Some(halt) = halt_after {
            if e >= halt {
                return Ok(SimOutcome::Interrupted(Box::new(Checkpoint {
                    trainer: None,
                    simulation: Some(SimulationState {
                        next_epoch: e,
                        completed,
                    }),
                })));
            }
        }
        completed.push(sys.run_epoch(data, e));
    }
    Ok(SimOutcome::Complete(EpochStats::average(&completed)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgl_gpusim::PhaseBreakdown;
    use fastgl_graph::Dataset;

    /// A system whose epoch stats depend on the epoch index, to catch
    /// resume-at-wrong-epoch bugs.
    struct Synthetic;

    impl TrainingSystem for Synthetic {
        fn name(&self) -> &'static str {
            "synthetic"
        }

        fn run_epoch(&mut self, _data: &DatasetBundle, epoch: u64) -> EpochStats {
            EpochStats {
                breakdown: PhaseBreakdown {
                    sample: SimTime::from_micros(epoch + 1),
                    ..Default::default()
                },
                iterations: 3,
                bytes_h2d: 100 * (epoch + 1),
                l1_hit_rate: 0.5 + epoch as f64 * 0.01,
                ..Default::default()
            }
        }
    }

    fn bundle() -> DatasetBundle {
        Dataset::Products.generate_scaled(1.0 / 4096.0, 7)
    }

    #[test]
    fn uninterrupted_matches_run_epochs() {
        let data = bundle();
        let direct = Synthetic.run_epochs(&data, 5);
        let via = run_epochs_checkpointed(&mut Synthetic, &data, 5, None, None).unwrap();
        assert_eq!(via, SimOutcome::Complete(direct));
    }

    #[test]
    fn kill_and_resume_is_bit_identical() {
        let data = bundle();
        let full = Synthetic.run_epochs(&data, 6);
        let SimOutcome::Interrupted(ckpt) =
            run_epochs_checkpointed(&mut Synthetic, &data, 6, None, Some(2)).unwrap()
        else {
            panic!("expected an interruption")
        };
        let resumed = run_epochs_checkpointed(&mut Synthetic, &data, 6, Some(&ckpt), None).unwrap();
        assert_eq!(resumed, SimOutcome::Complete(full));
    }

    #[test]
    fn halt_past_the_end_completes() {
        let data = bundle();
        let out = run_epochs_checkpointed(&mut Synthetic, &data, 3, None, Some(99)).unwrap();
        assert!(matches!(out, SimOutcome::Complete(_)));
    }

    #[test]
    fn mismatched_checkpoints_are_typed_errors() {
        let data = bundle();
        let no_sim = Checkpoint::default();
        let err =
            run_epochs_checkpointed(&mut Synthetic, &data, 3, Some(&no_sim), None).unwrap_err();
        assert!(err.to_string().contains("no simulation section"));

        let inconsistent = Checkpoint {
            trainer: None,
            simulation: Some(SimulationState {
                next_epoch: 2,
                completed: vec![EpochStats::default()],
            }),
        };
        let err = run_epochs_checkpointed(&mut Synthetic, &data, 3, Some(&inconsistent), None)
            .unwrap_err();
        assert!(err.to_string().contains("cursor"));

        let overran = Checkpoint {
            trainer: None,
            simulation: Some(SimulationState {
                next_epoch: 5,
                completed: vec![EpochStats::default(); 5],
            }),
        };
        let err =
            run_epochs_checkpointed(&mut Synthetic, &data, 3, Some(&overran), None).unwrap_err();
        assert!(err.to_string().contains("already ran"));
    }

    #[test]
    fn resilience_stats_default_is_quiet() {
        let st = ResilienceStats::default();
        assert!(!st.any());
        let st = ResilienceStats {
            pcie_stalls: 1,
            ..Default::default()
        };
        assert!(st.any());
    }
}
