//! Asynchronous stage-pipelined epoch execution (paper §6.5 / Fig. 5).
//!
//! FastGL overlaps the sample, reorder/match, and feature-load/compute
//! phases of *different* mini-batch windows: while window `w` trains, the
//! sampler already draws window `w + 1`. This module provides that overlap
//! for the host-side execution of [`crate::pipeline::Pipeline`] as a
//! generic three-stage producer/consumer pipeline over bounded channels:
//!
//! * **sample** — draw a window of mini-batch subgraphs (Fused-Map);
//! * **prepare** — reorder the window (Algorithm 1) and build each batch's
//!   Match load set against the resident set;
//! * **execute** — feature load + compute, on the caller's thread.
//!
//! The pipeline changes **wall-clock behaviour only**. Windows flow
//! strictly FIFO through single-producer/single-consumer channels, every
//! stage closure observes them in the same order the serial loop would,
//! and all randomness is derived per batch index upstream — so simulated
//! times, statistics, and floating-point accumulations are bit-identical
//! at any prefetch depth (including the depth-0 serial path) and any
//! `FASTGL_THREADS` setting.
//!
//! Per-stage busy/stall wall time is reported as [`PipelineWallStats`] and
//! exported through `fastgl-telemetry` histograms, giving the pipeline an
//! observable efficiency figure (how much of each stage's wall time was
//! useful work vs. waiting on its neighbours).

use std::sync::mpsc::sync_channel;
use std::time::{Duration, Instant};

/// Wall-clock accounting of one pipeline stage.
///
/// Stall time is split by *direction* so the critical-path analysis in
/// `fastgl-insight` can attribute it: a stage blocked receiving is
/// **starved** (its upstream neighbour is the bottleneck), a stage
/// blocked sending is under **backpressure** (its downstream neighbour
/// is).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageWallStats {
    /// Time spent inside the stage closure (useful work).
    pub busy: Duration,
    /// Time spent starved, blocked receiving from the upstream channel.
    pub stall_in: Duration,
    /// Time spent under backpressure, blocked sending downstream.
    pub stall_out: Duration,
    /// Windows processed.
    pub items: u64,
    /// Panicked stage attempts that were replayed (see
    /// [`PipelineExecutor::with_stage_retries`]).
    pub replays: u64,
}

impl StageWallStats {
    /// Total time blocked on the neighbouring channels (starved +
    /// backpressured).
    pub fn stall(&self) -> Duration {
        self.stall_in + self.stall_out
    }

    /// Fraction of the stage's wall time that was useful work, in
    /// `[0, 1]`; `1.0` for a stage that never ran.
    pub fn utilization(&self) -> f64 {
        let total = self.busy + self.stall();
        if total.is_zero() {
            return 1.0;
        }
        self.busy.as_secs_f64() / total.as_secs_f64()
    }
}

/// Wall-clock accounting of one pipelined epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineWallStats {
    /// Prefetch depth the run used (0 = serial).
    pub prefetch: usize,
    /// Capacity of the inter-stage channels.
    pub channel_bound: usize,
    /// The window-sampling stage.
    pub sample: StageWallStats,
    /// The reorder + match-set stage.
    pub prepare: StageWallStats,
    /// The feature-load + compute stage (caller thread).
    pub execute: StageWallStats,
}

impl PipelineWallStats {
    /// Records the per-stage busy/stall times into telemetry histograms.
    ///
    /// Histograms (not counters) on purpose: wall time varies with thread
    /// count and scheduling, and counter totals are pinned invariant
    /// across `FASTGL_THREADS` by the telemetry test suite.
    pub fn emit_telemetry(&self) {
        use fastgl_telemetry::names;
        for (name_busy, name_in, name_out, st) in [
            (
                names::PIPELINE_SAMPLE_BUSY_NS,
                names::PIPELINE_SAMPLE_STALL_IN_NS,
                names::PIPELINE_SAMPLE_STALL_OUT_NS,
                &self.sample,
            ),
            (
                names::PIPELINE_PREPARE_BUSY_NS,
                names::PIPELINE_PREPARE_STALL_IN_NS,
                names::PIPELINE_PREPARE_STALL_OUT_NS,
                &self.prepare,
            ),
            (
                names::PIPELINE_EXECUTE_BUSY_NS,
                names::PIPELINE_EXECUTE_STALL_IN_NS,
                names::PIPELINE_EXECUTE_STALL_OUT_NS,
                &self.execute,
            ),
        ] {
            fastgl_telemetry::observe(name_busy, st.busy.as_nanos() as u64);
            fastgl_telemetry::observe(name_in, st.stall_in.as_nanos() as u64);
            fastgl_telemetry::observe(name_out, st.stall_out.as_nanos() as u64);
        }
    }
}

/// Runs a window stage under its telemetry span and busy timer.
fn timed<O>(
    st: &mut StageWallStats,
    name: &'static str,
    window: usize,
    f: impl FnOnce() -> O,
) -> O {
    let _span = fastgl_telemetry::span(name).with_u64("window", window as u64);
    let start = Instant::now();
    let out = f();
    st.busy += start.elapsed();
    st.items += 1;
    out
}

/// Like [`timed`], but replays the stage up to `retries` times if it
/// panics (the in-flight window is re-run from scratch). The final
/// attempt runs unguarded so an unrecoverable panic still propagates.
fn timed_replayed<O>(
    st: &mut StageWallStats,
    name: &'static str,
    window: usize,
    retries: usize,
    mut f: impl FnMut() -> O,
) -> O {
    for _ in 0..retries {
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            timed(st, name, window, &mut f)
        }));
        match attempt {
            Ok(out) => return out,
            Err(_) => {
                st.replays += 1;
                fastgl_telemetry::counter_add(fastgl_telemetry::names::STAGE_REPLAYS, 1);
            }
        }
    }
    timed(st, name, window, &mut f)
}

/// The three-stage window pipeline.
///
/// `prefetch` is the number of windows each producer stage may run ahead
/// of its consumer; `0` executes the stages back-to-back on the calling
/// thread (today's serial behaviour, with identical telemetry spans).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineExecutor {
    prefetch: usize,
    channel_bound: usize,
    stage_retries: usize,
}

impl PipelineExecutor {
    /// An executor with the given prefetch depth; the inter-stage channel
    /// capacity defaults to `prefetch.max(1)` and no stage replays.
    pub fn new(prefetch: usize) -> Self {
        Self {
            prefetch,
            channel_bound: prefetch.max(1),
            stage_retries: 0,
        }
    }

    /// Overrides the inter-stage channel capacity (≥ 1). Smaller bounds
    /// increase backpressure without changing any result.
    pub fn with_channel_bound(mut self, bound: usize) -> Self {
        assert!(bound >= 1, "channel bound must be at least 1");
        self.channel_bound = bound;
        self
    }

    /// Allows the `sample` worker stage to be replayed up to `retries`
    /// times if it panics: the in-flight window is re-sampled from
    /// scratch on the same thread, preserving FIFO order — and because
    /// sampling is a pure function of the window index plus per-batch RNG
    /// streams, the replay reproduces the lost window bit-for-bit.
    ///
    /// `prepare` and `execute` are deliberately *not* replayed: both
    /// carry state across windows (the Match resident set, the model
    /// accumulators) that a half-applied panic could leave inconsistent,
    /// and their inputs are consumed. A panic there is a real bug, not a
    /// recoverable fault.
    ///
    /// Replays are counted in [`StageWallStats::replays`] and the
    /// `pipeline.stage.replays` telemetry counter.
    pub fn with_stage_retries(mut self, retries: usize) -> Self {
        self.stage_retries = retries;
        self
    }

    /// The configured prefetch depth.
    pub fn prefetch(&self) -> usize {
        self.prefetch
    }

    /// The configured per-window panic-replay budget of the worker stages.
    pub fn stage_retries(&self) -> usize {
        self.stage_retries
    }

    /// Runs `windows` items through `sample → prepare → execute`.
    ///
    /// Stages see windows in index order (`0..windows`), exactly as the
    /// serial loop would; `execute` always runs on the calling thread, so
    /// it may borrow caller state mutably without synchronisation.
    ///
    /// # Panics
    ///
    /// Panics from the `prepare` and `execute` stages always propagate to
    /// the caller; panics from `sample` propagate once the
    /// [`with_stage_retries`](Self::with_stage_retries) budget is spent.
    pub fn run<W, P, FS, FP, FE>(
        &self,
        windows: usize,
        mut sample: FS,
        mut prepare: FP,
        mut execute: FE,
    ) -> PipelineWallStats
    where
        W: Send,
        P: Send,
        FS: FnMut(usize) -> W + Send,
        FP: FnMut(usize, W) -> P + Send,
        FE: FnMut(usize, P),
    {
        fastgl_telemetry::counter_add(fastgl_telemetry::names::PIPELINE_WINDOWS, windows as u64);
        let mut stats = PipelineWallStats {
            prefetch: self.prefetch,
            channel_bound: self.channel_bound,
            ..Default::default()
        };
        let retries = self.stage_retries;
        if self.prefetch == 0 {
            for w in 0..windows {
                let item = timed_replayed(
                    &mut stats.sample,
                    "pipeline.stage.sample",
                    w,
                    retries,
                    || sample(w),
                );
                let prepared = timed(&mut stats.prepare, "pipeline.stage.prepare", w, || {
                    prepare(w, item)
                });
                timed(&mut stats.execute, "pipeline.stage.execute", w, || {
                    execute(w, prepared)
                });
            }
            stats.emit_telemetry();
            return stats;
        }

        let bound = self.channel_bound;
        let (mut sample_st, mut prepare_st) =
            (StageWallStats::default(), StageWallStats::default());
        std::thread::scope(|scope| {
            let (tx_sampled, rx_sampled) = sync_channel::<(usize, W)>(bound);
            let (tx_prepared, rx_prepared) = sync_channel::<(usize, P)>(bound);

            let sampler = scope.spawn(move || {
                let mut st = StageWallStats::default();
                for w in 0..windows {
                    let item =
                        timed_replayed(&mut st, "pipeline.stage.sample", w, retries, || sample(w));
                    let wait = Instant::now();
                    // A closed channel means a downstream stage panicked;
                    // stop producing and let the join surface the panic.
                    if tx_sampled.send((w, item)).is_err() {
                        break;
                    }
                    st.stall_out += wait.elapsed();
                }
                st
            });

            let preparer = scope.spawn(move || {
                let mut st = StageWallStats::default();
                loop {
                    let wait = Instant::now();
                    let Ok((w, item)) = rx_sampled.recv() else {
                        break;
                    };
                    st.stall_in += wait.elapsed();
                    let prepared = timed(&mut st, "pipeline.stage.prepare", w, || prepare(w, item));
                    let wait = Instant::now();
                    if tx_prepared.send((w, prepared)).is_err() {
                        break;
                    }
                    st.stall_out += wait.elapsed();
                }
                st
            });

            loop {
                let wait = Instant::now();
                let Ok((w, prepared)) = rx_prepared.recv() else {
                    break;
                };
                stats.execute.stall_in += wait.elapsed();
                timed(&mut stats.execute, "pipeline.stage.execute", w, || {
                    execute(w, prepared)
                });
            }
            sample_st = sampler
                .join()
                .unwrap_or_else(|p| std::panic::resume_unwind(p));
            prepare_st = preparer
                .join()
                .unwrap_or_else(|p| std::panic::resume_unwind(p));
        });
        stats.sample = sample_st;
        stats.prepare = prepare_st;
        stats.emit_telemetry();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs a 3-stage arithmetic pipeline and returns the execute-stage
    /// observations `(window, value)` in arrival order.
    fn run_chain(
        executor: PipelineExecutor,
        windows: usize,
    ) -> (Vec<(usize, u64)>, PipelineWallStats) {
        let mut seen = Vec::new();
        let stats = executor.run(
            windows,
            |w| w as u64 * 10,
            |w, x| x + w as u64,
            |w, x| seen.push((w, x)),
        );
        (seen, stats)
    }

    fn expected(windows: usize) -> Vec<(usize, u64)> {
        (0..windows).map(|w| (w, w as u64 * 11)).collect()
    }

    #[test]
    fn serial_depth_runs_in_order() {
        let (seen, stats) = run_chain(PipelineExecutor::new(0), 7);
        assert_eq!(seen, expected(7));
        assert_eq!(stats.sample.items, 7);
        assert_eq!(stats.execute.items, 7);
        assert_eq!(stats.prefetch, 0);
    }

    #[test]
    fn pipelined_depths_preserve_order_and_values() {
        for depth in [1usize, 2, 4, 16] {
            let (seen, stats) = run_chain(PipelineExecutor::new(depth), 23);
            assert_eq!(seen, expected(23), "depth {depth}");
            assert_eq!(stats.prepare.items, 23);
            assert_eq!(stats.channel_bound, depth);
        }
    }

    #[test]
    fn channel_bound_one_backpressure_is_lossless() {
        let (seen, stats) = run_chain(PipelineExecutor::new(4).with_channel_bound(1), 50);
        assert_eq!(seen, expected(50));
        assert_eq!(stats.channel_bound, 1);
        assert_eq!(stats.execute.items, 50);
    }

    #[test]
    fn zero_windows_is_a_noop() {
        for depth in [0usize, 2] {
            let (seen, stats) = run_chain(PipelineExecutor::new(depth), 0);
            assert!(seen.is_empty());
            assert_eq!(stats.sample.items, 0);
        }
    }

    #[test]
    fn stateful_stages_see_windows_fifo() {
        // The prepare stage carries state across windows (like the
        // pipeline's resident set); FIFO delivery makes it deterministic.
        let mut carried = 0u64;
        let mut out = Vec::new();
        PipelineExecutor::new(3).run(
            10,
            |w| w as u64,
            move |_, x| {
                carried += x;
                carried
            },
            |_, running| out.push(running),
        );
        let expect: Vec<u64> = (0..10u64)
            .scan(0, |acc, x| {
                *acc += x;
                Some(*acc)
            })
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn overlap_actually_happens() {
        // With sleeps in producer and consumer, depth-1 pipelining must
        // beat the serial sum of the sleeps.
        let delay = Duration::from_millis(4);
        let windows = 8;
        let work = |_w: usize| std::thread::sleep(delay);
        let start = Instant::now();
        PipelineExecutor::new(1).run(windows, work, |_, _| (), move |w, _| work(w));
        let piped = start.elapsed();
        let serial = delay * 2 * windows as u32;
        assert!(
            piped < serial - delay * 2,
            "pipelined {piped:?} vs serial {serial:?}"
        );
    }

    #[test]
    fn stage_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            PipelineExecutor::new(2).run(
                6,
                |w| w,
                |_, w| {
                    if w == 3 {
                        panic!("prepare stage failure");
                    }
                    w
                },
                |_, _| (),
            );
        });
        assert!(result.is_err());
    }

    #[test]
    fn utilization_bounds() {
        let st = StageWallStats::default();
        assert_eq!(st.utilization(), 1.0);
        let st = StageWallStats {
            busy: Duration::from_millis(3),
            stall_in: Duration::from_millis(1),
            stall_out: Duration::ZERO,
            items: 1,
            replays: 0,
        };
        assert!((st.utilization() - 0.75).abs() < 1e-9);
        let st = StageWallStats {
            stall_out: Duration::from_millis(2),
            ..st
        };
        assert_eq!(st.stall(), Duration::from_millis(3));
        assert!((st.utilization() - 0.5).abs() < 1e-9);
    }

    /// A sample closure that panics the first `failures` times it sees
    /// window `at`, then succeeds — like an injected worker panic.
    fn flaky_sample(at: usize, failures: usize) -> impl FnMut(usize) -> u64 + Send {
        let mut remaining = failures;
        move |w| {
            if w == at && remaining > 0 {
                remaining -= 1;
                panic!("injected worker panic at window {w}");
            }
            w as u64 * 10
        }
    }

    #[test]
    fn sample_replay_recovers_and_counts() {
        for depth in [0usize, 2] {
            let mut seen = Vec::new();
            let stats = PipelineExecutor::new(depth).with_stage_retries(2).run(
                6,
                flaky_sample(3, 1),
                |w, x| x + w as u64,
                |w, x| seen.push((w, x)),
            );
            assert_eq!(seen, expected(6), "depth {depth}: results unchanged");
            assert_eq!(stats.sample.replays, 1, "depth {depth}");
            assert_eq!(stats.sample.items, 6, "only successful windows count");
        }
    }

    #[test]
    fn exhausted_replay_budget_propagates() {
        let result = std::panic::catch_unwind(|| {
            PipelineExecutor::new(2).with_stage_retries(1).run(
                6,
                flaky_sample(2, 5),
                |_, x: u64| x,
                |_, _| (),
            );
        });
        assert!(result.is_err(), "2 attempts cannot absorb 5 failures");
    }

    #[test]
    fn zero_retries_is_todays_behaviour() {
        let result = std::panic::catch_unwind(|| {
            PipelineExecutor::new(0).run(4, flaky_sample(1, 1), |_, x: u64| x, |_, _| ());
        });
        assert!(result.is_err());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_channel_bound_rejected() {
        let _ = PipelineExecutor::new(1).with_channel_bound(0);
    }
}
