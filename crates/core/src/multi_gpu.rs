//! Data-parallel multi-GPU arithmetic (paper §5 and Fig. 14a).
//!
//! FastGL trains data-parallel: training seeds shard round-robin across
//! trainer GPUs, every GPU runs the full pipeline on its shard, and a ring
//! all-reduce synchronises gradients each iteration. GNNLab additionally
//! dedicates GPUs to sampling. This module collects the pure arithmetic of
//! that organisation — shard sizing, host-gather contention, all-reduce
//! cost, and GNNLab's sample-hiding — which [`crate::pipeline::Pipeline`]
//! applies.

use fastgl_gpusim::overlap;
use fastgl_gpusim::transfer::ring_allreduce_time;
use fastgl_gpusim::{SimTime, SystemSpec};

/// The GPU roles of one machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuRoles {
    /// GPUs running the training pipeline.
    pub trainers: usize,
    /// GPUs dedicated to sampling (GNNLab's factored design).
    pub samplers: usize,
}

impl GpuRoles {
    /// Splits `num_gpus` into roles.
    ///
    /// # Panics
    ///
    /// Panics if no GPU remains for training.
    pub fn new(num_gpus: usize, samplers: usize) -> Self {
        assert!(
            samplers < num_gpus,
            "at least one GPU must train ({num_gpus} GPUs, {samplers} samplers)"
        );
        Self {
            trainers: num_gpus - samplers,
            samplers,
        }
    }

    /// Per-iteration gradient all-reduce time across the trainers.
    pub fn allreduce_time(&self, spec: &SystemSpec, param_bytes: u64) -> SimTime {
        if self.trainers <= 1 {
            SimTime::ZERO
        } else {
            ring_allreduce_time(&spec.host, param_bytes, self.trainers)
        }
    }

    /// Host-gather contention factor: the trainers' loader processes share
    /// the host memory bus, so each sees roughly `trainers` times the solo
    /// gather latency.
    pub fn gather_contention(&self) -> f64 {
        self.trainers as f64
    }

    /// GNNLab's visible sample time: `samplers` GPUs sample for all
    /// `trainers`, overlapped with training; only the excess shows.
    ///
    /// This is the infinite-buffer steady-state bound
    /// ([`overlap::steady_state_visible`]) of the shared overlap model —
    /// the per-window variant below tightens it with fill/drain effects.
    ///
    /// With no dedicated samplers the sampling is on the critical path and
    /// returned unchanged.
    pub fn visible_sample_time(
        &self,
        shard_sample_total: SimTime,
        train_total: SimTime,
    ) -> SimTime {
        if self.samplers == 0 {
            return shard_sample_total;
        }
        let sampler_work = shard_sample_total * (self.trainers as f64 / self.samplers as f64);
        overlap::steady_state_visible(sampler_work, train_total)
    }

    /// Per-window visible sample time: the dedicated samplers produce
    /// window `w + 1` while the trainers consume window `w`, so only the
    /// pipeline fill plus any window where sampling outruns training shows
    /// on the critical path ([`overlap::hidden_stage_visible`]).
    ///
    /// `sample[w]` is the shard's sampling time of window `w`; `train[w]`
    /// is the trainers' IO + compute time of the same window. Each
    /// sampler GPU serves `trainers / samplers` shards, scaling the
    /// producer side exactly as [`Self::visible_sample_time`] does.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn visible_sample_windows(&self, sample: &[SimTime], train: &[SimTime]) -> SimTime {
        if self.samplers == 0 {
            return sample.iter().copied().sum();
        }
        let ratio = self.trainers as f64 / self.samplers as f64;
        let produced: Vec<SimTime> = sample.iter().map(|&s| s * ratio).collect();
        overlap::hidden_stage_visible(&produced, train)
    }

    /// Per-window decomposition of [`Self::visible_sample_windows`]: entry
    /// `w` is the sampling time of window `w` that the overlap model leaves
    /// on the critical path. The identity `max(p, c) - c = p ∸ c` (truncated
    /// subtraction, exact on nanosecond integers) splits the aggregate bound
    /// window by window — the fill (`produced[0]`) charges to window 0 and
    /// each later window charges only its production excess over the
    /// preceding window's training — so the entries sum to the aggregate
    /// **exactly**, which `fastgl-insight`'s attribution relies on.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn visible_sample_per_window(&self, sample: &[SimTime], train: &[SimTime]) -> Vec<SimTime> {
        assert_eq!(
            sample.len(),
            train.len(),
            "pipeline stages must cover the same items"
        );
        if self.samplers == 0 {
            return sample.to_vec();
        }
        let ratio = self.trainers as f64 / self.samplers as f64;
        sample
            .iter()
            .enumerate()
            .map(|(w, &s)| {
                let produced = s * ratio;
                if w == 0 {
                    produced
                } else {
                    produced.saturating_sub(train[w - 1])
                }
            })
            .collect()
    }
}

/// Expected parallel speedup of an epoch whose solo breakdown is
/// `(sample, io, compute)` when run on `n` trainer GPUs, under this
/// module's model (perfect shard parallelism, contended gathers, per-batch
/// all-reduce). Used by tests and the scalability experiment as a
/// closed-form cross-check of the pipeline's behaviour.
pub fn ideal_epoch_time(
    sample: SimTime,
    io_gather: SimTime,
    io_copy: SimTime,
    compute: SimTime,
    allreduce_total: SimTime,
    trainers: usize,
) -> SimTime {
    assert!(trainers > 0, "need at least one trainer");
    let n = trainers as u64;
    // Sample, PCIe copies, and compute divide across shards; the host
    // gather divides but is re-multiplied by contention (net unchanged).
    sample / n + io_gather + io_copy / n + compute / n + allreduce_total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn roles_split_and_validate() {
        let r = GpuRoles::new(8, 2);
        assert_eq!(r.trainers, 6);
        assert_eq!(r.samplers, 2);
        assert_eq!(r.gather_contention(), 6.0);
    }

    #[test]
    #[should_panic(expected = "at least one GPU must train")]
    fn all_samplers_rejected() {
        let _ = GpuRoles::new(2, 2);
    }

    #[test]
    fn allreduce_zero_for_single_trainer() {
        let spec = SystemSpec::rtx3090_server(2);
        let solo = GpuRoles::new(2, 1);
        assert_eq!(solo.allreduce_time(&spec, 1 << 20), SimTime::ZERO);
        let duo = GpuRoles::new(2, 0);
        assert!(duo.allreduce_time(&spec, 1 << 20) > SimTime::ZERO);
    }

    #[test]
    fn sample_hiding_semantics() {
        let r = GpuRoles::new(2, 1); // 1 trainer, 1 sampler
                                     // Sampler keeps up: fully hidden.
        assert_eq!(r.visible_sample_time(t(100), t(500)), SimTime::ZERO);
        // Sampler falls behind: the excess shows.
        assert_eq!(r.visible_sample_time(t(800), t(500)), t(300));
        // No dedicated sampler: nothing hidden.
        let plain = GpuRoles::new(2, 0);
        assert_eq!(plain.visible_sample_time(t(800), t(500)), t(800));
    }

    #[test]
    fn per_window_hiding_charges_only_fill_and_excess() {
        let r = GpuRoles::new(2, 1); // 1 trainer, 1 sampler
        let sample = [t(100), t(100), t(100)];
        let train = [t(500), t(500), t(500)];
        // Sampler keeps up: only the first window's fill is visible.
        assert_eq!(r.visible_sample_windows(&sample, &train), t(100));
        // Sampler falls behind on every window: fill + per-window excess.
        let slow = [t(800), t(800), t(800)];
        assert_eq!(r.visible_sample_windows(&slow, &train), t(800 + 300 + 300));
        // No dedicated sampler: the full sum is on the critical path.
        let plain = GpuRoles::new(2, 0);
        assert_eq!(plain.visible_sample_windows(&slow, &train), t(2_400));
        // Never less than the steady-state bound for the same totals.
        let windows = r.visible_sample_windows(&slow, &train);
        let steady = r.visible_sample_time(t(2_400), t(1_500));
        assert!(windows >= steady);
    }

    #[test]
    fn per_window_decomposition_sums_exactly_to_the_aggregate() {
        // Irregular, tie-heavy inputs across several role splits: the
        // per-window entries must reproduce the aggregate bound to the
        // nanosecond, including the float producer scaling.
        for (gpus, samplers) in [(2usize, 1usize), (8, 2), (8, 3), (4, 0)] {
            let r = GpuRoles::new(gpus, samplers);
            let sample: Vec<SimTime> = (0..17).map(|i| t(37 * (i % 5) + i)).collect();
            let train: Vec<SimTime> = (0..17).map(|i| t(120 - 6 * (i % 9))).collect();
            let per = r.visible_sample_per_window(&sample, &train);
            assert_eq!(per.len(), sample.len());
            let sum: SimTime = per.iter().copied().sum();
            assert_eq!(
                sum,
                r.visible_sample_windows(&sample, &train),
                "roles {gpus}/{samplers}"
            );
        }
    }

    #[test]
    fn per_window_fill_and_excess_land_on_the_right_windows() {
        let r = GpuRoles::new(2, 1);
        let sample = [t(100), t(100), t(100)];
        let train = [t(500), t(500), t(500)];
        // Sampler keeps up: only window 0 (the fill) is charged.
        assert_eq!(
            r.visible_sample_per_window(&sample, &train),
            vec![t(100), SimTime::ZERO, SimTime::ZERO]
        );
        // Sampler falls behind: fill plus per-window excess.
        let slow = [t(800), t(800), t(800)];
        assert_eq!(
            r.visible_sample_per_window(&slow, &train),
            vec![t(800), t(300), t(300)]
        );
    }

    #[test]
    #[should_panic(expected = "same items")]
    fn per_window_mismatched_lengths_panic() {
        let r = GpuRoles::new(2, 1);
        let _ = r.visible_sample_per_window(&[t(1)], &[]);
    }

    #[test]
    fn two_samplers_halve_the_sampler_work() {
        let r = GpuRoles::new(8, 2); // 6 trainers, 2 samplers
                                     // Work = 6/2 * shard sample.
        assert_eq!(r.visible_sample_time(t(100), SimTime::ZERO), t(300));
    }

    #[test]
    fn ideal_scaling_is_sublinear_with_fixed_gather() {
        let one = ideal_epoch_time(t(100), t(300), t(300), t(300), SimTime::ZERO, 1);
        let four = ideal_epoch_time(t(100), t(300), t(300), t(300), t(20), 4);
        let speedup = one.as_secs_f64() / four.as_secs_f64();
        assert!(speedup > 1.5 && speedup < 4.0, "speedup {speedup}");
    }
}
