//! The computation-phase cost engine.
//!
//! Converts a mini-batch's per-layer workloads into simulated time under
//! one of three memory-access modes (naive, Memory-Aware, GNNAdvisor-like),
//! charging the aggregation (sparse) and update (dense GEMM) stages of
//! each layer, forward and backward.
//!
//! Tracing every batch through the cache simulator would dominate the
//! benchmark's own runtime, so the engine measures L1/L2 hit rates on the
//! first batch of each layer index and reuses them for the rest of the
//! epoch — later batches of the same layer are statistically identical
//! streams (same sampler, same graph, same fanout).

use crate::config::ComputeMode;
use fastgl_gnn::{LayerWorkload, ModelKind};
use fastgl_gpusim::kernel::gemm_time;
use fastgl_gpusim::{AggregationKernel, SimTime, SubgraphLayerTrace, SystemSpec};
use fastgl_sample::SampledSubgraph;

/// GNNAdvisor's neighbour grouping improves cache locality; we model it as
/// doubling the measured hit rates, capped below 1.
const ADVISOR_LOCALITY_BOOST: f64 = 2.0;

/// The evaluated computation cost of one mini-batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeResult {
    /// Total simulated computation time (forward + backward + update).
    pub time: SimTime,
    /// Per-iteration preprocessing time (GNNAdvisor mode only), already
    /// included in `time`.
    pub preprocess: SimTime,
    /// Mean L1 hit rate over the traced aggregations (naive/advisor only).
    pub l1_hit_rate: f64,
    /// Mean L2 hit rate over the traced aggregations.
    pub l2_hit_rate: f64,
    /// Achieved GFLOP/s of the aggregation stages.
    pub aggregation_gflops: f64,
}

/// Computes simulated per-batch computation times.
#[derive(Debug, Clone)]
pub struct ComputeEngine {
    spec: SystemSpec,
    mode: ComputeMode,
    model: ModelKind,
    kernel: AggregationKernel,
    /// Measured `(h1, h2)` per layer index, captured on the first batch.
    hit_rates: Vec<Option<(f64, f64)>>,
}

impl ComputeEngine {
    /// An engine for `model` under `mode` on `spec`.
    pub fn new(spec: SystemSpec, mode: ComputeMode, model: ModelKind) -> Self {
        let kernel = AggregationKernel::new(spec.device.clone(), spec.cost.clone());
        Self {
            spec,
            mode,
            model,
            kernel,
            hit_rates: Vec::new(),
        }
    }

    /// Matches the trace-replay cache capacities to the workload's scale
    /// factor (see `AggregationKernel::capacity_scale`); clears memoised
    /// hit rates when the scale changes.
    pub fn set_workload_scale(&mut self, scale: f64) {
        let clamped = scale.clamp(1.0 / 4096.0, 1.0);
        if (self.kernel.capacity_scale - clamped).abs() > f64::EPSILON {
            self.kernel = AggregationKernel::new(self.spec.device.clone(), self.spec.cost.clone())
                .with_capacity_scale(clamped);
            self.hit_rates.clear();
        }
    }

    /// Memory-access mode.
    pub fn mode(&self) -> ComputeMode {
        self.mode
    }

    /// Simulated computation time of one mini-batch described by
    /// `subgraph` and its per-layer `workloads`.
    ///
    /// # Panics
    ///
    /// Panics if `workloads.len() != subgraph.blocks.len()`.
    pub fn batch_time(
        &mut self,
        subgraph: &SampledSubgraph,
        workloads: &[LayerWorkload],
    ) -> ComputeResult {
        assert_eq!(
            workloads.len(),
            subgraph.blocks.len(),
            "one workload per block"
        );
        if self.hit_rates.len() < workloads.len() {
            self.hit_rates.resize(workloads.len(), None);
        }
        let mut time = SimTime::ZERO;
        let mut preprocess = SimTime::ZERO;
        let mut l1_sum = 0.0;
        let mut l2_sum = 0.0;
        let mut traced = 0usize;
        let mut agg_flops = 0u64;
        let mut agg_time = SimTime::ZERO;

        for (layer_idx, (block, w)) in subgraph.blocks.iter().zip(workloads).enumerate() {
            let trace = SubgraphLayerTrace {
                offsets: &block.src_offsets,
                sources: &block.src_locals,
                num_sources: w.num_src_rows,
                // Aggregation gathers the raw input features (Eq. 1 runs
                // aggregate-then-update), so its row width is d_in — the
                // wide dimension that makes the stage memory bound.
                feature_dim: w.d_in.max(1),
            };
            // Hit rates of the feature-gather stream, measured once per
            // layer index; the stream is identical in all three modes.
            let (h1, h2) = match self.hit_rates[layer_idx] {
                Some(rates) => rates,
                None => {
                    let measured = self.kernel.naive_cost(&trace);
                    let rates = (measured.l1.hit_rate(), measured.l2.hit_rate());
                    self.hit_rates[layer_idx] = Some(rates);
                    rates
                }
            };
            let agg = match self.mode {
                ComputeMode::MemoryAware => {
                    self.kernel.memory_aware_cost_with_hit_rates(&trace, h1, h2)
                }
                ComputeMode::Naive | ComputeMode::Advisor => {
                    let (h1, h2) = if self.mode == ComputeMode::Advisor {
                        (
                            (h1 * ADVISOR_LOCALITY_BOOST).min(0.95),
                            (h2 * ADVISOR_LOCALITY_BOOST).min(0.95),
                        )
                    } else {
                        (h1, h2)
                    };
                    l1_sum += h1;
                    l2_sum += h2;
                    traced += 1;
                    self.kernel.naive_cost_with_hit_rates(&trace, h1, h2)
                }
            };

            // Fold the kernel's memory-hierarchy taxonomy into the global
            // counters so fastgl-insight can attribute bytes per level.
            agg.profile.emit_telemetry();

            // Attention models do extra per-edge work (scores, softmax);
            // charge the aggregation 1.5x for GAT.
            let gat_factor = if self.model == ModelKind::Gat {
                1.5
            } else {
                1.0
            };
            // Aggregation runs forward and backward (Eq. 1 and Eq. 5).
            let one_pass = agg.cost.time();
            let agg_total = (one_pass + one_pass) * gat_factor;
            time += agg_total;
            agg_time += agg_total;
            agg_flops += ((2 * agg.profile.flops) as f64 * gat_factor) as u64;

            // Update stage: GEMM forward plus two GEMMs backward (dW, dX).
            // GIN's two-layer MLP and SAGE's self/neighbour paths double
            // the update work.
            let gemm_count = match self.model {
                ModelKind::Gin | ModelKind::Sage => 2,
                ModelKind::Gcn | ModelKind::Gat => 1,
            };
            let fwd = gemm_time(
                &self.spec.device,
                &self.spec.cost,
                w.num_dst,
                w.d_in as u64,
                w.d_out as u64,
            );
            time += (fwd * 3) * (gemm_count as f64);

            // GNNAdvisor preprocesses every sampled subgraph before compute.
            if self.mode == ComputeMode::Advisor {
                let p =
                    SimTime::from_secs_f64(w.nnz as f64 * self.spec.cost.preprocess_edge_ns * 1e-9);
                preprocess += p;
                time += p;
            }
        }

        let (l1, l2) = if traced > 0 {
            (l1_sum / traced as f64, l2_sum / traced as f64)
        } else {
            (0.0, 0.0)
        };
        ComputeResult {
            time,
            preprocess,
            l1_hit_rate: l1,
            l2_hit_rate: l2,
            aggregation_gflops: if agg_time == SimTime::ZERO {
                0.0
            } else {
                agg_flops as f64 / agg_time.as_secs_f64() / 1e9
            },
        }
    }

    /// Clears the memoised hit rates (call between datasets).
    pub fn reset_trace_cache(&mut self) {
        self.hit_rates.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgl_gnn::census;
    use fastgl_graph::generate::rmat::{self, RmatConfig};
    use fastgl_graph::{DeterministicRng, NodeId};
    use fastgl_sample::{FusedIdMap, NeighborSampler};
    use std::sync::OnceLock;

    /// A single wide block whose gathered feature rows overflow the L2 —
    /// the regime the paper's graphs are in (their feature tables are GBs).
    fn subgraph() -> &'static SampledSubgraph {
        static SG: OnceLock<SampledSubgraph> = OnceLock::new();
        SG.get_or_init(|| {
            let g = rmat::generate(&RmatConfig::social(200_000, 2_000_000), 1);
            let seeds: Vec<NodeId> = (0..16_384).map(|i| NodeId(i * 11 % 200_000)).collect();
            let mut rng = DeterministicRng::seed(1);
            NeighborSampler::new(vec![15])
                .sample(&g, &seeds, &FusedIdMap::new(), &mut rng)
                .0
        })
    }

    fn workloads(sg: &SampledSubgraph) -> Vec<fastgl_gnn::LayerWorkload> {
        census(sg, &[(64, 256)])
    }

    #[test]
    fn memory_aware_is_faster_than_naive() {
        let sg = subgraph();
        let w = workloads(sg);
        let spec = SystemSpec::rtx3090_server(2);
        let mut naive = ComputeEngine::new(spec.clone(), ComputeMode::Naive, ModelKind::Gcn);
        let mut ma = ComputeEngine::new(spec, ComputeMode::MemoryAware, ModelKind::Gcn);
        let tn = naive.batch_time(sg, &w);
        let tm = ma.batch_time(sg, &w);
        let speedup = tn.time.as_secs_f64() / tm.time.as_secs_f64();
        // Paper Fig. 11: 1.1x – 6.7x computation speedups.
        assert!(speedup > 1.1, "speedup {speedup}");
        assert!(speedup < 10.0, "speedup {speedup}");
    }

    #[test]
    fn advisor_pays_preprocessing() {
        let sg = subgraph();
        let w = workloads(sg);
        let spec = SystemSpec::rtx3090_server(2);
        let mut adv = ComputeEngine::new(spec, ComputeMode::Advisor, ModelKind::Gcn);
        let r = adv.batch_time(sg, &w);
        assert!(r.preprocess > SimTime::ZERO);
        assert!(r.preprocess < r.time);
        // Preprocessing is a large share (paper: up to 75%).
        let share = r.preprocess.as_secs_f64() / r.time.as_secs_f64();
        assert!(share > 0.2, "preprocess share {share}");
    }

    #[test]
    fn hit_rates_are_memoised_across_batches() {
        let sg = subgraph();
        let w = workloads(sg);
        let spec = SystemSpec::rtx3090_server(2);
        let mut naive = ComputeEngine::new(spec, ComputeMode::Naive, ModelKind::Gcn);
        let a = naive.batch_time(sg, &w);
        let b = naive.batch_time(sg, &w);
        assert_eq!(a.l1_hit_rate, b.l1_hit_rate);
        assert_eq!(a.time, b.time);
        naive.reset_trace_cache();
        let c = naive.batch_time(sg, &w);
        assert_eq!(a.time, c.time, "same inputs re-trace to the same rates");
    }

    #[test]
    fn gat_costs_more_than_gcn() {
        let sg = subgraph();
        let w = workloads(sg);
        let spec = SystemSpec::rtx3090_server(2);
        let mut gcn = ComputeEngine::new(spec.clone(), ComputeMode::MemoryAware, ModelKind::Gcn);
        let mut gat = ComputeEngine::new(spec, ComputeMode::MemoryAware, ModelKind::Gat);
        assert!(gat.batch_time(sg, &w).time > gcn.batch_time(sg, &w).time);
    }

    #[test]
    fn gin_costs_more_update_than_gcn() {
        let sg = subgraph();
        let w = workloads(sg);
        let spec = SystemSpec::rtx3090_server(2);
        let mut gcn = ComputeEngine::new(spec.clone(), ComputeMode::MemoryAware, ModelKind::Gcn);
        let mut gin = ComputeEngine::new(spec, ComputeMode::MemoryAware, ModelKind::Gin);
        assert!(gin.batch_time(sg, &w).time > gcn.batch_time(sg, &w).time);
    }

    #[test]
    fn reports_hit_rates_only_for_traced_modes() {
        let sg = subgraph();
        let w = workloads(sg);
        let spec = SystemSpec::rtx3090_server(2);
        let mut ma = ComputeEngine::new(spec.clone(), ComputeMode::MemoryAware, ModelKind::Gcn);
        assert_eq!(ma.batch_time(sg, &w).l1_hit_rate, 0.0);
        let mut naive = ComputeEngine::new(spec, ComputeMode::Naive, ModelKind::Gcn);
        let r = naive.batch_time(sg, &w);
        assert!(r.l1_hit_rate >= 0.0 && r.l1_hit_rate < 1.0);
        assert!(r.aggregation_gflops > 0.0);
    }
}
