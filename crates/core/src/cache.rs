//! Static device-side feature cache (degree-ordered).
//!
//! PaGraph, GNNLab, and (when memory is left over) FastGL itself keep the
//! hottest nodes' feature rows resident on the GPU so their loads never
//! cross PCIe. Under power-law degree distributions the hottest nodes are
//! the high-degree ones — the policy PaGraph uses directly and a close
//! stand-in for GNNLab's pre-sampling-based hotness estimate.

use fastgl_graph::{Csr, NodeId};

/// An immutable set of cached node IDs with membership queries.
///
/// # Example
///
/// ```
/// use fastgl_core::FeatureCache;
/// use fastgl_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new(5).symmetric(true);
/// for i in 1..5 {
///     b.push_edge(0, i); // node 0 is the hub
/// }
/// let cache = FeatureCache::degree_ordered(&b.build(), 1, 400);
/// assert!(cache.contains(NodeId(0)));
/// let load: Vec<NodeId> = (0..5).map(NodeId).collect();
/// let (hits, misses) = cache.partition(&load);
/// assert_eq!((hits, misses.len()), (1, 4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureCache {
    /// Sorted cached IDs.
    cached: Vec<u64>,
    row_bytes: u64,
}

impl FeatureCache {
    /// Caches the `rows` highest-degree nodes of `graph`, each row holding
    /// `row_bytes` of features.
    pub fn degree_ordered(graph: &Csr, rows: u64, row_bytes: u64) -> Self {
        let rows = rows.min(graph.num_nodes());
        let mut cached: Vec<u64> = graph
            .nodes_by_degree_desc()
            .into_iter()
            .take(rows as usize)
            .map(|n| n.0)
            .collect();
        cached.sort_unstable();
        Self { cached, row_bytes }
    }

    /// Caches the first `rows` nodes of an explicit ranking (e.g. the
    /// pre-sampled hotness order GNNLab uses).
    pub fn from_ranking(ranking: &[NodeId], rows: u64, row_bytes: u64) -> Self {
        let rows = rows.min(ranking.len() as u64) as usize;
        let mut cached: Vec<u64> = ranking[..rows].iter().map(|n| n.0).collect();
        cached.sort_unstable();
        cached.dedup();
        Self { cached, row_bytes }
    }

    /// An empty cache.
    pub fn empty() -> Self {
        Self {
            cached: Vec::new(),
            row_bytes: 0,
        }
    }

    /// Number of cached rows.
    pub fn rows(&self) -> u64 {
        self.cached.len() as u64
    }

    /// Device bytes the cache occupies.
    pub fn bytes(&self) -> u64 {
        self.rows() * self.row_bytes
    }

    /// Whether `node`'s features are resident.
    pub fn contains(&self, node: NodeId) -> bool {
        self.cached.binary_search(&node.0).is_ok()
    }

    /// Splits a **sorted** load list into `(hits, misses)`: hits are served
    /// by the cache, misses must cross PCIe.
    ///
    /// Parallelised over contiguous ranges of the load list: each worker
    /// binary-searches its own starting point in the sorted cache and runs
    /// the two-pointer merge from there, so per-range results concatenate
    /// to exactly the serial answer.
    pub fn partition(&self, load: &[NodeId]) -> (u64, Vec<NodeId>) {
        debug_assert!(load.windows(2).all(|w| w[0] < w[1]));
        let parts = fastgl_tensor::parallel::par_chunk_results(
            load.len(),
            fastgl_tensor::parallel::GATHER_GRAIN_ROWS * 4,
            |range| {
                let chunk = &load[range];
                let mut hits = 0u64;
                let mut misses = Vec::with_capacity(chunk.len());
                let mut j = match chunk.first() {
                    Some(first) => self.cached.partition_point(|&c| c < first.0),
                    None => 0,
                };
                for &node in chunk {
                    while j < self.cached.len() && self.cached[j] < node.0 {
                        j += 1;
                    }
                    if j < self.cached.len() && self.cached[j] == node.0 {
                        hits += 1;
                        j += 1;
                    } else {
                        misses.push(node);
                    }
                }
                (hits, misses)
            },
        );
        let mut hits = 0u64;
        let mut misses = Vec::with_capacity(load.len());
        for (h, m) in parts {
            hits += h;
            misses.extend(m);
        }
        fastgl_telemetry::counter_add("cache.hits", hits);
        fastgl_telemetry::counter_add("cache.misses", misses.len() as u64);
        (hits, misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgl_graph::GraphBuilder;

    /// Star graph: node 0 has degree 4, others degree 1.
    fn star() -> Csr {
        GraphBuilder::new(5)
            .symmetric(true)
            .add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(0, 3)
            .add_edge(0, 4)
            .build()
    }

    #[test]
    fn caches_highest_degree_first() {
        let c = FeatureCache::degree_ordered(&star(), 1, 100);
        assert!(c.contains(NodeId(0)));
        assert!(!c.contains(NodeId(1)));
        assert_eq!(c.rows(), 1);
        assert_eq!(c.bytes(), 100);
    }

    #[test]
    fn rows_clamped_to_graph() {
        let c = FeatureCache::degree_ordered(&star(), 100, 8);
        assert_eq!(c.rows(), 5);
    }

    #[test]
    fn partition_splits_hits_and_misses() {
        let c = FeatureCache::degree_ordered(&star(), 2, 8);
        let load: Vec<NodeId> = (0..5).map(NodeId).collect();
        let (hits, misses) = c.partition(&load);
        assert_eq!(hits, 2);
        assert_eq!(misses.len(), 3);
        for m in &misses {
            assert!(!c.contains(*m));
        }
    }

    #[test]
    fn empty_cache_misses_everything() {
        let c = FeatureCache::empty();
        let load: Vec<NodeId> = (0..3).map(NodeId).collect();
        let (hits, misses) = c.partition(&load);
        assert_eq!(hits, 0);
        assert_eq!(misses.len(), 3);
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn from_ranking_respects_order_and_dedups() {
        let ranking = [NodeId(9), NodeId(2), NodeId(9), NodeId(5)];
        let c = FeatureCache::from_ranking(&ranking, 3, 8);
        assert!(c.contains(NodeId(9)));
        assert!(c.contains(NodeId(2)));
        assert!(!c.contains(NodeId(5)), "rank 3 cut before node 5");
        assert_eq!(c.rows(), 2, "duplicate rank entries collapse");
    }

    #[test]
    fn partition_of_empty_load() {
        let c = FeatureCache::degree_ordered(&star(), 2, 8);
        let (hits, misses) = c.partition(&[]);
        assert_eq!(hits, 0);
        assert!(misses.is_empty());
    }
}
