//! Static device-side feature cache (degree-ordered).
//!
//! PaGraph, GNNLab, and (when memory is left over) FastGL itself keep the
//! hottest nodes' feature rows resident on the GPU so their loads never
//! cross PCIe. Under power-law degree distributions the hottest nodes are
//! the high-degree ones — the policy PaGraph uses directly and a close
//! stand-in for GNNLab's pre-sampling-based hotness estimate.
//!
//! The cache remembers its hotness ranking, so under injected
//! device-memory pressure (`oom@epoch=E` in a
//! [`crate::resilience::FaultPlan`]) it can shed its *coldest* rows and
//! keep serving — graceful degradation that shows up as extra PCIe
//! traffic rather than a crash.

use fastgl_graph::{Csr, NodeId};

/// An immutable set of cached node IDs with membership queries.
///
/// # Example
///
/// ```
/// use fastgl_core::FeatureCache;
/// use fastgl_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new(5).symmetric(true);
/// for i in 1..5 {
///     b.push_edge(0, i); // node 0 is the hub
/// }
/// let cache = FeatureCache::degree_ordered(&b.build(), 1, 400);
/// assert!(cache.contains(NodeId(0)));
/// let load: Vec<NodeId> = (0..5).map(NodeId).collect();
/// let (hits, misses) = cache.partition(&load);
/// assert_eq!((hits, misses.len()), (1, 4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureCache {
    /// Sorted cached IDs (the membership index).
    cached: Vec<u64>,
    /// The same IDs in hotness-rank order (hottest first), kept so the
    /// cache can shrink to a prefix under memory pressure.
    by_rank: Vec<u64>,
    row_bytes: u64,
}

impl FeatureCache {
    /// Caches the `rows` highest-degree nodes of `graph`, each row holding
    /// `row_bytes` of features.
    pub fn degree_ordered(graph: &Csr, rows: u64, row_bytes: u64) -> Self {
        let rows = rows.min(graph.num_nodes());
        let by_rank: Vec<u64> = graph
            .nodes_by_degree_desc()
            .into_iter()
            .take(rows as usize)
            .map(|n| n.0)
            .collect();
        Self::from_rank_order(by_rank, row_bytes)
    }

    /// Caches the first `rows` nodes of an explicit ranking (e.g. the
    /// pre-sampled hotness order GNNLab uses); duplicate rank entries
    /// collapse to their first (hottest) occurrence.
    pub fn from_ranking(ranking: &[NodeId], rows: u64, row_bytes: u64) -> Self {
        let rows = rows.min(ranking.len() as u64) as usize;
        let mut seen = std::collections::HashSet::with_capacity(rows);
        let by_rank: Vec<u64> = ranking[..rows]
            .iter()
            .map(|n| n.0)
            .filter(|id| seen.insert(*id))
            .collect();
        Self::from_rank_order(by_rank, row_bytes)
    }

    /// Builds the membership index over an already-deduplicated rank order.
    fn from_rank_order(by_rank: Vec<u64>, row_bytes: u64) -> Self {
        let mut cached = by_rank.clone();
        cached.sort_unstable();
        Self {
            cached,
            by_rank,
            row_bytes,
        }
    }

    /// An empty cache.
    pub fn empty() -> Self {
        Self {
            cached: Vec::new(),
            by_rank: Vec::new(),
            row_bytes: 0,
        }
    }

    /// Number of cached rows.
    pub fn rows(&self) -> u64 {
        self.cached.len() as u64
    }

    /// Device bytes the cache occupies.
    pub fn bytes(&self) -> u64 {
        self.rows() * self.row_bytes
    }

    /// Whether `node`'s features are resident.
    pub fn contains(&self, node: NodeId) -> bool {
        self.cached.binary_search(&node.0).is_ok()
    }

    /// Sheds the coldest `fraction` of the cache (device-memory pressure
    /// fallback): keeps the hottest `1 - fraction` of the ranked rows and
    /// returns the shrunken cache plus the number of rows evicted.
    /// Evicted rows simply miss from then on — their loads cross PCIe.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn evict_fraction(&self, fraction: f64) -> (Self, u64) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "evicted fraction {fraction} outside [0, 1]"
        );
        let keep = (self.by_rank.len() as f64 * (1.0 - fraction)).floor() as usize;
        let evicted = (self.by_rank.len() - keep) as u64;
        let shrunk = Self::from_rank_order(self.by_rank[..keep].to_vec(), self.row_bytes);
        (shrunk, evicted)
    }

    /// Splits a **sorted** load list into `(hits, misses)`: hits are served
    /// by the cache, misses must cross PCIe.
    ///
    /// Parallelised over contiguous ranges of the load list: each worker
    /// binary-searches its own starting point in the sorted cache and runs
    /// the two-pointer merge from there, so per-range results concatenate
    /// to exactly the serial answer.
    pub fn partition(&self, load: &[NodeId]) -> (u64, Vec<NodeId>) {
        debug_assert!(load.windows(2).all(|w| w[0] < w[1]));
        let parts = fastgl_tensor::parallel::par_chunk_results(
            load.len(),
            fastgl_tensor::parallel::GATHER_GRAIN_ROWS * 4,
            |range| {
                let chunk = &load[range];
                let mut hits = 0u64;
                let mut misses = Vec::with_capacity(chunk.len());
                let mut j = match chunk.first() {
                    Some(first) => self.cached.partition_point(|&c| c < first.0),
                    None => 0,
                };
                for &node in chunk {
                    while j < self.cached.len() && self.cached[j] < node.0 {
                        j += 1;
                    }
                    if j < self.cached.len() && self.cached[j] == node.0 {
                        hits += 1;
                        j += 1;
                    } else {
                        misses.push(node);
                    }
                }
                (hits, misses)
            },
        );
        let mut hits = 0u64;
        let mut misses = Vec::with_capacity(load.len());
        for (h, m) in parts {
            hits += h;
            misses.extend(m);
        }
        fastgl_telemetry::counter_add("cache.hits", hits);
        fastgl_telemetry::counter_add("cache.misses", misses.len() as u64);
        (hits, misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgl_graph::GraphBuilder;

    /// Star graph: node 0 has degree 4, others degree 1.
    fn star() -> Csr {
        GraphBuilder::new(5)
            .symmetric(true)
            .add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(0, 3)
            .add_edge(0, 4)
            .build()
    }

    #[test]
    fn caches_highest_degree_first() {
        let c = FeatureCache::degree_ordered(&star(), 1, 100);
        assert!(c.contains(NodeId(0)));
        assert!(!c.contains(NodeId(1)));
        assert_eq!(c.rows(), 1);
        assert_eq!(c.bytes(), 100);
    }

    #[test]
    fn rows_clamped_to_graph() {
        let c = FeatureCache::degree_ordered(&star(), 100, 8);
        assert_eq!(c.rows(), 5);
    }

    #[test]
    fn partition_splits_hits_and_misses() {
        let c = FeatureCache::degree_ordered(&star(), 2, 8);
        let load: Vec<NodeId> = (0..5).map(NodeId).collect();
        let (hits, misses) = c.partition(&load);
        assert_eq!(hits, 2);
        assert_eq!(misses.len(), 3);
        for m in &misses {
            assert!(!c.contains(*m));
        }
    }

    #[test]
    fn empty_cache_misses_everything() {
        let c = FeatureCache::empty();
        let load: Vec<NodeId> = (0..3).map(NodeId).collect();
        let (hits, misses) = c.partition(&load);
        assert_eq!(hits, 0);
        assert_eq!(misses.len(), 3);
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn from_ranking_respects_order_and_dedups() {
        let ranking = [NodeId(9), NodeId(2), NodeId(9), NodeId(5)];
        let c = FeatureCache::from_ranking(&ranking, 3, 8);
        assert!(c.contains(NodeId(9)));
        assert!(c.contains(NodeId(2)));
        assert!(!c.contains(NodeId(5)), "rank 3 cut before node 5");
        assert_eq!(c.rows(), 2, "duplicate rank entries collapse");
    }

    #[test]
    fn partition_of_empty_load() {
        let c = FeatureCache::degree_ordered(&star(), 2, 8);
        let (hits, misses) = c.partition(&[]);
        assert_eq!(hits, 0);
        assert!(misses.is_empty());
    }

    #[test]
    fn eviction_sheds_coldest_rows_first() {
        // Star graph ranked by degree: node 0 (hub) is hottest.
        let c = FeatureCache::degree_ordered(&star(), 5, 8);
        let (half, evicted) = c.evict_fraction(0.5);
        assert_eq!(evicted, 3, "floor(5 * 0.5) = 2 kept");
        assert_eq!(half.rows(), 2);
        assert!(half.contains(NodeId(0)), "the hub survives pressure");
        let (none, evicted) = c.evict_fraction(0.0);
        assert_eq!(evicted, 0);
        assert_eq!(none, c);
        let (all, evicted) = c.evict_fraction(1.0);
        assert_eq!(evicted, 5);
        assert_eq!(all.rows(), 0);
    }

    #[test]
    fn eviction_respects_explicit_ranking() {
        let ranking = [NodeId(7), NodeId(3), NodeId(1), NodeId(4)];
        let c = FeatureCache::from_ranking(&ranking, 4, 8);
        let (shrunk, evicted) = c.evict_fraction(0.5);
        assert_eq!(evicted, 2);
        assert!(shrunk.contains(NodeId(7)) && shrunk.contains(NodeId(3)));
        assert!(!shrunk.contains(NodeId(1)) && !shrunk.contains(NodeId(4)));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn eviction_rejects_bad_fraction() {
        let _ = FeatureCache::degree_ordered(&star(), 2, 8).evict_fraction(1.5);
    }
}
