//! FastGL's primary contribution: the GPU-efficient sampling-based GNN
//! training pipeline of the ASPLOS'24 paper, on a simulated GPU.
//!
//! The three techniques of the paper live here:
//!
//! * [`match_reorder`] — **Match-Reorder** (§4.1): reuse feature rows of
//!   nodes shared between consecutive mini-batches (Match) and greedily
//!   reorder each sampled window to maximise that overlap (Reorder,
//!   Algorithm 1). Accelerates the memory IO phase at zero memory cost.
//! * [`compute`] with [`config::ComputeMode::MemoryAware`] — **Memory-Aware
//!   computation** (§4.2): stage partial sums and edge weights in shared
//!   memory so the irregular aggregation stops thrashing the L1/L2 caches.
//! * Fused-Map sampling (§4.3) — wired through [`sampler::SamplerEngine`]
//!   from `fastgl-sample`, removing the ID map's thread synchronizations.
//!
//! [`pipeline::FastGl`] assembles everything into the epoch loop of the
//! paper's Fig. 5; [`pipeline::Pipeline`] exposes the same loop with policy
//! knobs so the baselines (in `fastgl-baselines`) run on an identical
//! substrate. [`trainer`] runs *real* numeric training for the convergence
//! study (Fig. 16). [`resilience`] adds deterministic fault injection and
//! checkpoint/resume on top of both (DESIGN.md §10).

#![deny(missing_docs)]

pub mod cache;
pub mod compute;
pub mod config;
pub mod executor;
pub mod hotness;
pub mod io;
pub mod match_reorder;
pub mod memory_model;
pub mod multi_gpu;
pub mod pipeline;
pub mod resilience;
pub mod sampler;
pub mod stage_trace;
pub mod system;
pub mod trainer;

pub use cache::FeatureCache;
pub use compute::{ComputeEngine, ComputeResult};
pub use config::{ComputeMode, FastGlConfig, IdMapKind, SampleDevice, SamplerKind};
pub use executor::{PipelineExecutor, PipelineWallStats, StageWallStats};
pub use hotness::{CacheRankPolicy, HotnessCounter};
pub use pipeline::{CachePolicy, FastGl, Pipeline, PipelinePolicy};
pub use resilience::{
    run_epochs_checkpointed, Checkpoint, CheckpointError, FaultInjector, FaultKind, FaultPlan,
    FaultPlanError, FaultSpec, ResilienceStats, SimOutcome, SimulationState, TrainerState,
};
pub use stage_trace::{EpochWindowTrace, WindowPhases};
pub use system::{EpochStats, TrainingSystem};
