//! The Greedy Reorder Strategy — Algorithm 1 of the paper.
//!
//! Given the match-degree matrix of a window of `n` sampled mini-batches,
//! the greedy reorder keeps the first mini-batch in place, then repeatedly
//! appends the not-yet-scheduled mini-batch with the highest match degree
//! to the last scheduled one. Consecutive batches in the returned order
//! therefore overlap maximally (greedily), which is what the Match step
//! converts into saved PCIe traffic.

/// Computes the greedy execution order over a symmetric match-degree
/// matrix. Returns a permutation of `0..n` starting at index 0, exactly as
/// Algorithm 1 inserts `SubG_1` first.
///
/// Ties break towards the lower index, making the order deterministic.
///
/// # Example
///
/// ```
/// use fastgl_core::match_reorder::greedy_reorder;
///
/// // Batch 0 overlaps batch 2 most, batch 2 overlaps batch 1 next.
/// let m = vec![
///     vec![0.0, 0.4, 0.6],
///     vec![0.4, 0.0, 0.5],
///     vec![0.6, 0.5, 0.0],
/// ];
/// assert_eq!(greedy_reorder(&m), vec![0, 2, 1]);
/// ```
///
/// # Panics
///
/// Panics if `matrix` is not square.
pub fn greedy_reorder(matrix: &[Vec<f64>]) -> Vec<usize> {
    let n = matrix.len();
    for (i, row) in matrix.iter().enumerate() {
        assert_eq!(row.len(), n, "match matrix row {i} is not length {n}");
    }
    if n == 0 {
        return Vec::new();
    }
    let mut order = Vec::with_capacity(n);
    let mut scheduled = vec![false; n];
    let mut z = 0usize; // index of the last inserted mini-batch
    order.push(0);
    scheduled[0] = true;
    for _ in 1..n {
        let mut best = usize::MAX;
        let mut best_degree = f64::NEG_INFINITY;
        for (k, &done) in scheduled.iter().enumerate() {
            if !done && matrix[z][k] > best_degree {
                best_degree = matrix[z][k];
                best = k;
            }
        }
        debug_assert_ne!(best, usize::MAX);
        order.push(best);
        scheduled[best] = true;
        z = best;
    }
    order
}

/// The total consecutive match degree of an order — the quantity the
/// greedy strategy maximises step-by-step (used by tests and benches to
/// compare orders).
pub fn consecutive_match_sum(matrix: &[Vec<f64>], order: &[usize]) -> f64 {
    order.windows(2).map(|w| matrix[w[0]][w[1]]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure_6b_example() {
        // m12 = 0.4, m13 = 0.6, m23 = 0.5 (made-up values with m13 > m12):
        // starting from SubG1 the greedy order must be 1, 3, 2.
        let m = vec![
            vec![0.0, 0.4, 0.6],
            vec![0.4, 0.0, 0.5],
            vec![0.6, 0.5, 0.0],
        ];
        assert_eq!(greedy_reorder(&m), vec![0, 2, 1]);
    }

    #[test]
    fn output_is_permutation_starting_at_zero() {
        let n = 7;
        let m: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        if i == j {
                            0.0
                        } else {
                            ((i * 31 + j * 17) % 97) as f64 / 97.0
                        }
                    })
                    .collect()
            })
            .collect();
        let order = greedy_reorder(&m);
        assert_eq!(order[0], 0);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn greedy_beats_identity_when_structure_exists() {
        // Batches 0 and 2 overlap heavily, 1 and 3 overlap heavily; the
        // identity order alternates badly.
        let m = vec![
            vec![0.0, 0.1, 0.9, 0.1],
            vec![0.1, 0.0, 0.1, 0.9],
            vec![0.9, 0.1, 0.0, 0.2],
            vec![0.1, 0.9, 0.2, 0.0],
        ];
        let order = greedy_reorder(&m);
        let identity: Vec<usize> = (0..4).collect();
        assert!(
            consecutive_match_sum(&m, &order) > consecutive_match_sum(&m, &identity),
            "greedy must improve on the default order"
        );
        assert_eq!(order, vec![0, 2, 3, 1]);
    }

    #[test]
    fn ties_break_low_index() {
        let m = vec![
            vec![0.0, 0.5, 0.5],
            vec![0.5, 0.0, 0.5],
            vec![0.5, 0.5, 0.0],
        ];
        assert_eq!(greedy_reorder(&m), vec![0, 1, 2]);
    }

    #[test]
    fn trivial_sizes() {
        assert_eq!(greedy_reorder(&[]), Vec::<usize>::new());
        assert_eq!(greedy_reorder(&[vec![0.0]]), vec![0]);
    }

    #[test]
    #[should_panic(expected = "not length")]
    fn non_square_matrix_panics() {
        let _ = greedy_reorder(&[vec![0.0, 1.0], vec![0.0]]);
    }

    #[test]
    fn consecutive_sum_of_identity() {
        let m = vec![
            vec![0.0, 0.3, 0.0],
            vec![0.3, 0.0, 0.7],
            vec![0.0, 0.7, 0.0],
        ];
        let identity = [0, 1, 2];
        assert!((consecutive_match_sum(&m, &identity) - 1.0).abs() < 1e-12);
    }
}
