//! Match-Reorder — the paper's memory-IO optimisation (§4.1).
//!
//! *Match* reuses the feature rows of nodes shared between the mini-batch
//! leaving the GPU and the one arriving, so only the difference crosses
//! PCIe; it costs no extra device memory because the departing batch's
//! buffer must exist anyway. *Reorder* (Algorithm 1) greedily permutes a
//! window of `n` sampled mini-batches so consecutive batches overlap as
//! much as possible, maximising what Match can reuse.

pub mod match_set;
pub mod reorder;

pub use match_set::{match_load_set, MatchResult};
pub use reorder::greedy_reorder;
