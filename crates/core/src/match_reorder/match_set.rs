//! The Match step: computing `LoadNodeID` (paper §4.1, Fig. 6a).
//!
//! Given the node set of the mini-batch about to be computed and the node
//! set still resident on the device from the previous mini-batch, Match
//! subtracts their intersection (`OverlapNodeID`): only the remainder's
//! feature rows are fetched from host memory.

use fastgl_graph::NodeId;

/// The outcome of one Match step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchResult {
    /// Global IDs whose feature rows must be loaded over PCIe
    /// (the paper's `LoadNodeID`), sorted ascending.
    pub load: Vec<NodeId>,
    /// Number of rows reused from the resident mini-batch
    /// (`|OverlapNodeID|`).
    pub reused: u64,
}

impl MatchResult {
    /// Fraction of the incoming batch served by reuse.
    pub fn reuse_fraction(&self) -> f64 {
        let total = self.load.len() as u64 + self.reused;
        if total == 0 {
            0.0
        } else {
            self.reused as f64 / total as f64
        }
    }
}

/// Computes the Match between `incoming` (the next mini-batch's sorted node
/// set) and `resident` (the sorted node set currently on the device).
///
/// Both inputs must be sorted ascending and duplicate-free (the form
/// produced by `SampledSubgraph::sorted_global_ids`).
///
/// # Example
///
/// The paper's Fig. 6a: nodes 0, 3, 4 are reused; only 10 and 12 load.
///
/// ```
/// use fastgl_core::match_reorder::match_load_set;
/// use fastgl_graph::NodeId;
///
/// let resident: Vec<NodeId> = [0, 1, 2, 3, 4, 8].map(NodeId).to_vec();
/// let incoming: Vec<NodeId> = [0, 3, 4, 10, 12].map(NodeId).to_vec();
/// let m = match_load_set(&incoming, &resident);
/// assert_eq!(m.load, [10, 12].map(NodeId).to_vec());
/// assert_eq!(m.reused, 3);
/// ```
pub fn match_load_set(incoming: &[NodeId], resident: &[NodeId]) -> MatchResult {
    debug_assert!(incoming.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(resident.windows(2).all(|w| w[0] < w[1]));
    let mut load = Vec::new();
    let mut reused = 0u64;
    let mut j = 0usize;
    for &node in incoming {
        while j < resident.len() && resident[j] < node {
            j += 1;
        }
        if j < resident.len() && resident[j] == node {
            reused += 1;
            j += 1;
        } else {
            load.push(node);
        }
    }
    MatchResult { load, reused }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u64]) -> Vec<NodeId> {
        xs.iter().map(|&x| NodeId(x)).collect()
    }

    #[test]
    fn paper_figure_6a_example() {
        // SubG1 resident: {0, 1, 2, 3, 4, 8}; SubG2 incoming:
        // {0, 3, 4, 10, 12}. Overlap {0, 3, 4}; load {10, 12}.
        let resident = ids(&[0, 1, 2, 3, 4, 8]);
        let incoming = ids(&[0, 3, 4, 10, 12]);
        let m = match_load_set(&incoming, &resident);
        assert_eq!(m.load, ids(&[10, 12]));
        assert_eq!(m.reused, 3);
        assert!((m.reuse_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_resident_loads_everything() {
        let incoming = ids(&[1, 2, 3]);
        let m = match_load_set(&incoming, &[]);
        assert_eq!(m.load, incoming);
        assert_eq!(m.reused, 0);
        assert_eq!(m.reuse_fraction(), 0.0);
    }

    #[test]
    fn identical_sets_load_nothing() {
        let set = ids(&[5, 9, 11]);
        let m = match_load_set(&set, &set);
        assert!(m.load.is_empty());
        assert_eq!(m.reused, 3);
        assert_eq!(m.reuse_fraction(), 1.0);
    }

    #[test]
    fn disjoint_sets_load_everything() {
        let m = match_load_set(&ids(&[10, 20]), &ids(&[1, 2, 3]));
        assert_eq!(m.load, ids(&[10, 20]));
        assert_eq!(m.reused, 0);
    }

    #[test]
    fn empty_incoming() {
        let m = match_load_set(&[], &ids(&[1, 2]));
        assert!(m.load.is_empty());
        assert_eq!(m.reused, 0);
        assert_eq!(m.reuse_fraction(), 0.0);
    }

    #[test]
    fn partition_invariant_holds() {
        // load ∪ overlap = incoming, load ∩ resident = ∅.
        let incoming = ids(&[2, 4, 6, 8, 10, 12]);
        let resident = ids(&[3, 4, 5, 10, 11]);
        let m = match_load_set(&incoming, &resident);
        assert_eq!(m.load.len() as u64 + m.reused, incoming.len() as u64);
        for n in &m.load {
            assert!(!resident.contains(n), "{n} was resident but loaded");
        }
    }
}
