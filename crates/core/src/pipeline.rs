//! The training pipeline of Fig. 5: sample a window of mini-batches,
//! reorder them, then alternate Match-loading and computation.
//!
//! The same [`Pipeline`] drives FastGL *and* every baseline — they differ
//! only in the [`PipelinePolicy`] and [`FastGlConfig`] knobs (sample
//! device, ID-map strategy, Match/Reorder, cache policy, compute mode,
//! sample/compute overlap), which is exactly the comparison the paper
//! makes by running all systems on identical hardware.
//!
//! Multi-GPU runs are data-parallel (paper §5): training seeds shard
//! round-robin across trainer GPUs, each GPU trains its shard, and a ring
//! all-reduce synchronises gradients every iteration. The pipeline
//! simulates GPU 0's shard — the shards are statistically identical — and
//! charges the all-reduce plus host-side gather contention from the other
//! GPUs' loaders.

use crate::cache::FeatureCache;
use crate::compute::ComputeEngine;
use crate::config::FastGlConfig;
use crate::executor::{PipelineExecutor, PipelineWallStats};
use crate::hotness::{rank_nodes, CacheRankPolicy, HotnessCounter};
use crate::io::IoEngine;
use crate::match_reorder::{greedy_reorder, match_load_set};
use crate::memory_model::estimate_batch_memory;
use crate::multi_gpu::GpuRoles;
use crate::resilience::{FaultInjector, ResilienceStats};
use crate::sampler::{SampleTiming, SamplerEngine};
use crate::stage_trace::{EpochWindowTrace, WindowPhases};
use crate::system::{EpochStats, TrainingSystem};
use fastgl_gnn::{census, ModelConfig};
use fastgl_gpusim::{PhaseBreakdown, SimTime};
use fastgl_graph::{DatasetBundle, DeterministicRng, NodeId};
use fastgl_sample::overlap::match_degree_matrix;
use fastgl_sample::{MinibatchPlan, SampleStats, SampledSubgraph};

/// How the device feature cache is sized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CachePolicy {
    /// No cache (PyG, DGL, GNNAdvisor).
    None,
    /// Use whatever device memory the workload leaves over (GNNLab,
    /// PaGraph, FastGL §5).
    Auto,
    /// Cache an explicit fraction of the dataset's feature rows
    /// (the `cache ratio` sweep of Fig. 10a).
    Ratio(f64),
}

/// The policy knobs that distinguish FastGL from the baselines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelinePolicy {
    /// Reuse overlapping rows between consecutive resident batches.
    pub use_match: bool,
    /// Greedily reorder each sampled window (Algorithm 1).
    pub use_reorder: bool,
    /// Device feature-cache sizing.
    pub cache: CachePolicy,
    /// GPUs dedicated to sampling (GNNLab's factored design); 0 means
    /// every GPU samples its own shard.
    pub sampler_gpus: usize,
    /// Whether sampling overlaps training (true for GNNLab, whose
    /// dedicated sampler GPU hides sampling latency behind compute).
    pub overlap_sample: bool,
    /// How the cache ranks residents: by degree (PaGraph/FastGL) or by
    /// pre-sampled hotness (GNNLab).
    pub cache_rank: CacheRankPolicy,
}

impl PipelinePolicy {
    /// The policy FastGL's own configuration flags imply.
    pub fn from_config(config: &FastGlConfig) -> Self {
        Self {
            use_match: config.enable_match,
            use_reorder: config.enable_reorder,
            cache: match config.cache_ratio {
                Some(r) => CachePolicy::Ratio(r),
                None => CachePolicy::Auto,
            },
            sampler_gpus: 0,
            overlap_sample: false,
            cache_rank: CacheRankPolicy::Degree,
        }
    }
}

/// One sampled mini-batch travelling through the window pipeline.
struct SampledBatch {
    /// Global batch index within the epoch (fault triggers key off it).
    index: u64,
    sg: SampledSubgraph,
    stats: SampleStats,
    timing: SampleTiming,
}

/// A sampled batch with its Match load set, in execution order.
struct PreparedBatch {
    batch: SampledBatch,
    load: Vec<NodeId>,
    reused: u64,
}

/// The generic sampling-based training pipeline.
#[derive(Debug)]
pub struct Pipeline {
    name: &'static str,
    config: FastGlConfig,
    policy: PipelinePolicy,
    compute: ComputeEngine,
    sampler: SamplerEngine,
    /// Lazily determined auto-cache size (rows), per pipeline lifetime.
    auto_cache_rows: Option<u64>,
    /// Wall-clock stage accounting of the most recent epoch.
    last_wall: Option<PipelineWallStats>,
    /// Per-window simulated stage timings of the most recent epoch.
    last_trace: Option<EpochWindowTrace>,
    /// Deterministic fault injection (see [`crate::resilience`]); `None`
    /// runs fault-free.
    injector: Option<FaultInjector>,
    /// Cumulative fault-recovery accounting over the pipeline's lifetime.
    total_resilience: ResilienceStats,
}

impl Pipeline {
    /// Builds a pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `config.validate()` fails, if the policy dedicates every
    /// GPU to sampling, or if the `FASTGL_FAULTS` environment variable is
    /// set but malformed (the message names the offending entry; prefer
    /// [`crate::FastGlConfig::resolved_faults`] to handle that case as a
    /// typed error).
    pub fn new(name: &'static str, config: FastGlConfig, policy: PipelinePolicy) -> Self {
        config.validate().expect("invalid pipeline configuration");
        assert!(
            policy.sampler_gpus < config.system.num_gpus,
            "at least one GPU must train"
        );
        let injector = config
            .resolved_faults()
            .unwrap_or_else(|e| panic!("invalid fault plan: {e}"))
            .map(FaultInjector::new);
        config.apply_threads();
        config.apply_telemetry();
        let compute = ComputeEngine::new(config.system.clone(), config.compute_mode, config.model);
        let sampler = SamplerEngine::new(&config);
        Self {
            name,
            config,
            policy,
            compute,
            sampler,
            auto_cache_rows: None,
            last_wall: None,
            last_trace: None,
            injector,
            total_resilience: ResilienceStats::default(),
        }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &FastGlConfig {
        &self.config
    }

    /// Wall-clock busy/stall accounting of the most recent epoch's window
    /// pipeline (`None` before the first epoch). Purely observational:
    /// prefetch depth never changes simulated results.
    pub fn pipeline_wall_stats(&self) -> Option<PipelineWallStats> {
        self.last_wall
    }

    /// Per-window simulated stage timings of the most recent epoch
    /// (`None` before the first epoch). Deterministic: identical at any
    /// thread count or prefetch depth, unlike the wall-clock stats.
    pub fn window_trace(&self) -> Option<&EpochWindowTrace> {
        self.last_trace.as_ref()
    }

    /// The pipeline's policy.
    pub fn policy(&self) -> &PipelinePolicy {
        &self.policy
    }

    /// Cumulative fault-recovery accounting over every epoch this
    /// pipeline has run (all zero on a fault-free run, and entirely
    /// absent from [`EpochStats`] so the fault-free statistics stay
    /// byte-identical with the resilience layer idle).
    pub fn resilience_stats(&self) -> ResilienceStats {
        self.total_resilience
    }

    fn roles(&self) -> GpuRoles {
        GpuRoles::new(self.config.system.num_gpus, self.policy.sampler_gpus)
    }

    /// Sizes the feature cache for `data`, probing one batch when `Auto`.
    fn build_cache(&mut self, data: &DatasetBundle) -> FeatureCache {
        let row_bytes = data.spec.feature_dim as u64 * 4;
        let rows = match self.policy.cache {
            CachePolicy::None => 0,
            CachePolicy::Ratio(r) => (data.graph.num_nodes() as f64 * r) as u64,
            CachePolicy::Auto => match self.auto_cache_rows {
                Some(rows) => rows,
                None => {
                    let rows = self.probe_auto_cache_rows(data);
                    self.auto_cache_rows = Some(rows);
                    rows
                }
            },
        };
        if rows == 0 {
            return FeatureCache::empty();
        }
        match self.policy.cache_rank {
            CacheRankPolicy::Degree => FeatureCache::degree_ordered(&data.graph, rows, row_bytes),
            CacheRankPolicy::PreSampledHotness => {
                let counter = self.presample_hotness(data);
                let ranking = rank_nodes(
                    CacheRankPolicy::PreSampledHotness,
                    &data.graph,
                    Some(&counter),
                );
                FeatureCache::from_ranking(&ranking, rows, row_bytes)
            }
        }
    }

    /// GNNLab's offline pre-sampling pass: sample a few probe batches and
    /// count node appearances (not charged to epoch time).
    fn presample_hotness(&self, data: &DatasetBundle) -> HotnessCounter {
        let mut counter = HotnessCounter::new(data.graph.num_nodes());
        let mut rng = DeterministicRng::seed(self.config.seed ^ 0x407E55).derive(3);
        let plan = MinibatchPlan::new(
            data.train_nodes(),
            self.config.batch_size as usize,
            self.config.seed ^ 0x407E55,
            0,
        );
        for seeds in plan.iter().take(3) {
            let (sg, _) = self.sampler.sample_batch(&data.graph, seeds, &mut rng);
            counter.record(&sg);
        }
        counter
    }

    /// Samples one probe batch to estimate the working set, then sizes the
    /// cache to the remaining device memory (GNNLab's offline profiling
    /// phase, paid once, not charged to epoch time).
    ///
    /// Device capacity and the fixed runtime reservation are scaled by the
    /// dataset's scale factor: the experiments shrink graphs ~100x, and a
    /// full-size 24 GB device would cache every scaled dataset entirely,
    /// erasing the memory-pressure regime the paper's large graphs are in.
    fn probe_auto_cache_rows(&mut self, data: &DatasetBundle) -> u64 {
        let model_cfg = self.model_config(data);
        let dims = model_cfg.layer_dims();
        let mut rng = DeterministicRng::seed(self.config.seed ^ 0xCAC4E).derive(7);
        let seeds: Vec<NodeId> = data
            .train_nodes()
            .iter()
            .take(self.config.batch_size as usize)
            .copied()
            .collect();
        if seeds.is_empty() {
            return 0;
        }
        let (sg, stats) = self.sampler.sample_batch(&data.graph, &seeds, &mut rng);
        let workloads = census(&sg, &dims);
        let scale = data.spec.scale.clamp(0.0, 1.0);
        let est = crate::memory_model::estimate_batch_memory_with_runtime(
            &workloads,
            model_cfg.param_bytes(),
            sg.num_nodes(),
            data.spec.feature_dim,
            sg.topology_bytes(),
            stats.id_map.total_ids,
            0,
            (crate::memory_model::RUNTIME_RESERVED_BYTES as f64 * scale) as u64,
        );
        let capacity = (self.config.system.device.global_bytes as f64 * scale) as u64;
        let remaining = est.remaining(capacity);
        let row_bytes = data.spec.feature_dim as u64 * 4;
        (remaining / row_bytes).min(data.graph.num_nodes())
    }

    fn model_config(&self, data: &DatasetBundle) -> ModelConfig {
        ModelConfig::paper(
            self.config.model,
            data.spec.feature_dim,
            data.spec.num_classes,
        )
        .with_layers(self.config.num_layers())
        .with_hidden(self.config.hidden_dim)
    }
}

impl TrainingSystem for Pipeline {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run_epoch(&mut self, data: &DatasetBundle, epoch: u64) -> EpochStats {
        let _span = fastgl_telemetry::span("pipeline.epoch")
            .with_str("system", self.name)
            .with_u64("epoch", epoch);
        self.compute.set_workload_scale(data.spec.scale);
        // Re-calibrate the memoised hit rates each epoch: the memo must
        // not leak state across epochs, or `run_epoch` stops being a pure
        // function of `(data, epoch)` and checkpoint/resume diverges
        // (DESIGN.md §10). Within the epoch it still traces only once
        // per layer.
        self.compute.reset_trace_cache();
        let roles = self.roles();
        let trainer_gpus = roles.trainers;
        let shards = data.split.shard_train(trainer_gpus);
        let shard = &shards[0];
        let plan = MinibatchPlan::new(
            shard,
            self.config.batch_size as usize,
            self.config.seed ^ data.spec.dataset as u64,
            epoch,
        );
        let mut cache = self.build_cache(data);
        let mut res = ResilienceStats::default();
        if let Some(inj) = &self.injector {
            // Injected device-memory pressure: shed the coldest rows and
            // keep going — the lost hits become PCIe loads, visible in
            // `EpochStats::bytes_h2d` and the IO phase time.
            if let Some(fraction) = inj.cache_pressure(epoch) {
                let (shrunk, evicted) = cache.evict_fraction(fraction);
                cache = shrunk;
                res.evicted_rows = evicted;
            }
        }
        let cache = cache;
        let model_cfg = self.model_config(data);
        let dims = model_cfg.layer_dims();
        let param_bytes = model_cfg.param_bytes();
        let row_bytes = data.spec.feature_dim as u64 * 4;
        let feature_dim = data.spec.feature_dim;
        // One independent RNG stream per mini-batch, derived from its
        // global batch index: a batch's draws cannot depend on which
        // pipeline stage, thread, or prefetch depth samples it.
        let rng_base = DeterministicRng::seed(self.config.seed ^ 0x9A9A ^ data.spec.dataset as u64)
            .derive(epoch);
        let mut io = IoEngine::new(&self.config.system, trainer_gpus);
        let allreduce = roles.allreduce_time(&self.config.system, param_bytes);

        let mut stats = EpochStats::default();
        let mut sample_total = SimTime::ZERO;
        let mut io_total = SimTime::ZERO;
        let mut compute_total = SimTime::ZERO;
        let mut l1_sum = 0.0;
        let mut l2_sum = 0.0;
        let mut gflops_sum = 0.0;
        let mut window_sample: Vec<SimTime> = Vec::new();
        let mut window_io: Vec<SimTime> = Vec::new();
        let mut window_compute: Vec<SimTime> = Vec::new();

        let window = if self.policy.use_reorder {
            self.config.reorder_window.max(2)
        } else {
            1
        };
        let batches: Vec<&[NodeId]> = plan.iter().collect();
        let num_windows = batches.len().div_ceil(window);
        let mut executor = PipelineExecutor::new(self.config.resolved_prefetch());
        let injector = self.injector.as_ref();
        let retry_model = injector.map(|i| *i.retry_model()).unwrap_or_default();
        if injector.is_some() {
            // Budget for recovering injected worker panics by replaying
            // the in-flight window (each plan entry fires once per epoch).
            executor = executor.with_stage_retries(2);
        }

        // Split the `self` borrow across the stages: the sample stage
        // reads the sampler (possibly from a worker thread) while the
        // execute stage mutates the compute engine on this thread.
        let sampler = &self.sampler;
        let compute = &mut self.compute;
        let config = &self.config;
        let policy = self.policy;
        let graph = &data.graph;
        let mut resident: Vec<NodeId> = Vec::new();

        let wall = executor.run(
            num_windows,
            // Fused-Map Sampler stage: sample the window's mini-batches.
            |w| {
                if injector.is_some_and(|inj| inj.take_worker_panic(epoch, w as u64)) {
                    // Simulated stage-worker crash; the executor replays
                    // this window and the injector's fire-once state lets
                    // the replay through.
                    panic!("injected worker panic at window {w} of epoch {epoch}");
                }
                let chunk = &batches[w * window..((w + 1) * window).min(batches.len())];
                let mut sampled = Vec::with_capacity(chunk.len());
                for (i, seeds) in chunk.iter().enumerate() {
                    let index = (w * window + i) as u64;
                    let mut rng = rng_base.derive(index);
                    let (sg, s_stats) = sampler.sample_batch(graph, seeds, &mut rng);
                    let timing = sampler.sample_time(&s_stats, &config.system.cost);
                    sampled.push(SampledBatch {
                        index,
                        sg,
                        stats: s_stats,
                        timing,
                    });
                }
                sampled
            },
            // Reorder stage (Algorithm 1) + Match sets vs the resident
            // set, which this stage owns and carries window to window.
            move |_, sampled: Vec<SampledBatch>| {
                let order: Vec<usize> = {
                    let sets: Vec<&[NodeId]> =
                        sampled.iter().map(|b| b.sg.sorted_global_ids()).collect();
                    if policy.use_reorder && sets.len() > 1 {
                        greedy_reorder(&match_degree_matrix(&sets))
                    } else {
                        (0..sets.len()).collect()
                    }
                };
                let mut slots: Vec<Option<SampledBatch>> = sampled.into_iter().map(Some).collect();
                let mut prepared = Vec::with_capacity(slots.len());
                for idx in order {
                    let batch = slots[idx].take().expect("window index visited once");
                    let incoming = batch.sg.sorted_global_ids();
                    let (load, reused) = if policy.use_match {
                        let m = match_load_set(incoming, &resident);
                        (m.load, m.reused)
                    } else {
                        (incoming.to_vec(), 0)
                    };
                    resident = incoming.to_vec();
                    prepared.push(PreparedBatch {
                        batch,
                        load,
                        reused,
                    });
                }
                prepared
            },
            // Feature load + compute, in the (re)ordered sequence. All
            // accumulation happens here in FIFO window order, so sums (and
            // their floating-point rounding) match the serial loop
            // exactly at any prefetch depth.
            |_, prepared: Vec<PreparedBatch>| {
                let mut win_sample = SimTime::ZERO;
                let mut win_io = SimTime::ZERO;
                let mut win_compute = SimTime::ZERO;
                for p in prepared {
                    win_sample += p.batch.timing.total;
                    stats.id_map_time += p.batch.timing.id_map;
                    stats.edges_sampled += p.batch.stats.edges_sampled;

                    let (cache_hits, misses) = cache.partition(&p.load);
                    let fault = injector.and_then(|inj| inj.transfer_fault(p.batch.index));
                    let ft = io.load_rows_faulted(
                        misses.len() as u64,
                        row_bytes,
                        fault.as_ref(),
                        &retry_model,
                    );
                    let io_time = ft.time;
                    res.pcie_stalls += ft.stalled as u64;
                    res.transfer_retries += u64::from(ft.retries);
                    res.fault_overhead += ft.overhead;
                    io_total += io_time;
                    stats.rows_loaded += misses.len() as u64;
                    stats.rows_reused += p.reused;
                    stats.rows_cached += cache_hits;

                    let workloads = census(&p.batch.sg, &dims);
                    let comp = compute.batch_time(&p.batch.sg, &workloads);
                    compute_total += comp.time + allreduce;
                    win_io += io_time;
                    win_compute += comp.time + allreduce;
                    l1_sum += comp.l1_hit_rate;
                    l2_sum += comp.l2_hit_rate;
                    gflops_sum += comp.aggregation_gflops;

                    let est = estimate_batch_memory(
                        &workloads,
                        param_bytes,
                        p.batch.sg.num_nodes(),
                        feature_dim,
                        p.batch.sg.topology_bytes(),
                        p.batch.stats.id_map.total_ids,
                        cache.bytes(),
                    );
                    stats.peak_memory_bytes = stats.peak_memory_bytes.max(est.total());
                    stats.iterations += 1;
                }
                sample_total += win_sample;
                window_sample.push(win_sample);
                window_io.push(win_io);
                window_compute.push(win_compute);
            },
        );
        self.last_wall = Some(wall);
        // The only panics a pipeline run recovers from are injected ones,
        // so recovered panics == sample-stage replays.
        res.stage_replays = wall.sample.replays + wall.prepare.replays + wall.execute.replays;
        res.worker_panics = wall.sample.replays;
        res.emit_telemetry();
        self.total_resilience += res;

        // GNNLab's factored design: `sampler_gpus` GPUs sample for all
        // trainers; the latency is hidden behind training unless the
        // sampling work outruns it (paper Fig. 14d). The per-window
        // pipeline model in `gpusim::overlap` charges the fill plus any
        // window where sampling outruns training. The per-window split
        // sums to the aggregate exactly, so the breakdown and the stage
        // trace below agree to the nanosecond.
        let window_train: Vec<SimTime> = window_io
            .iter()
            .zip(&window_compute)
            .map(|(&io_t, &c)| io_t + c)
            .collect();
        let visible_per_window = if self.policy.overlap_sample {
            roles.visible_sample_per_window(&window_sample, &window_train)
        } else {
            window_sample.clone()
        };
        let visible_sample = if self.policy.overlap_sample {
            roles.visible_sample_windows(&window_sample, &window_train)
        } else {
            sample_total
        };
        self.last_trace = Some(EpochWindowTrace {
            windows: window_sample
                .iter()
                .zip(&visible_per_window)
                .zip(window_io.iter().zip(&window_compute))
                .map(|((&sample, &visible), (&io_t, &comp))| WindowPhases {
                    sample,
                    visible_sample: visible,
                    io: io_t,
                    compute: comp,
                })
                .collect(),
            overlap_sample: self.policy.overlap_sample,
        });

        stats.breakdown = PhaseBreakdown {
            sample: visible_sample,
            io: io_total,
            compute: compute_total,
        };
        stats.bytes_h2d = io.bytes_h2d();
        if stats.iterations > 0 {
            let inv = 1.0 / stats.iterations as f64;
            stats.l1_hit_rate = l1_sum * inv;
            stats.l2_hit_rate = l2_sum * inv;
            stats.aggregation_gflops = gflops_sum * inv;
        }
        stats.breakdown.emit_telemetry(self.name);
        {
            use fastgl_telemetry::names;
            fastgl_telemetry::counter_add(names::PIPELINE_ITERATIONS, stats.iterations);
            fastgl_telemetry::counter_add(names::PIPELINE_ROWS_REUSED, stats.rows_reused);
            fastgl_telemetry::counter_add(names::PIPELINE_ROWS_CACHED, stats.rows_cached);
            // PCIe bytes the Match-Reorder reuse and the feature cache
            // avoided, for the memory-hierarchy attribution report.
            fastgl_telemetry::counter_add(
                names::PIPELINE_BYTES_REUSE_SAVED,
                stats.rows_reused * row_bytes,
            );
            fastgl_telemetry::counter_add(
                names::PIPELINE_BYTES_CACHE_SAVED,
                stats.rows_cached * row_bytes,
            );
        }
        stats
    }
}

/// The FastGL training system: the pipeline with all three of the paper's
/// techniques enabled (Match-Reorder, Memory-Aware computation, Fused-Map
/// sampling), plus the opportunistic feature cache of §5.
#[derive(Debug)]
pub struct FastGl {
    inner: Pipeline,
}

impl FastGl {
    /// Builds FastGL from its configuration; the policy follows the
    /// config's ablation flags (`enable_match`, `enable_reorder`, …).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: FastGlConfig) -> Self {
        let policy = PipelinePolicy::from_config(&config);
        Self {
            inner: Pipeline::new("FastGL", config, policy),
        }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &FastGlConfig {
        self.inner.config()
    }

    /// Wall-clock stage accounting of the most recent epoch's window
    /// pipeline (`None` before the first epoch).
    pub fn pipeline_wall_stats(&self) -> Option<PipelineWallStats> {
        self.inner.pipeline_wall_stats()
    }

    /// Per-window simulated stage timings of the most recent epoch
    /// (`None` before the first epoch).
    pub fn window_trace(&self) -> Option<&EpochWindowTrace> {
        self.inner.window_trace()
    }

    /// Cumulative fault-recovery accounting over every epoch run so far
    /// (all zero on a fault-free run; see [`crate::resilience`]).
    pub fn resilience_stats(&self) -> ResilienceStats {
        self.inner.resilience_stats()
    }
}

impl TrainingSystem for FastGl {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn run_epoch(&mut self, data: &DatasetBundle, epoch: u64) -> EpochStats {
        self.inner.run_epoch(data, epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ComputeMode, IdMapKind};
    use fastgl_graph::Dataset;

    fn small_data() -> DatasetBundle {
        Dataset::Products.generate_scaled(1.0 / 1024.0, 11)
    }

    fn small_config() -> FastGlConfig {
        FastGlConfig::default()
            .with_batch_size(32)
            .with_fanouts(vec![3, 5])
    }

    #[test]
    fn fastgl_epoch_runs_and_accounts_phases() {
        let data = small_data();
        let mut sys = FastGl::new(small_config());
        let s = sys.run_epoch(&data, 0);
        assert!(s.iterations > 0);
        assert!(s.breakdown.sample > SimTime::ZERO);
        assert!(s.breakdown.compute > SimTime::ZERO);
        assert!(s.total() > SimTime::ZERO);
        assert!(
            s.rows_loaded + s.rows_reused + s.rows_cached > 0,
            "rows must be accounted"
        );
    }

    #[test]
    fn epochs_are_deterministic() {
        let data = small_data();
        let mut a = FastGl::new(small_config());
        let mut b = FastGl::new(small_config());
        assert_eq!(a.run_epoch(&data, 3), b.run_epoch(&data, 3));
    }

    #[test]
    fn match_reduces_loaded_rows() {
        let data = small_data();
        let mut with_match = FastGl::new(small_config());
        let mut cfg = small_config();
        cfg.enable_match = false;
        cfg.enable_reorder = false;
        cfg.cache_ratio = Some(0.0);
        let mut without = FastGl::new(cfg);
        let mut cfg2 = small_config();
        cfg2.cache_ratio = Some(0.0);
        let mut match_only = FastGl::new(cfg2);
        let s_without = without.run_epoch(&data, 0);
        let s_match = match_only.run_epoch(&data, 0);
        let _ = with_match.run_epoch(&data, 0);
        assert!(
            s_match.rows_loaded < s_without.rows_loaded,
            "match {} vs naive {}",
            s_match.rows_loaded,
            s_without.rows_loaded
        );
        assert!(s_match.rows_reused > 0);
        assert_eq!(s_without.rows_reused, 0);
    }

    #[test]
    fn fastgl_beats_naive_pipeline_end_to_end() {
        let data = small_data();
        let mut fast = FastGl::new(small_config());
        let mut naive_cfg = small_config();
        naive_cfg.enable_match = false;
        naive_cfg.enable_reorder = false;
        naive_cfg.cache_ratio = Some(0.0);
        naive_cfg.compute_mode = ComputeMode::Naive;
        naive_cfg.id_map = IdMapKind::Baseline;
        let mut naive = FastGl::new(naive_cfg);
        let t_fast = fast.run_epoch(&data, 0).total();
        let t_naive = naive.run_epoch(&data, 0).total();
        let speedup = t_naive.as_secs_f64() / t_fast.as_secs_f64();
        assert!(speedup > 1.2, "end-to-end speedup {speedup}");
    }

    #[test]
    fn more_gpus_shrink_per_epoch_time_sublinearly() {
        // Heavier per-batch work than the other tests so the all-reduce
        // and gather-contention terms do not mask the shard parallelism.
        let data = Dataset::Products.generate_scaled(1.0 / 256.0, 11);
        let cfg = FastGlConfig::default()
            .with_batch_size(64)
            .with_fanouts(vec![5, 10]);
        let mut one = FastGl::new(cfg.clone().with_gpus(1));
        let mut four = FastGl::new(cfg.with_gpus(4));
        let t1 = one.run_epoch(&data, 0).total().as_secs_f64();
        let t4 = four.run_epoch(&data, 0).total().as_secs_f64();
        let speedup = t1 / t4;
        assert!(speedup > 1.5, "4-GPU speedup {speedup}");
        assert!(speedup < 4.0, "scaling cannot be superlinear: {speedup}");
    }

    #[test]
    fn explicit_cache_ratio_serves_rows() {
        let data = small_data();
        let mut cfg = small_config().with_cache_ratio(0.5);
        cfg.enable_match = false;
        cfg.enable_reorder = false;
        let mut sys = FastGl::new(cfg);
        let s = sys.run_epoch(&data, 0);
        assert!(s.rows_cached > 0);
    }

    #[test]
    fn zero_cache_ratio_serves_none() {
        let data = small_data();
        let mut cfg = small_config().with_cache_ratio(0.0);
        cfg.enable_match = false;
        let mut sys = FastGl::new(cfg);
        let s = sys.run_epoch(&data, 0);
        assert_eq!(s.rows_cached, 0);
    }

    #[test]
    fn window_trace_reproduces_the_breakdown_exactly() {
        let data = small_data();
        let mut sys = FastGl::new(small_config());
        let s = sys.run_epoch(&data, 0);
        let trace = sys.window_trace().expect("trace after an epoch").clone();
        assert!(!trace.is_empty());
        assert_eq!(
            trace.visible_breakdown(),
            s.breakdown,
            "per-window attribution must sum to the epoch breakdown"
        );
        assert_eq!(trace.visible_total(), s.total());
        assert!(!trace.overlap_sample);
        assert_eq!(trace.hidden_sample(), SimTime::ZERO);
    }

    #[test]
    fn overlapped_window_trace_still_sums_exactly() {
        let data = small_data();
        let policy = PipelinePolicy {
            use_match: false,
            use_reorder: false,
            cache: CachePolicy::None,
            sampler_gpus: 1,
            overlap_sample: true,
            cache_rank: crate::hotness::CacheRankPolicy::Degree,
        };
        let mut sys = Pipeline::new("factored", small_config(), policy);
        let s = sys.run_epoch(&data, 0);
        let trace = sys.window_trace().unwrap();
        assert!(trace.overlap_sample);
        assert_eq!(trace.visible_breakdown(), s.breakdown);
        assert!(
            trace.hidden_sample() > SimTime::ZERO,
            "the dedicated sampler must hide some sampling"
        );
    }

    #[test]
    fn overlap_hides_sampling_when_dedicated_gpu() {
        let data = small_data();
        let cfg = small_config(); // 2 GPUs
        let policy = PipelinePolicy {
            use_match: false,
            use_reorder: false,
            cache: CachePolicy::None,
            sampler_gpus: 1,
            overlap_sample: true,
            cache_rank: crate::hotness::CacheRankPolicy::Degree,
        };
        let mut factored = Pipeline::new("factored", cfg.clone(), policy);
        let mut plain_policy = policy;
        plain_policy.sampler_gpus = 0;
        plain_policy.overlap_sample = false;
        let mut plain = Pipeline::new("plain", cfg, plain_policy);
        let s_f = factored.run_epoch(&data, 0);
        let s_p = plain.run_epoch(&data, 0);
        assert!(
            s_f.breakdown.sample < s_p.breakdown.sample,
            "overlap must hide sampling: {} vs {}",
            s_f.breakdown.sample,
            s_p.breakdown.sample
        );
    }

    #[test]
    fn injected_faults_degrade_but_do_not_abort() {
        let data = small_data();
        let mut clean = FastGl::new(small_config());
        let plan = "pcie_stall@batch=1,transfer_error@batch=2:2,oom@epoch=0,worker_panic@window=0"
            .parse()
            .unwrap();
        let mut faulty = FastGl::new(small_config().with_faults(plan));
        let s_clean = clean.run_epoch(&data, 0);
        let s_faulty = faulty.run_epoch(&data, 0);
        let res = faulty.resilience_stats();
        assert!(res.any());
        assert_eq!(res.pcie_stalls, 1);
        assert_eq!(res.transfer_retries, 2);
        assert_eq!(res.worker_panics, 1, "panic recovered by replay");
        assert!(res.evicted_rows > 0, "cache shed rows under pressure");
        assert!(res.fault_overhead > SimTime::ZERO);
        // Degradation, not divergence: same work, more IO time and bytes.
        assert_eq!(s_faulty.iterations, s_clean.iterations);
        assert_eq!(s_faulty.edges_sampled, s_clean.edges_sampled);
        assert!(s_faulty.breakdown.io > s_clean.breakdown.io);
        assert!(s_faulty.bytes_h2d > s_clean.bytes_h2d);
        assert_eq!(clean.resilience_stats(), ResilienceStats::default());
    }

    #[test]
    fn faulted_epochs_are_deterministic() {
        let data = small_data();
        let plan: crate::resilience::FaultPlan =
            "pcie_stall@batch=0:2,oom@epoch=1:0.5,worker_panic@window=1"
                .parse()
                .unwrap();
        let mut a = FastGl::new(small_config().with_faults(plan.clone()));
        let mut b = FastGl::new(small_config().with_faults(plan));
        for epoch in 0..2 {
            assert_eq!(a.run_epoch(&data, epoch), b.run_epoch(&data, epoch));
            assert_eq!(a.resilience_stats(), b.resilience_stats());
        }
    }

    #[test]
    #[should_panic(expected = "at least one GPU must train")]
    fn all_sampler_gpus_rejected() {
        let cfg = small_config().with_gpus(1);
        let policy = PipelinePolicy {
            use_match: false,
            use_reorder: false,
            cache: CachePolicy::None,
            sampler_gpus: 1,
            overlap_sample: true,
            cache_rank: crate::hotness::CacheRankPolicy::Degree,
        };
        let _ = Pipeline::new("bad", cfg, policy);
    }
}
