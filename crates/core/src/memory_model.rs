//! Device-memory estimation (paper Tables 1 and 9).
//!
//! Models how much of the GPU's 24 GB each system's working set consumes:
//! model parameters (plus Adam state), activations and gradients of the
//! current mini-batch, the feature staging buffer, subgraph topology, the
//! ID-map hash table, the static feature cache, and a fixed runtime
//! (CUDA context + framework) reservation.

use fastgl_gnn::LayerWorkload;
use serde::{Deserialize, Serialize};

/// Fixed bytes reserved by the CUDA context, cuBLAS workspaces, and the
/// host framework on every GPU (PyTorch reserves on this order).
pub const RUNTIME_RESERVED_BYTES: u64 = 1_200 * 1024 * 1024;

/// A per-component device-memory estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MemoryEstimate {
    /// Model parameters.
    pub params: u64,
    /// Optimiser state (Adam: two moments per parameter).
    pub optimizer: u64,
    /// Activations and their gradients for one mini-batch.
    pub activations: u64,
    /// Feature rows of the current mini-batch.
    pub features: u64,
    /// Subgraph topology (blocks' CSR arrays).
    pub topology: u64,
    /// ID-map hash table.
    pub hash_table: u64,
    /// Static feature cache.
    pub cache: u64,
    /// Fixed runtime reservation.
    pub runtime: u64,
}

impl MemoryEstimate {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.params
            + self.optimizer
            + self.activations
            + self.features
            + self.topology
            + self.hash_table
            + self.cache
            + self.runtime
    }

    /// Bytes left on a device with `capacity`.
    pub fn remaining(&self, capacity: u64) -> u64 {
        capacity.saturating_sub(self.total())
    }
}

/// Estimates the memory of one training iteration.
///
/// * `workloads` — per-layer shapes of the mini-batch.
/// * `param_bytes` — model parameter bytes.
/// * `subgraph_nodes` — distinct nodes (feature rows staged).
/// * `feature_dim` — input feature width.
/// * `topology_bytes` — the subgraph's CSR bytes.
/// * `total_ids` — IDs processed by the ID map (sizes its hash table).
/// * `cache_bytes` — static feature-cache bytes.
/// * `runtime_reserved` — fixed runtime reservation; pass
///   [`RUNTIME_RESERVED_BYTES`] at full scale, or a value scaled with the
///   workload when simulating a scaled-down device (see
///   `Pipeline::probe_auto_cache_rows`).
#[allow(clippy::too_many_arguments)]
pub fn estimate_batch_memory_with_runtime(
    workloads: &[LayerWorkload],
    param_bytes: u64,
    subgraph_nodes: u64,
    feature_dim: usize,
    topology_bytes: u64,
    total_ids: u64,
    cache_bytes: u64,
    runtime_reserved: u64,
) -> MemoryEstimate {
    // Activations: each layer materialises its input (num_src × d_in) and
    // output (num_dst × d_out); backward keeps gradients of the same shape.
    let activations: u64 = workloads
        .iter()
        .map(|w| 4 * (w.num_src_rows * w.d_in as u64 + w.num_dst * w.d_out as u64))
        .sum::<u64>()
        * 2;
    // Open-addressing table at load factor 1/2, 16 bytes per slot.
    let hash_table = 2 * total_ids * 16;
    MemoryEstimate {
        params: param_bytes,
        optimizer: 2 * param_bytes,
        activations,
        features: subgraph_nodes * feature_dim as u64 * 4,
        topology: topology_bytes,
        hash_table,
        cache: cache_bytes,
        runtime: runtime_reserved,
    }
}

/// [`estimate_batch_memory_with_runtime`] with the full-scale runtime
/// reservation.
#[allow(clippy::too_many_arguments)]
pub fn estimate_batch_memory(
    workloads: &[LayerWorkload],
    param_bytes: u64,
    subgraph_nodes: u64,
    feature_dim: usize,
    topology_bytes: u64,
    total_ids: u64,
    cache_bytes: u64,
) -> MemoryEstimate {
    estimate_batch_memory_with_runtime(
        workloads,
        param_bytes,
        subgraph_nodes,
        feature_dim,
        topology_bytes,
        total_ids,
        cache_bytes,
        RUNTIME_RESERVED_BYTES,
    )
}

/// Analytic neighbour-explosion estimate: expected distinct nodes of an
/// L-hop uniform sample from `batch` seeds on a graph with `num_nodes`
/// nodes and average degree `avg_degree` (used at *full published scale*
/// for Table 1, where actually sampling a 111M-node graph is unnecessary).
pub fn estimate_unique_nodes(
    num_nodes: u64,
    avg_degree: f64,
    batch: u64,
    fanouts: &[usize],
) -> u64 {
    let n = num_nodes as f64;
    let mut cumulative = (batch as f64).min(n);
    for &fanout in fanouts {
        let per_node = (fanout as f64).min(avg_degree.max(1.0));
        let draws = cumulative * per_node;
        // Expected distinct endpoints of `draws` roughly-uniform draws.
        let distinct = n * (1.0 - (1.0 - 1.0 / n).powf(draws));
        // Of those, the fraction not already in the cumulative set is new.
        let new = distinct * (1.0 - cumulative / n);
        cumulative = (cumulative + new).min(n);
    }
    cumulative.round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> Vec<LayerWorkload> {
        vec![
            LayerWorkload {
                num_dst: 1_000,
                num_src_rows: 10_000,
                nnz: 5_000,
                d_in: 100,
                d_out: 64,
            },
            LayerWorkload {
                num_dst: 100,
                num_src_rows: 1_000,
                nnz: 500,
                d_in: 64,
                d_out: 10,
            },
        ]
    }

    #[test]
    fn totals_add_up() {
        let e = estimate_batch_memory(&workload(), 1_000_000, 10_000, 100, 50_000, 20_000, 0);
        let sum = e.params
            + e.optimizer
            + e.activations
            + e.features
            + e.topology
            + e.hash_table
            + e.cache
            + e.runtime;
        assert_eq!(e.total(), sum);
        assert_eq!(e.optimizer, 2 * e.params);
        assert_eq!(e.features, 10_000 * 100 * 4);
        assert_eq!(e.hash_table, 2 * 20_000 * 16);
    }

    #[test]
    fn remaining_saturates() {
        let e = estimate_batch_memory(&workload(), 0, 0, 1, 0, 0, 0);
        assert_eq!(e.remaining(0), 0);
        assert!(e.remaining(u64::MAX) > 0);
    }

    #[test]
    fn activation_formula() {
        let w = vec![LayerWorkload {
            num_dst: 10,
            num_src_rows: 100,
            nnz: 0,
            d_in: 8,
            d_out: 4,
        }];
        let e = estimate_batch_memory(&w, 0, 0, 1, 0, 0, 0);
        assert_eq!(e.activations, 2 * 4 * (100 * 8 + 10 * 4));
    }

    #[test]
    fn unique_nodes_grow_with_hops_and_saturate() {
        let one_hop = estimate_unique_nodes(1_000_000, 30.0, 8_000, &[5]);
        let three_hop = estimate_unique_nodes(1_000_000, 30.0, 8_000, &[5, 10, 15]);
        assert!(three_hop > one_hop);
        assert!(three_hop <= 1_000_000);
        // Deep sampling on a small graph saturates at the graph size.
        let saturated = estimate_unique_nodes(10_000, 30.0, 8_000, &[15, 15, 15]);
        assert!(saturated > 9_000, "{saturated}");
    }

    #[test]
    fn paper_scale_subgraphs_are_large() {
        // Papers100M with batch 8000 and [5,10,15]: the sampled subgraph
        // must reach millions of nodes (the neighbour-explosion premise of
        // Table 1: only ~1 GB of 24 GB remains).
        let nodes = estimate_unique_nodes(111_000_000, 14.5, 8_000, &[5, 10, 15]);
        assert!(nodes > 1_000_000, "{nodes}");
        assert!(nodes < 111_000_000);
    }
}
