//! Pre-sampling hotness estimation — GNNLab's cache policy.
//!
//! PaGraph caches by out-degree; GNNLab instead *pre-samples* a few epochs
//! offline and caches the nodes that actually appeared most often in
//! sampled subgraphs ("hotness"). On skewed graphs the two orders agree at
//! the head but diverge in the tail, where hotness also reflects the seed
//! distribution and fanout structure. This module implements the hotness
//! counter and ranking so the GNNLab baseline can use its published policy.

use fastgl_graph::{Csr, NodeId};
use fastgl_sample::SampledSubgraph;

/// Accumulates per-node appearance counts over pre-sampled subgraphs.
#[derive(Debug, Clone)]
pub struct HotnessCounter {
    counts: Vec<u64>,
    subgraphs_seen: u64,
}

impl HotnessCounter {
    /// A counter for a graph with `num_nodes` nodes.
    pub fn new(num_nodes: u64) -> Self {
        Self {
            counts: vec![0; num_nodes as usize],
            subgraphs_seen: 0,
        }
    }

    /// Records every node of one sampled subgraph.
    ///
    /// # Panics
    ///
    /// Panics if the subgraph references nodes outside the graph.
    pub fn record(&mut self, subgraph: &SampledSubgraph) {
        for node in &subgraph.nodes {
            self.counts[node.index()] += 1;
        }
        self.subgraphs_seen += 1;
    }

    /// Number of pre-sampled subgraphs recorded.
    pub fn subgraphs_seen(&self) -> u64 {
        self.subgraphs_seen
    }

    /// Appearance count of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn count(&self, node: NodeId) -> u64 {
        self.counts[node.index()]
    }

    /// Nodes ranked by descending hotness; ties break towards lower IDs so
    /// the ranking is deterministic. Falls back to degree order (via the
    /// caller) when nothing was recorded.
    pub fn ranking(&self) -> Vec<NodeId> {
        let mut nodes: Vec<u64> = (0..self.counts.len() as u64).collect();
        nodes.sort_by_key(|&n| (std::cmp::Reverse(self.counts[n as usize]), n));
        nodes.into_iter().map(NodeId).collect()
    }

    /// The fraction of all recorded appearances covered by caching the
    /// `rows` hottest nodes — GNNLab's expected cache hit rate.
    pub fn expected_hit_rate(&self, rows: u64) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mut sorted: Vec<u64> = self.counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let covered: u64 = sorted.iter().take(rows as usize).sum();
        covered as f64 / total as f64
    }
}

/// How a static feature cache picks its residents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheRankPolicy {
    /// Highest out-degree first (PaGraph).
    Degree,
    /// Most-frequently-sampled first, measured by pre-sampling (GNNLab).
    PreSampledHotness,
}

/// Builds the cache-resident ranking for a policy.
///
/// For [`CacheRankPolicy::PreSampledHotness`] with an empty counter the
/// ranking degenerates to node-ID order, so callers should record probe
/// subgraphs first.
pub fn rank_nodes(
    policy: CacheRankPolicy,
    graph: &Csr,
    hotness: Option<&HotnessCounter>,
) -> Vec<NodeId> {
    match policy {
        CacheRankPolicy::Degree => graph.nodes_by_degree_desc(),
        CacheRankPolicy::PreSampledHotness => match hotness {
            Some(h) if h.subgraphs_seen() > 0 => h.ranking(),
            _ => graph.nodes_by_degree_desc(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgl_graph::generate::rmat::{self, RmatConfig};
    use fastgl_graph::DeterministicRng;
    use fastgl_sample::{FusedIdMap, NeighborSampler};

    fn probe(counter: &mut HotnessCounter, graph: &Csr, seed: u64) {
        let sampler = NeighborSampler::new(vec![3, 5]);
        let mut rng = DeterministicRng::seed(seed);
        let seeds: Vec<NodeId> = (0..32)
            .map(|i| NodeId((i * 13 + seed) % graph.num_nodes()))
            .collect();
        let (sg, _) = sampler.sample(graph, &seeds, &FusedIdMap::new(), &mut rng);
        counter.record(&sg);
    }

    #[test]
    fn counts_accumulate_over_subgraphs() {
        let g = rmat::generate(&RmatConfig::social(1_000, 8_000), 1);
        let mut c = HotnessCounter::new(g.num_nodes());
        assert_eq!(c.subgraphs_seen(), 0);
        probe(&mut c, &g, 1);
        probe(&mut c, &g, 2);
        assert_eq!(c.subgraphs_seen(), 2);
        let total: u64 = (0..g.num_nodes()).map(|n| c.count(NodeId(n))).sum();
        assert!(total > 0);
    }

    #[test]
    fn ranking_is_sorted_by_count_then_id() {
        let g = rmat::generate(&RmatConfig::social(500, 4_000), 2);
        let mut c = HotnessCounter::new(g.num_nodes());
        for s in 0..4 {
            probe(&mut c, &g, s);
        }
        let ranking = c.ranking();
        assert_eq!(ranking.len() as u64, g.num_nodes());
        for w in ranking.windows(2) {
            let (a, b) = (c.count(w[0]), c.count(w[1]));
            assert!(a > b || (a == b && w[0] < w[1]));
        }
    }

    #[test]
    fn hot_nodes_correlate_with_degree_on_power_law_graphs() {
        let g = rmat::generate(&RmatConfig::social(2_000, 30_000), 3);
        let mut c = HotnessCounter::new(g.num_nodes());
        for s in 0..6 {
            probe(&mut c, &g, s);
        }
        // The hottest decile should have far higher average degree than
        // the coldest decile.
        let ranking = c.ranking();
        let avg_deg = |nodes: &[NodeId]| {
            nodes.iter().map(|&n| g.degree(n)).sum::<u64>() as f64 / nodes.len() as f64
        };
        let hot = avg_deg(&ranking[..200]);
        let cold = avg_deg(&ranking[1_800..]);
        assert!(hot > 3.0 * cold, "hot {hot} cold {cold}");
    }

    #[test]
    fn expected_hit_rate_monotone_and_bounded() {
        let g = rmat::generate(&RmatConfig::social(500, 4_000), 4);
        let mut c = HotnessCounter::new(g.num_nodes());
        probe(&mut c, &g, 0);
        let r100 = c.expected_hit_rate(100);
        let r300 = c.expected_hit_rate(300);
        let rall = c.expected_hit_rate(500);
        assert!(r100 <= r300 && r300 <= rall);
        assert!((0.0..=1.0).contains(&r100));
        assert!((rall - 1.0).abs() < 1e-12);
        assert_eq!(HotnessCounter::new(10).expected_hit_rate(5), 0.0);
    }

    #[test]
    fn rank_policy_falls_back_to_degree() {
        let g = rmat::generate(&RmatConfig::social(300, 2_000), 5);
        let empty = HotnessCounter::new(g.num_nodes());
        let by_degree = rank_nodes(CacheRankPolicy::Degree, &g, None);
        let fallback = rank_nodes(CacheRankPolicy::PreSampledHotness, &g, Some(&empty));
        assert_eq!(by_degree, fallback);
        let none = rank_nodes(CacheRankPolicy::PreSampledHotness, &g, None);
        assert_eq!(by_degree, none);
    }

    #[test]
    fn hotness_ranking_beats_degree_for_skewed_seeds() {
        // When seeds concentrate in one region, pre-sampled hotness adapts
        // while the degree order does not.
        let g = rmat::generate(&RmatConfig::social(2_000, 16_000), 6);
        let mut c = HotnessCounter::new(g.num_nodes());
        let sampler = NeighborSampler::new(vec![3, 3]);
        let mut rng = DeterministicRng::seed(9);
        // All seeds from a narrow ID band.
        let seeds: Vec<NodeId> = (1_500..1_532).map(NodeId).collect();
        for _ in 0..4 {
            let (sg, _) = sampler.sample(&g, &seeds, &FusedIdMap::new(), &mut rng);
            c.record(&sg);
        }
        let hot = rank_nodes(CacheRankPolicy::PreSampledHotness, &g, Some(&c));
        // The seeds themselves must be hot.
        let top: std::collections::HashSet<NodeId> = hot[..400].iter().copied().collect();
        let seeds_in_top = seeds.iter().filter(|s| top.contains(s)).count();
        assert!(
            seeds_in_top > 16,
            "only {seeds_in_top} of 32 seeds ranked hot"
        );
    }
}
