//! Configuration of the FastGL training pipeline.

use crate::resilience::{FaultPlan, FaultPlanError};
use fastgl_gnn::ModelKind;
use fastgl_gpusim::SystemSpec;
use serde::{Deserialize, Serialize};

/// Which ID-map strategy the sampler uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IdMapKind {
    /// DGL-style three-kernel map with synchronized local-ID assignment.
    Baseline,
    /// The paper's Fused-Map (Algorithm 2).
    Fused,
}

/// Which device draws neighbours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SampleDevice {
    /// CPU sampling (PyG-style), low parallelism.
    Cpu,
    /// GPU sampling (DGL/GNNLab/FastGL-style).
    Gpu,
}

/// How the computation phase accesses memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ComputeMode {
    /// Everything streams through L1/L2 from global memory (DGL/PyG).
    Naive,
    /// The paper's Memory-Aware shared-memory kernel (§4.2).
    MemoryAware,
    /// GNNAdvisor-style 2D workload management: improved cache locality
    /// but a per-iteration preprocessing pass.
    Advisor,
}

/// Which sampling algorithm drives the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplerKind {
    /// K-hop uniform neighbour sampling with the configured fanouts.
    Neighbor,
    /// PinSAGE-style random walks (length 3), paper Table 7.
    RandomWalk,
    /// LADIES/FastGCN-style layer-wise importance sampling; the fanouts
    /// are reinterpreted as per-layer node budgets (× batch size).
    LayerWise,
}

/// Full configuration of a FastGL (or FastGL-derived baseline) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FastGlConfig {
    /// Simulated hardware.
    pub system: SystemSpec,
    /// Model family trained.
    pub model: ModelKind,
    /// Hidden width (64 in the paper's benchmarks).
    pub hidden_dim: usize,
    /// Mini-batch size (8000 in the paper; scale-adjusted in experiments).
    pub batch_size: u64,
    /// Per-hop fanouts, seeds outward (paper default `[5, 10, 15]`).
    pub fanouts: Vec<usize>,
    /// Sampling algorithm.
    pub sampler: SamplerKind,
    /// Mini-batches sampled per Reorder window (the `n` of Algorithm 1).
    pub reorder_window: usize,
    /// Fraction of the dataset's feature rows held in a device cache;
    /// `None` auto-sizes to whatever memory remains (GNNLab-style).
    pub cache_ratio: Option<f64>,
    /// Enable the Match step (reuse of resident rows).
    pub enable_match: bool,
    /// Enable the greedy Reorder (Algorithm 1).
    pub enable_reorder: bool,
    /// Memory access mode of the computation phase.
    pub compute_mode: ComputeMode,
    /// ID-map strategy.
    pub id_map: IdMapKind,
    /// Sampling device.
    pub sample_device: SampleDevice,
    /// Master random seed.
    pub seed: u64,
    /// CPU worker threads for the host-side execution backend (dense
    /// kernels, aggregation, sampling, feature gather). `None` defers to
    /// the `FASTGL_THREADS` environment variable and then the machine's
    /// core count; `Some(1)` forces the exact serial path. Results are
    /// bit-identical at any setting.
    pub threads: Option<usize>,
    /// Telemetry collection (spans, counters, histograms). `None` defers
    /// to the `FASTGL_TELEMETRY` environment variable; `Some(true)` /
    /// `Some(false)` force it on or off for the whole process. Telemetry
    /// never affects simulated results — only whether they are observed.
    pub telemetry: Option<bool>,
    /// Prefetch depth of the asynchronous window pipeline: how many
    /// mini-batch windows the sampler may run ahead of the compute stage
    /// (see [`crate::executor::PipelineExecutor`]). `None` defers to the
    /// `FASTGL_PREFETCH` environment variable and then `0`, which executes
    /// the stages back-to-back on one thread. Prefetching changes
    /// wall-clock time only — simulated results are bit-identical at any
    /// depth.
    pub prefetch_windows: Option<usize>,
    /// Deterministic fault-injection plan (see [`crate::resilience`]).
    /// `None` defers to the `FASTGL_FAULTS` environment variable and then
    /// to no faults at all. Injected faults degrade the run (extra PCIe
    /// traffic, retry backoff, shrunken cache) but never abort it, and
    /// fire at the same simulated positions regardless of
    /// `FASTGL_THREADS` or `FASTGL_PREFETCH`.
    pub faults: Option<FaultPlan>,
}

impl FastGlConfig {
    /// Returns the config with a different batch size.
    pub fn with_batch_size(mut self, batch_size: u64) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Returns the config with different fanouts.
    pub fn with_fanouts(mut self, fanouts: Vec<usize>) -> Self {
        self.fanouts = fanouts;
        self
    }

    /// Returns the config with a different model.
    pub fn with_model(mut self, model: ModelKind) -> Self {
        self.model = model;
        self
    }

    /// Returns the config with a different GPU count.
    pub fn with_gpus(mut self, num_gpus: usize) -> Self {
        self.system.num_gpus = num_gpus;
        self
    }

    /// Returns the config with an explicit cache ratio.
    pub fn with_cache_ratio(mut self, ratio: f64) -> Self {
        self.cache_ratio = Some(ratio);
        self
    }

    /// Returns the config with a different hidden width.
    pub fn with_hidden_dim(mut self, hidden_dim: usize) -> Self {
        self.hidden_dim = hidden_dim;
        self
    }

    /// Returns the config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config using the random-walk sampler.
    pub fn with_random_walk(mut self) -> Self {
        self.sampler = SamplerKind::RandomWalk;
        self
    }

    /// Returns the config using the layer-wise importance sampler.
    pub fn with_layer_wise(mut self) -> Self {
        self.sampler = SamplerKind::LayerWise;
        self
    }

    /// Returns the config with an explicit CPU worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Returns the config with telemetry forced on or off.
    pub fn with_telemetry(mut self, on: bool) -> Self {
        self.telemetry = Some(on);
        self
    }

    /// Returns the config with an explicit window-pipeline prefetch depth
    /// (`0` forces the serial path regardless of `FASTGL_PREFETCH`).
    pub fn with_prefetch_windows(mut self, depth: usize) -> Self {
        self.prefetch_windows = Some(depth);
        self
    }

    /// Returns the config with an explicit fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The effective fault plan: the explicit setting, else the
    /// `FASTGL_FAULTS` environment variable, else no faults.
    ///
    /// The environment is re-read on every call so tests can vary it
    /// within one process.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError`] when `FASTGL_FAULTS` is set but does not
    /// parse; the message names the offending entry.
    pub fn resolved_faults(&self) -> Result<Option<FaultPlan>, FaultPlanError> {
        if let Some(plan) = &self.faults {
            return Ok(Some(plan.clone()));
        }
        FaultPlan::from_env()
    }

    /// The effective prefetch depth: the explicit setting, else the
    /// `FASTGL_PREFETCH` environment variable, else `0` (serial).
    ///
    /// The environment is re-read on every call so tests can vary it
    /// within one process.
    pub fn resolved_prefetch(&self) -> usize {
        if let Some(depth) = self.prefetch_windows {
            return depth;
        }
        std::env::var("FASTGL_PREFETCH")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    }

    /// Installs this config's thread count as the process-wide setting of
    /// the execution backend (`None` clears any previous override).
    pub fn apply_threads(&self) {
        fastgl_tensor::parallel::set_num_threads(self.threads.unwrap_or(0));
    }

    /// Installs this config's telemetry preference process-wide. `None`
    /// leaves the `FASTGL_TELEMETRY` environment decision untouched.
    pub fn apply_telemetry(&self) {
        if let Some(on) = self.telemetry {
            fastgl_telemetry::set_enabled(on);
        }
    }

    /// Number of GNN layers implied by the sampler (one per hop for the
    /// neighbour sampler; random walks build one block).
    pub fn num_layers(&self) -> usize {
        match self.sampler {
            SamplerKind::Neighbor | SamplerKind::LayerWise => self.fanouts.len(),
            SamplerKind::RandomWalk => 1,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if self.fanouts.is_empty() || self.fanouts.contains(&0) {
            return Err("fanouts must be non-empty and positive".into());
        }
        if self.reorder_window < 2 && self.enable_reorder {
            return Err("reorder needs a window of at least 2".into());
        }
        if let Some(r) = self.cache_ratio {
            if !(0.0..=1.0).contains(&r) {
                return Err(format!("cache_ratio {r} outside [0, 1]"));
            }
        }
        if self.hidden_dim == 0 {
            return Err("hidden_dim must be positive".into());
        }
        if self.threads == Some(0) {
            return Err("threads must be positive when set".into());
        }
        Ok(())
    }
}

impl Default for FastGlConfig {
    /// The paper's FastGL defaults: GCN, hidden 64, batch 8000, fanouts
    /// `[5, 10, 15]`, 2 GPUs, all three techniques enabled, auto cache.
    fn default() -> Self {
        Self {
            system: SystemSpec::rtx3090_server(2),
            model: ModelKind::Gcn,
            hidden_dim: 64,
            batch_size: 8000,
            fanouts: vec![5, 10, 15],
            sampler: SamplerKind::Neighbor,
            reorder_window: 8,
            cache_ratio: None,
            enable_match: true,
            enable_reorder: true,
            compute_mode: ComputeMode::MemoryAware,
            id_map: IdMapKind::Fused,
            sample_device: SampleDevice::Gpu,
            seed: 0x5EED,
            threads: None,
            telemetry: None,
            prefetch_windows: None,
            faults: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let c = FastGlConfig::default();
        c.validate().unwrap();
        assert_eq!(c.batch_size, 8000);
        assert_eq!(c.fanouts, vec![5, 10, 15]);
        assert_eq!(c.num_layers(), 3);
        assert_eq!(c.compute_mode, ComputeMode::MemoryAware);
        assert_eq!(c.id_map, IdMapKind::Fused);
    }

    #[test]
    fn builders_chain() {
        let c = FastGlConfig::default()
            .with_batch_size(2000)
            .with_model(ModelKind::Gat)
            .with_gpus(4)
            .with_cache_ratio(0.25)
            .with_fanouts(vec![5, 10])
            .with_hidden_dim(128)
            .with_seed(9);
        c.validate().unwrap();
        assert_eq!(c.batch_size, 2000);
        assert_eq!(c.system.num_gpus, 4);
        assert_eq!(c.cache_ratio, Some(0.25));
        assert_eq!(c.num_layers(), 2);
    }

    #[test]
    fn random_walk_has_one_layer() {
        let c = FastGlConfig::default().with_random_walk();
        assert_eq!(c.num_layers(), 1);
    }

    #[test]
    fn layer_wise_matches_fanout_depth() {
        let c = FastGlConfig::default().with_layer_wise();
        assert_eq!(c.num_layers(), 3);
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_fields() {
        assert!(FastGlConfig::default()
            .with_batch_size(0)
            .validate()
            .is_err());
        assert!(FastGlConfig::default()
            .with_fanouts(vec![])
            .validate()
            .is_err());
        assert!(FastGlConfig::default()
            .with_fanouts(vec![5, 0])
            .validate()
            .is_err());
        assert!(FastGlConfig::default()
            .with_cache_ratio(1.5)
            .validate()
            .is_err());
        assert!(FastGlConfig::default()
            .with_hidden_dim(0)
            .validate()
            .is_err());
        assert!(FastGlConfig::default().with_threads(0).validate().is_err());
        let c = FastGlConfig {
            reorder_window: 1,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn threads_default_and_builder() {
        assert_eq!(FastGlConfig::default().threads, None);
        let c = FastGlConfig::default().with_threads(4);
        assert_eq!(c.threads, Some(4));
        c.validate().unwrap();
    }

    #[test]
    fn prefetch_default_and_builder() {
        let c = FastGlConfig::default();
        assert_eq!(c.prefetch_windows, None);
        let c = c.with_prefetch_windows(4);
        assert_eq!(c.prefetch_windows, Some(4));
        assert_eq!(c.resolved_prefetch(), 4);
        c.validate().unwrap();
        // Depth 0 is valid and forces the serial path.
        FastGlConfig::default()
            .with_prefetch_windows(0)
            .validate()
            .unwrap();
    }

    #[test]
    fn faults_default_and_builder() {
        let c = FastGlConfig::default();
        assert_eq!(c.faults, None);
        // With no explicit plan and no FASTGL_FAULTS, there are no faults.
        // (Tests that set the env var live in the resilience suite; the
        // unit tests here must not mutate process-wide state.)
        let plan: FaultPlan = "pcie_stall@batch=7".parse().unwrap();
        let c = c.with_faults(plan.clone());
        assert_eq!(c.faults, Some(plan.clone()));
        assert_eq!(c.resolved_faults().unwrap(), Some(plan));
        c.validate().unwrap();
    }

    #[test]
    fn telemetry_default_and_builder() {
        assert_eq!(FastGlConfig::default().telemetry, None);
        let c = FastGlConfig::default().with_telemetry(true);
        assert_eq!(c.telemetry, Some(true));
        c.validate().unwrap();
        // `None` must not clobber whatever the process already decided.
        FastGlConfig::default().apply_telemetry();
    }
}
