//! Integration tests for the telemetry subsystem against the real
//! training pipeline: totals must not depend on the thread count, the
//! simulated-time track must agree with the pipeline's own phase
//! accounting, and disabling telemetry must change nothing about results.

use fastgl_core::system::TrainingSystem;
use fastgl_core::{EpochStats, FastGl, FastGlConfig};
use fastgl_graph::{Dataset, DatasetBundle};
use std::sync::Mutex;

/// Serializes tests: telemetry state and the thread override are global.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn data() -> DatasetBundle {
    Dataset::Products.generate_scaled(1.0 / 1024.0, 11)
}

fn config() -> FastGlConfig {
    FastGlConfig::default()
        .with_batch_size(32)
        .with_fanouts(vec![3, 5])
}

/// Runs two epochs with telemetry on and returns the stats plus snapshot.
fn run_with_telemetry(threads: usize) -> (Vec<EpochStats>, fastgl_telemetry::Snapshot) {
    fastgl_telemetry::set_enabled(true);
    fastgl_telemetry::reset();
    fastgl_tensor::parallel::set_num_threads(threads);
    let bundle = data();
    let mut sys = FastGl::new(config());
    let stats: Vec<EpochStats> = (0..2).map(|e| sys.run_epoch(&bundle, e)).collect();
    let snap = fastgl_telemetry::drain();
    fastgl_tensor::parallel::set_num_threads(0);
    fastgl_telemetry::set_enabled(false);
    (stats, snap)
}

#[test]
fn counter_totals_invariant_across_thread_counts() {
    let _guard = lock();
    let (base_stats, base_snap) = run_with_telemetry(1);
    for threads in [2usize, 8] {
        let (stats, snap) = run_with_telemetry(threads);
        assert_eq!(stats, base_stats, "results differ at {threads} threads");
        assert_eq!(
            snap.counters, base_snap.counters,
            "counter totals differ at {threads} threads"
        );
        // Span *counts* per name are structural (how many batches, how
        // many epochs) except for the worker-chunk spans, whose number
        // legitimately grows with the thread count.
        let count_by_name = |s: &fastgl_telemetry::Snapshot| {
            let mut m = std::collections::BTreeMap::new();
            for (name, agg) in s.span_totals() {
                if name != "parallel.chunk" {
                    m.insert(name, agg.count);
                }
            }
            m
        };
        assert_eq!(
            count_by_name(&snap),
            count_by_name(&base_snap),
            "span counts differ at {threads} threads"
        );
    }
}

#[test]
fn sim_phase_totals_match_epoch_breakdowns() {
    let _guard = lock();
    let (stats, snap) = run_with_telemetry(1);
    let totals = snap.sim_phase_totals();
    let sum = |f: fn(&EpochStats) -> u64| stats.iter().map(f).sum::<u64>();
    assert_eq!(
        totals.get("sample").copied(),
        Some(sum(|s| s.breakdown.sample.as_nanos())),
        "sample phase disagrees with the simulator"
    );
    assert_eq!(
        totals.get("io").copied(),
        Some(sum(|s| s.breakdown.io.as_nanos())),
        "io phase disagrees with the simulator"
    );
    assert_eq!(
        totals.get("compute").copied(),
        Some(sum(|s| s.breakdown.compute.as_nanos())),
        "compute phase disagrees with the simulator"
    );
    assert_eq!(snap.dropped_events, 0, "buffer must not overflow here");
}

#[test]
fn pipeline_counters_cross_check_epoch_stats() {
    let _guard = lock();
    let (stats, snap) = run_with_telemetry(1);
    let rows_loaded: u64 = stats.iter().map(|s| s.rows_loaded).sum();
    let iterations: u64 = stats.iter().map(|s| s.iterations).sum();
    // Counters that were never touched (e.g. no PCIe loads because the
    // cache held everything) are simply absent: absent == zero.
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    assert_eq!(counter("io.rows_loaded"), rows_loaded);
    assert_eq!(counter("pipeline.iterations"), iterations);
    assert!(iterations > 0);
    assert!(snap.counters.contains_key("sample.edges_sampled"));
    // Every epoch produced one wall span and its exporters parse.
    assert_eq!(snap.span_totals()["pipeline.epoch"].count, 2);
    let trace = fastgl_telemetry::export::chrome_trace(&snap);
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("pipeline.epoch"));
}

#[test]
fn disabled_telemetry_leaves_results_and_buffers_untouched() {
    let _guard = lock();
    let (enabled_stats, _) = run_with_telemetry(1);
    fastgl_telemetry::set_enabled(false);
    fastgl_telemetry::reset();
    let bundle = data();
    let mut sys = FastGl::new(config());
    let stats: Vec<EpochStats> = (0..2).map(|e| sys.run_epoch(&bundle, e)).collect();
    assert_eq!(stats, enabled_stats, "telemetry must not affect results");
    let snap = fastgl_telemetry::snapshot();
    assert!(snap.events.is_empty());
    assert!(snap.counters.is_empty());
}
