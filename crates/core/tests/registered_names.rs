//! Lint: every counter and histogram name the runtime actually emits must
//! be registered in [`fastgl_telemetry::names`]. A typo'd or unregistered
//! name would silently fall out of `fastgl-insight`'s attribution tables,
//! so this test runs representative workloads — serial and pipelined,
//! clean and faulted, single- and multi-threaded — and asserts the drained
//! snapshot contains no stranger names.

use fastgl_core::system::TrainingSystem;
use fastgl_core::{FastGl, FastGlConfig};
use fastgl_graph::{Dataset, DatasetBundle};
use fastgl_telemetry::names;
use std::collections::BTreeSet;
use std::sync::Mutex;

/// Serializes tests: telemetry state and the thread override are global.
static LOCK: Mutex<()> = Mutex::new(());

fn data() -> DatasetBundle {
    Dataset::Products.generate_scaled(1.0 / 1024.0, 11)
}

fn config() -> FastGlConfig {
    FastGlConfig::default()
        .with_batch_size(32)
        .with_fanouts(vec![3, 5])
}

/// Runs `cfg` for two epochs under telemetry and returns the emitted
/// counter and histogram names.
fn emitted_names(cfg: FastGlConfig, threads: usize) -> BTreeSet<&'static str> {
    fastgl_telemetry::set_enabled(true);
    fastgl_telemetry::reset();
    fastgl_tensor::parallel::set_num_threads(threads);
    let bundle = data();
    let mut sys = FastGl::new(cfg);
    for epoch in 0..2 {
        sys.run_epoch(&bundle, epoch);
    }
    let snap = fastgl_telemetry::drain();
    fastgl_tensor::parallel::set_num_threads(0);
    fastgl_telemetry::set_enabled(false);
    snap.counters
        .keys()
        .chain(snap.histograms.keys())
        .copied()
        .collect()
}

#[test]
fn every_emitted_metric_name_is_registered() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let registry: BTreeSet<&str> = names::all().iter().copied().collect();
    let fault_plan: fastgl_core::FaultPlan =
        "pcie_stall@batch=0:3,transfer_error@batch=1:2,oom@epoch=0:0.5"
            .parse()
            .unwrap();
    for threads in [1usize, 8] {
        // Serial loop, pipelined loop, and a faulted pipelined loop cover
        // every counter/histogram emission site in the epoch runner.
        let configs = [
            config(),
            config().with_prefetch_windows(2),
            config()
                .with_prefetch_windows(2)
                .with_faults(fault_plan.clone()),
        ];
        for cfg in configs {
            let emitted = emitted_names(cfg, threads);
            assert!(!emitted.is_empty(), "expected telemetry output");
            let strangers: Vec<&str> = emitted
                .iter()
                .filter(|n| !registry.contains(*n))
                .copied()
                .collect();
            assert!(
                strangers.is_empty(),
                "unregistered metric names at {threads} threads: {strangers:?} \
                 — add them to fastgl_telemetry::names"
            );
        }
    }
}
