//! The pipelined executor's core contract: prefetch depth and thread
//! count change wall-clock behaviour only. Simulated epoch statistics —
//! including every per-phase `SimTime` — must be bit-identical at any
//! `FASTGL_PREFETCH` × `FASTGL_THREADS` combination, for FastGL and for
//! the policy-driven baselines sharing the same `Pipeline`.

use fastgl_core::pipeline::{CachePolicy, Pipeline, PipelinePolicy};
use fastgl_core::{CacheRankPolicy, EpochStats, FastGl, FastGlConfig, TrainingSystem};
use fastgl_graph::Dataset;

fn config() -> FastGlConfig {
    FastGlConfig::default()
        .with_batch_size(32)
        .with_fanouts(vec![3, 5])
}

fn data() -> fastgl_graph::DatasetBundle {
    Dataset::Products.generate_scaled(1.0 / 1024.0, 11)
}

/// GNNLab-like baseline policy: dedicated sampler GPU, overlapped
/// sampling, no match/reorder — exercises the per-window overlap model.
fn overlap_policy() -> PipelinePolicy {
    PipelinePolicy {
        use_match: false,
        use_reorder: false,
        cache: CachePolicy::None,
        sampler_gpus: 1,
        overlap_sample: true,
        cache_rank: CacheRankPolicy::Degree,
    }
}

fn fastgl_epoch(prefetch: usize, threads: usize) -> EpochStats {
    let cfg = config()
        .with_prefetch_windows(prefetch)
        .with_threads(threads);
    FastGl::new(cfg).run_epoch(&data(), 2)
}

fn baseline_epoch(prefetch: usize, threads: usize) -> EpochStats {
    let cfg = config()
        .with_prefetch_windows(prefetch)
        .with_threads(threads);
    Pipeline::new("overlap-baseline", cfg, overlap_policy()).run_epoch(&data(), 2)
}

#[test]
fn fastgl_stats_invariant_across_prefetch_and_threads() {
    let reference = fastgl_epoch(0, 1);
    assert!(reference.iterations > 1, "fixture must run several batches");
    for prefetch in [0usize, 1, 4] {
        for threads in [1usize, 8] {
            let got = fastgl_epoch(prefetch, threads);
            assert_eq!(
                got, reference,
                "FastGL stats diverged at prefetch {prefetch}, {threads} threads"
            );
            // Spell the phase times out: `total()` summing equal would
            // not catch compensating per-phase drift.
            assert_eq!(got.breakdown.sample, reference.breakdown.sample);
            assert_eq!(got.breakdown.io, reference.breakdown.io);
            assert_eq!(got.breakdown.compute, reference.breakdown.compute);
        }
    }
}

#[test]
fn overlap_baseline_stats_invariant_across_prefetch_and_threads() {
    let reference = baseline_epoch(0, 1);
    assert!(reference.iterations > 1);
    for prefetch in [0usize, 1, 4] {
        for threads in [1usize, 8] {
            let got = baseline_epoch(prefetch, threads);
            assert_eq!(
                got, reference,
                "baseline stats diverged at prefetch {prefetch}, {threads} threads"
            );
            assert_eq!(got.breakdown.sample, reference.breakdown.sample);
            assert_eq!(got.breakdown.io, reference.breakdown.io);
            assert_eq!(got.breakdown.compute, reference.breakdown.compute);
        }
    }
}

#[test]
fn multi_epoch_runs_are_prefetch_invariant() {
    // Epoch-to-epoch state (IO engine, auto-cache probe, per-epoch RNG
    // streams) must also be immune to prefetch.
    let d = data();
    let mut serial = FastGl::new(config().with_prefetch_windows(0));
    let mut piped = FastGl::new(config().with_prefetch_windows(3));
    assert_eq!(serial.run_epochs(&d, 3), piped.run_epochs(&d, 3));
}

#[test]
fn channel_bound_one_backpressure_preserves_results() {
    // Depth 1 gives the tightest channels (capacity 1): every stage
    // blocks until its consumer drains the previous window. The stress
    // here is maximal backpressure with several windows in flight.
    let reference = fastgl_epoch(0, 1);
    let squeezed = fastgl_epoch(1, 8);
    assert_eq!(squeezed, reference);
    // A deeper prefetch (larger channels, more windows in flight) must
    // land on the same results as the squeezed run.
    let cfg = config().with_prefetch_windows(4).with_threads(8);
    let got = FastGl::new(cfg).run_epoch(&data(), 2);
    assert_eq!(got, reference);
}

#[test]
fn wall_stats_reflect_configured_depth() {
    let d = data();
    let mut sys = FastGl::new(config().with_prefetch_windows(2));
    let _ = sys.run_epoch(&d, 0);
    let wall = sys.pipeline_wall_stats().expect("epoch ran");
    assert_eq!(wall.prefetch, 2);
    assert_eq!(wall.channel_bound, 2);
    assert_eq!(wall.sample.items, wall.prepare.items);
    assert_eq!(wall.sample.items, wall.execute.items);
    assert!(wall.sample.items > 0);
    assert!(wall.sample.busy.as_nanos() > 0);
}
