//! Integration tests for the resilience layer (DESIGN.md §10): a killed
//! run resumed from a checkpoint must reproduce the uninterrupted run
//! bit-for-bit — same final weights, same loss trajectories, same
//! per-phase simulated time — at every `FASTGL_PREFETCH` ×
//! `FASTGL_THREADS` combination, and every injected fault class must be
//! recovered without aborting and be visible as telemetry counters.

use fastgl_core::resilience::{run_epochs_checkpointed, Checkpoint, SimOutcome};
use fastgl_core::trainer::{train_resumable, train_with_validation, TrainOutcome, TrainerConfig};
use fastgl_core::{FastGl, FastGlConfig, TrainingSystem};
use fastgl_graph::generate::community::{self, CommunityConfig, CommunityGraph};
use fastgl_graph::{Dataset, DatasetBundle, NodeId};
use fastgl_telemetry::names;
use std::sync::Mutex;

/// Serializes tests: telemetry state and the thread override are global.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn sim_data() -> DatasetBundle {
    Dataset::Products.generate_scaled(1.0 / 1024.0, 11)
}

fn sim_config() -> FastGlConfig {
    FastGlConfig::default()
        .with_batch_size(32)
        .with_fanouts(vec![3, 5])
}

/// The PREFETCH × THREADS matrix the determinism contract is pinned over.
const MATRIX: [(usize, usize); 4] = [(0, 1), (0, 8), (2, 1), (2, 8)];

fn tmp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("fastgl-resilience-{name}-{}", std::process::id()));
    p
}

#[test]
fn sim_kill_resume_bit_identical_across_prefetch_and_threads() {
    let _guard = lock();
    let data = sim_data();
    let mut reference = None;
    for (prefetch, threads) in MATRIX {
        let cfg = sim_config()
            .with_prefetch_windows(prefetch)
            .with_threads(threads);
        let full = FastGl::new(cfg.clone()).run_epochs(&data, 4);
        // Kill after 2 epochs, round-trip the checkpoint through disk,
        // resume in a fresh system, possibly at a different pipeline
        // setting than the one that saved it.
        let SimOutcome::Interrupted(ckpt) =
            run_epochs_checkpointed(&mut FastGl::new(cfg.clone()), &data, 4, None, Some(2))
                .unwrap()
        else {
            panic!("expected an interruption at ({prefetch}, {threads})")
        };
        let path = tmp_path(&format!("sim-{prefetch}-{threads}"));
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, *ckpt, "disk round-trip must be lossless");
        let SimOutcome::Complete(avg) =
            run_epochs_checkpointed(&mut FastGl::new(cfg), &data, 4, Some(&loaded), None).unwrap()
        else {
            panic!("expected completion at ({prefetch}, {threads})")
        };
        assert_eq!(
            avg, full,
            "resume diverged at prefetch {prefetch}, {threads} threads"
        );
        // Per-phase SimTime spelled out: compensating drift across phases
        // would survive a total() comparison.
        assert_eq!(avg.breakdown.sample, full.breakdown.sample);
        assert_eq!(avg.breakdown.io, full.breakdown.io);
        assert_eq!(avg.breakdown.compute, full.breakdown.compute);
        match &reference {
            None => reference = Some(full),
            Some(r) => assert_eq!(
                full, *r,
                "stats differ across the matrix at ({prefetch}, {threads})"
            ),
        }
    }
    fastgl_tensor::parallel::set_num_threads(0);
}

fn trainer_fixture() -> (CommunityGraph, Vec<NodeId>, Vec<NodeId>) {
    let d = community::generate(
        &CommunityConfig {
            num_nodes: 900,
            num_classes: 3,
            intra_degree: 10.0,
            inter_degree: 1.0,
            feature_dim: 12,
            feature_noise: 0.8,
        },
        5,
    );
    let train: Vec<NodeId> = (0..500).map(NodeId).collect();
    let val: Vec<NodeId> = (500..700).map(NodeId).collect();
    (d, train, val)
}

fn trainer_config() -> TrainerConfig {
    TrainerConfig {
        fanouts: vec![4, 4],
        batch_size: 96,
        epochs: 3,
        learning_rate: 0.01,
        reorder: true,
        window: 3,
        ..Default::default()
    }
}

#[test]
fn trainer_kill_resume_bit_identical_across_threads() {
    let _guard = lock();
    let (d, train_nodes, val_nodes) = trainer_fixture();
    let cfg = trainer_config();
    let mut reference = None;
    // The numeric trainer is not window-pipelined, so the prefetch axis of
    // the contract is vacuous here; the thread axis is the live one (the
    // dense kernels and feature gathers run on the parallel backend).
    for threads in [1usize, 8] {
        fastgl_tensor::parallel::set_num_threads(threads);
        let full = train_with_validation(
            &d.graph,
            &d.features,
            &d.labels,
            &train_nodes,
            &val_nodes,
            &cfg,
        );
        // Kill mid-window, round-trip the checkpoint through disk, resume.
        for halt in [4u64, 7] {
            let TrainOutcome::Interrupted(ckpt) = train_resumable(
                &d.graph,
                &d.features,
                &d.labels,
                &train_nodes,
                &val_nodes,
                &cfg,
                None,
                Some(halt),
            )
            .unwrap() else {
                panic!("expected an interruption at batch {halt}")
            };
            let path = tmp_path(&format!("trainer-{threads}-{halt}"));
            ckpt.save(&path).unwrap();
            let loaded = Checkpoint::load(&path).unwrap();
            std::fs::remove_file(&path).ok();
            let resumed = train_resumable(
                &d.graph,
                &d.features,
                &d.labels,
                &train_nodes,
                &val_nodes,
                &cfg,
                Some(&loaded),
                None,
            )
            .unwrap();
            assert_eq!(
                resumed,
                TrainOutcome::Complete(full.clone()),
                "resume diverged at {threads} threads, kill at batch {halt}"
            );
        }
        match &reference {
            None => reference = Some(full),
            Some(r) => assert_eq!(full, *r, "trainer diverged at {threads} threads"),
        }
    }
    fastgl_tensor::parallel::set_num_threads(0);
}

#[test]
fn every_fault_class_recovers_and_shows_in_telemetry() {
    let _guard = lock();
    fastgl_telemetry::set_enabled(true);
    fastgl_telemetry::reset();
    let data = sim_data();
    // The tiny fixture is fully cached, so transfer faults only have a
    // transfer to hit in the epoch where OOM pressure evicts rows: pin
    // all batch-scoped faults to epoch 0's batches alongside the OOM.
    let plan =
        "pcie_stall@batch=0:3,transfer_error@batch=1:2,oom@epoch=0:0.5,worker_panic@window=0"
            .parse()
            .unwrap();
    let mut sys = FastGl::new(
        sim_config()
            .with_faults(plan)
            .with_prefetch_windows(2)
            .with_threads(2),
    );
    // Two epochs: the window panic fires in each, the rest in epoch 0.
    let avg = sys.run_epochs(&data, 2);
    assert!(avg.iterations > 0, "the faulted run must not abort");
    let snap = fastgl_telemetry::drain();
    fastgl_telemetry::set_enabled(false);
    fastgl_tensor::parallel::set_num_threads(0);
    for (counter, at_least) in [
        (names::FAULT_PCIE_STALLS, 1),
        (names::FAULT_TRANSFER_RETRIES, 2),
        (names::FAULT_OVERHEAD_NS, 1),
        (names::CACHE_EVICTED_ROWS, 1),
        (names::WORKER_PANICS, 2),
        (names::STAGE_REPLAYS, 2),
    ] {
        let got = snap.counters.get(counter).copied().unwrap_or(0);
        assert!(
            got >= at_least,
            "counter {counter} = {got}, expected at least {at_least}"
        );
    }
}

#[test]
fn faulted_runs_still_kill_resume_bit_identically() {
    let _guard = lock();
    let data = sim_data();
    let plan: fastgl_core::FaultPlan =
        "pcie_stall@batch=2,transfer_error@batch=5,oom@epoch=2:0.25,worker_panic@window=1"
            .parse()
            .unwrap();
    let mut reference = None;
    for (prefetch, threads) in MATRIX {
        let cfg = sim_config()
            .with_faults(plan.clone())
            .with_prefetch_windows(prefetch)
            .with_threads(threads);
        let full = FastGl::new(cfg.clone()).run_epochs(&data, 4);
        let SimOutcome::Interrupted(ckpt) =
            run_epochs_checkpointed(&mut FastGl::new(cfg.clone()), &data, 4, None, Some(3))
                .unwrap()
        else {
            panic!("expected an interruption")
        };
        let SimOutcome::Complete(avg) =
            run_epochs_checkpointed(&mut FastGl::new(cfg), &data, 4, Some(&ckpt), None).unwrap()
        else {
            panic!("expected completion")
        };
        assert_eq!(
            avg, full,
            "faulted resume diverged at prefetch {prefetch}, {threads} threads"
        );
        match &reference {
            None => reference = Some(full),
            Some(r) => assert_eq!(full, *r, "faulted stats differ across the matrix"),
        }
    }
    fastgl_tensor::parallel::set_num_threads(0);
}

#[test]
fn malformed_fault_env_is_a_typed_error() {
    let _guard = lock();
    // `resolved_faults` re-reads the environment on every call.
    std::env::set_var("FASTGL_FAULTS", "meteor_strike@batch=1");
    let err = sim_config().resolved_faults().unwrap_err();
    std::env::remove_var("FASTGL_FAULTS");
    let msg = err.to_string();
    assert!(msg.contains("unknown fault kind"), "{msg}");
    assert!(msg.contains("meteor_strike"), "{msg}");
    // A valid env plan parses and an explicit plan takes precedence.
    std::env::set_var("FASTGL_FAULTS", "oom@epoch=0");
    let from_env = sim_config().resolved_faults().unwrap().unwrap();
    assert_eq!(from_env.to_string(), "oom@epoch=0");
    let explicit: fastgl_core::FaultPlan = "pcie_stall@batch=9".parse().unwrap();
    let resolved = sim_config()
        .with_faults(explicit.clone())
        .resolved_faults()
        .unwrap()
        .unwrap();
    std::env::remove_var("FASTGL_FAULTS");
    assert_eq!(resolved, explicit);
}

#[test]
fn truncated_checkpoint_files_are_typed_errors() {
    let _guard = lock();
    let ckpt = Checkpoint {
        trainer: None,
        simulation: Some(fastgl_core::SimulationState {
            next_epoch: 1,
            completed: vec![Default::default()],
        }),
    };
    let path = tmp_path("truncate");
    ckpt.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    let err = Checkpoint::load(&path).unwrap_err();
    std::fs::remove_file(&path).ok();
    assert!(
        matches!(err, fastgl_core::CheckpointError::BadFormat(_)),
        "{err}"
    );
    assert!(err.to_string().contains("truncated"), "{err}");
    // A missing file is an Io error, not a panic.
    let err = Checkpoint::load(tmp_path("missing")).unwrap_err();
    assert!(matches!(err, fastgl_core::CheckpointError::Io(_)), "{err}");
}
