//! The execution backend's central guarantee: every hot path produces
//! bit-identical results at any thread count, and repeated runs at the
//! same thread count are bit-identical too.

use fastgl_gnn::aggregate::{mean_aggregate, sum_aggregate_backward};
use fastgl_graph::generate::rmat::{self, RmatConfig};
use fastgl_graph::{DeterministicRng, NodeId};
use fastgl_sample::{Block, FusedIdMap, NeighborSampler, SampledSubgraph};
use fastgl_tensor::{parallel, Matrix};
use std::sync::Mutex;

/// Serializes tests in this binary that flip the global thread override.
static THREADS: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = THREADS.lock().unwrap_or_else(|e| e.into_inner());
    parallel::set_num_threads(n);
    let r = f();
    parallel::set_num_threads(0);
    r
}

fn filled(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = DeterministicRng::seed(seed);
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.normal_f32()).collect(),
    )
}

/// A block with `num_dst` destinations, each pulling `deg` of `num_src`
/// source rows (shared sources exercise accumulation order).
fn fanout_block(num_dst: usize, num_src: usize, deg: usize) -> Block {
    let mut src_offsets = vec![0u64];
    let mut src_locals = Vec::with_capacity(num_dst * deg);
    for i in 0..num_dst {
        for e in 0..deg {
            src_locals.push(((i * 31 + e * 977) % num_src) as u64);
        }
        src_offsets.push(src_locals.len() as u64);
    }
    Block {
        dst_locals: (0..num_dst as u64).collect(),
        src_offsets,
        src_locals,
    }
}

#[test]
fn matmul_bit_identical_across_thread_counts() {
    let a = filled(300, 150, 1);
    let b = filled(150, 90, 2);
    let baseline = with_threads(1, || a.matmul(&b));
    for threads in [1usize, 2, 8] {
        for run in 0..2 {
            let got = with_threads(threads, || a.matmul(&b));
            assert_eq!(
                got.as_slice(),
                baseline.as_slice(),
                "matmul diverged at {threads} threads (run {run})"
            );
        }
    }
}

#[test]
fn aggregation_bit_identical_across_thread_counts() {
    let num_dst = 700;
    let num_src = 1_500;
    let block = fanout_block(num_dst, num_src, 11);
    let z = filled(num_src, 48, 3);
    let grad = filled(num_dst, 48, 4);
    let baseline = with_threads(1, || {
        (
            mean_aggregate(&block, &z),
            sum_aggregate_backward(&block, &grad, num_src),
        )
    });
    for threads in [1usize, 2, 8] {
        for run in 0..2 {
            let got = with_threads(threads, || {
                (
                    mean_aggregate(&block, &z),
                    sum_aggregate_backward(&block, &grad, num_src),
                )
            });
            assert_eq!(
                got.0.as_slice(),
                baseline.0.as_slice(),
                "mean_aggregate diverged at {threads} threads (run {run})"
            );
            assert_eq!(
                got.1.as_slice(),
                baseline.1.as_slice(),
                "sum_aggregate_backward diverged at {threads} threads (run {run})"
            );
        }
    }
}

/// One full mini-batch — sample, gather, aggregate, dense update — must be
/// bit-identical across `FASTGL_THREADS ∈ {1, 2, 8}` and repeated runs.
#[test]
fn full_minibatch_bit_identical_across_thread_counts() {
    let graph = rmat::generate(&RmatConfig::social(3_000, 24_000), 5);
    let seeds: Vec<NodeId> = (0..256).map(|i| NodeId(i * 11 % 3_000)).collect();
    let dim = 32;
    let feats: Vec<f32> = {
        let mut rng = DeterministicRng::seed(7);
        (0..3_000 * dim).map(|_| rng.normal_f32()).collect()
    };
    let weight = filled(dim, 16, 8);

    let minibatch = || -> (SampledSubgraph, Matrix) {
        let sampler = NeighborSampler::new(vec![4, 6]);
        let mut rng = DeterministicRng::seed(42);
        let (sg, _) = sampler.sample(&graph, &seeds, &FusedIdMap::new(), &mut rng);
        let idx: Vec<usize> = sg.nodes.iter().map(|n| n.index()).collect();
        let gathered = Matrix::gather_flat(&feats, dim, 3_000, &idx);
        // One hop of the model: aggregate the widest block, then the dense
        // update — enough to cover every backend hot path in sequence.
        let h = mean_aggregate(&sg.blocks[0], &gathered)
            .matmul(&weight)
            .map(|x| x.max(0.0));
        (sg, h)
    };

    let (base_sg, base_h) = with_threads(1, minibatch);
    for threads in [1usize, 2, 8] {
        for run in 0..2 {
            let (sg, h) = with_threads(threads, minibatch);
            assert_eq!(
                sg, base_sg,
                "sampled subgraph diverged at {threads} threads (run {run})"
            );
            assert_eq!(
                h.as_slice(),
                base_h.as_slice(),
                "minibatch output diverged at {threads} threads (run {run})"
            );
        }
    }
}
