//! Graph Attention Network layer (Veličković et al.).
//!
//! Per head `h`: `e_uv = LeakyReLU(a_lᵀ W x_u + a_rᵀ W x_v)`,
//! `α_uv = softmax_v(e_uv)`, `H'_u = Σ_v α_uv · W x_v`, heads concatenated.
//! The paper's GAT uses 8 heads of dimension 8 (§6.1).

use super::GnnLayer;
use fastgl_sample::Block;
use fastgl_tensor::init::xavier_uniform;
use fastgl_tensor::ops::{relu, relu_backward, softmax_slice};
use fastgl_tensor::{Matrix, Optimizer};
use rand::RngCore;

const LEAKY_SLOPE: f32 = 0.2;

/// One multi-head GAT layer (concatenating heads).
#[derive(Debug, Clone)]
pub struct GatLayer {
    weight: Matrix,
    attn_l: Matrix,
    attn_r: Matrix,
    heads: usize,
    head_dim: usize,
    activation: bool,
    // Caches.
    input: Option<Matrix>,
    z: Option<Matrix>,
    alphas: Vec<f32>,
    e_pre: Vec<f32>,
    out_pre: Option<Matrix>,
    // Gradients.
    grad_weight: Matrix,
    grad_attn_l: Matrix,
    grad_attn_r: Matrix,
}

impl GatLayer {
    /// A layer with `heads` attention heads of `head_dim` features each;
    /// output dimensionality is `heads · head_dim`.
    pub fn new(
        d_in: usize,
        heads: usize,
        head_dim: usize,
        activation: bool,
        rng: &mut impl RngCore,
    ) -> Self {
        let d_out = heads * head_dim;
        Self {
            weight: xavier_uniform(d_in, d_out, rng),
            attn_l: xavier_uniform(heads, head_dim, rng),
            attn_r: xavier_uniform(heads, head_dim, rng),
            heads,
            head_dim,
            activation,
            input: None,
            z: None,
            alphas: Vec::new(),
            e_pre: Vec::new(),
            out_pre: None,
            grad_weight: Matrix::zeros(d_in, d_out),
            grad_attn_l: Matrix::zeros(heads, head_dim),
            grad_attn_r: Matrix::zeros(heads, head_dim),
        }
    }

    #[inline]
    fn head_slice(row: &[f32], h: usize, f: usize) -> &[f32] {
        &row[h * f..(h + 1) * f]
    }
}

impl GnnLayer for GatLayer {
    fn forward(&mut self, block: &Block, input: &Matrix) -> Matrix {
        let f = self.head_dim;
        let z = input.matmul(&self.weight);
        let nnz = block.num_edges() as usize;
        let mut alphas = vec![0.0f32; nnz * self.heads];
        let mut e_pre = vec![0.0f32; nnz * self.heads];
        let mut out = Matrix::zeros(block.num_dst(), self.heads * f);

        for i in 0..block.num_dst() {
            let dst = block.dst_locals[i] as usize;
            let srcs = block.sources_of(i);
            let edge_base = block.src_offsets[i] as usize;
            for h in 0..self.heads {
                let a_l = self.attn_l.row(h);
                let a_r = self.attn_r.row(h);
                let s_l: f32 = a_l
                    .iter()
                    .zip(Self::head_slice(z.row(dst), h, f))
                    .map(|(a, b)| a * b)
                    .sum();
                // Attention logits with LeakyReLU.
                let mut scores: Vec<f32> = srcs
                    .iter()
                    .map(|&v| {
                        let s_r: f32 = a_r
                            .iter()
                            .zip(Self::head_slice(z.row(v as usize), h, f))
                            .map(|(a, b)| a * b)
                            .sum();
                        let e = s_l + s_r;
                        if e > 0.0 {
                            e
                        } else {
                            LEAKY_SLOPE * e
                        }
                    })
                    .collect();
                for (k, &v) in srcs.iter().enumerate() {
                    // Recompute pre-activation for the backward cache.
                    let s_r: f32 = a_r
                        .iter()
                        .zip(Self::head_slice(z.row(v as usize), h, f))
                        .map(|(a, b)| a * b)
                        .sum();
                    e_pre[(edge_base + k) * self.heads + h] = s_l + s_r;
                }
                softmax_slice(&mut scores);
                for (k, (&v, &alpha)) in srcs.iter().zip(&scores).enumerate() {
                    alphas[(edge_base + k) * self.heads + h] = alpha;
                    let z_v = Self::head_slice(z.row(v as usize), h, f);
                    let o = &mut out.row_mut(i)[h * f..(h + 1) * f];
                    for (oo, &zz) in o.iter_mut().zip(z_v) {
                        *oo += alpha * zz;
                    }
                }
            }
        }

        self.input = Some(input.clone());
        self.z = Some(z);
        self.alphas = alphas;
        self.e_pre = e_pre;
        self.out_pre = Some(out.clone());
        if self.activation {
            relu(&out)
        } else {
            out
        }
    }

    fn backward(&mut self, block: &Block, grad_out: &Matrix) -> Matrix {
        let input = self.input.as_ref().expect("forward before backward");
        let z = self.z.as_ref().expect("forward before backward");
        let out_pre = self.out_pre.as_ref().expect("forward before backward");
        let f = self.head_dim;
        let g = if self.activation {
            relu_backward(out_pre, grad_out)
        } else {
            grad_out.clone()
        };

        let mut d_z = Matrix::zeros(z.rows(), z.cols());
        for i in 0..block.num_dst() {
            let dst = block.dst_locals[i] as usize;
            let srcs = block.sources_of(i);
            let edge_base = block.src_offsets[i] as usize;
            for h in 0..self.heads {
                let g_head: Vec<f32> = Self::head_slice(g.row(i), h, f).to_vec();
                // dα_k = <g_head, z_vk>; dz_vk += α_k · g_head.
                let mut d_alpha = vec![0.0f32; srcs.len()];
                for (k, &v) in srcs.iter().enumerate() {
                    let alpha = self.alphas[(edge_base + k) * self.heads + h];
                    let z_v = Self::head_slice(z.row(v as usize), h, f);
                    let mut dot = 0.0;
                    let d_row = &mut d_z.row_mut(v as usize)[h * f..(h + 1) * f];
                    for ((dz, &gg), &zz) in d_row.iter_mut().zip(&g_head).zip(z_v) {
                        *dz += alpha * gg;
                        dot += gg * zz;
                    }
                    d_alpha[k] = dot;
                }
                // Softmax backward: de_k = α_k (dα_k − Σ_j α_j dα_j).
                let weighted: f32 = srcs
                    .iter()
                    .enumerate()
                    .map(|(k, _)| self.alphas[(edge_base + k) * self.heads + h] * d_alpha[k])
                    .sum();
                let mut ds_l_total = 0.0f32;
                for (k, &v) in srcs.iter().enumerate() {
                    let alpha = self.alphas[(edge_base + k) * self.heads + h];
                    let de = alpha * (d_alpha[k] - weighted);
                    let pre = self.e_pre[(edge_base + k) * self.heads + h];
                    let ds = if pre > 0.0 { de } else { LEAKY_SLOPE * de };
                    ds_l_total += ds;
                    // s_r = a_rᵀ z_v: propagate into z_v and a_r.
                    let z_v: Vec<f32> = Self::head_slice(z.row(v as usize), h, f).to_vec();
                    let a_r = self.attn_r.row(h).to_vec();
                    let d_row = &mut d_z.row_mut(v as usize)[h * f..(h + 1) * f];
                    for ((dz, &ar), _) in d_row.iter_mut().zip(&a_r).zip(&z_v) {
                        *dz += ds * ar;
                    }
                    let da_r = self.grad_attn_r.row_mut(h);
                    for (da, &zz) in da_r.iter_mut().zip(&z_v) {
                        *da += ds * zz;
                    }
                }
                // s_l = a_lᵀ z_dst: one total per destination/head.
                let z_dst: Vec<f32> = Self::head_slice(z.row(dst), h, f).to_vec();
                let a_l = self.attn_l.row(h).to_vec();
                let d_row = &mut d_z.row_mut(dst)[h * f..(h + 1) * f];
                for (dz, &al) in d_row.iter_mut().zip(&a_l) {
                    *dz += ds_l_total * al;
                }
                let da_l = self.grad_attn_l.row_mut(h);
                for (da, &zz) in da_l.iter_mut().zip(&z_dst) {
                    *da += ds_l_total * zz;
                }
            }
        }

        self.grad_weight += &input.matmul_transpose_a(&d_z);
        d_z.matmul_transpose_b(&self.weight)
    }

    fn apply_grads(&mut self, opt: &mut dyn Optimizer, slot_base: usize) -> usize {
        opt.step(
            slot_base,
            self.weight.as_mut_slice(),
            self.grad_weight.as_slice(),
        );
        opt.step(
            slot_base + 1,
            self.attn_l.as_mut_slice(),
            self.grad_attn_l.as_slice(),
        );
        opt.step(
            slot_base + 2,
            self.attn_r.as_mut_slice(),
            self.grad_attn_r.as_slice(),
        );
        self.grad_weight.scale(0.0);
        self.grad_attn_l.scale(0.0);
        self.grad_attn_r.scale(0.0);
        3
    }

    fn input_dim(&self) -> usize {
        self.weight.rows()
    }

    fn output_dim(&self) -> usize {
        self.heads * self.head_dim
    }

    fn params(&self) -> Vec<&Matrix> {
        vec![&self.weight, &self.attn_l, &self.attn_r]
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        vec![&mut self.weight, &mut self.attn_l, &mut self.attn_r]
    }

    fn param_count(&self) -> usize {
        self.weight.rows() * self.weight.cols() + 2 * self.heads * self.head_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::test_util::{check_input_gradient, input, tiny_block};
    use fastgl_graph::DeterministicRng;
    use fastgl_tensor::Sgd;

    fn layer(heads: usize, head_dim: usize, activation: bool) -> GatLayer {
        let mut rng = DeterministicRng::seed(23);
        GatLayer::new(3, heads, head_dim, activation, &mut rng)
    }

    #[test]
    fn forward_shape_multi_head() {
        let block = tiny_block();
        let x = input(4, 3, 1);
        let out = layer(4, 2, true).forward(&block, &x);
        assert_eq!((out.rows(), out.cols()), (2, 8));
    }

    #[test]
    fn attention_coefficients_sum_to_one() {
        let block = tiny_block();
        let x = input(4, 3, 2);
        let mut l = layer(2, 3, false);
        l.forward(&block, &x);
        for i in 0..block.num_dst() {
            let base = block.src_offsets[i] as usize;
            let n = block.sources_of(i).len();
            for h in 0..2 {
                let sum: f32 = (0..n).map(|k| l.alphas[(base + k) * 2 + h]).sum();
                assert!((sum - 1.0).abs() < 1e-5, "dst {i} head {h}: {sum}");
            }
        }
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let block = tiny_block();
        let x = input(4, 3, 3);
        let upstream = input(2, 4, 4);
        check_input_gradient(|| layer(2, 2, false), &block, &x, &upstream, 6e-3);
    }

    #[test]
    fn input_gradient_with_activation() {
        let block = tiny_block();
        let x = input(4, 3, 5);
        let upstream = input(2, 4, 6);
        check_input_gradient(|| layer(2, 2, true), &block, &x, &upstream, 6e-3);
    }

    #[test]
    fn attention_param_gradient_matches_finite_differences() {
        let block = tiny_block();
        let x = input(4, 3, 7);
        let upstream = input(2, 4, 8);
        let mut l = layer(2, 2, false);
        l.forward(&block, &x);
        l.backward(&block, &upstream);
        let analytic = l.grad_attn_l.clone();
        let eps = 1e-2;
        for i in 0..analytic.as_slice().len() {
            let mut lp = layer(2, 2, false);
            lp.attn_l.as_mut_slice()[i] += eps;
            let op = lp.forward(&block, &x);
            let mut lm = layer(2, 2, false);
            lm.attn_l.as_mut_slice()[i] -= eps;
            let om = lm.forward(&block, &x);
            let fd: f32 = op
                .as_slice()
                .iter()
                .zip(om.as_slice())
                .zip(upstream.as_slice())
                .map(|((p, m), u)| (p - m) * u)
                .sum::<f32>()
                / (2.0 * eps);
            let an = analytic.as_slice()[i];
            assert!((fd - an).abs() < 6e-3, "da_l[{i}]: fd {fd} vs {an}");
        }
    }

    #[test]
    fn apply_grads_uses_three_slots() {
        let block = tiny_block();
        let x = input(4, 3, 9);
        let upstream = input(2, 4, 10);
        let mut l = layer(2, 2, false);
        l.forward(&block, &x);
        l.backward(&block, &upstream);
        let mut opt = Sgd::new(0.05);
        assert_eq!(l.apply_grads(&mut opt, 0), 3);
        assert_eq!(l.grad_weight.norm(), 0.0);
    }

    #[test]
    fn paper_configuration_dims() {
        let mut rng = DeterministicRng::seed(1);
        let l = GatLayer::new(602, 8, 8, true, &mut rng);
        assert_eq!(l.output_dim(), 64);
        assert_eq!(l.param_count(), 602 * 64 + 2 * 64);
    }
}
