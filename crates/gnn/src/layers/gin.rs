//! Graph Isomorphism Network layer (Xu et al.).
//!
//! `H'_u = MLP( (1 + ε) · X_u + Σ_{v∈N(u)} X_v )` with a two-layer MLP.
//! The sum runs over the sampled sources (the sampler's self-loop already
//! contributes `X_u` once; ε scales an additional copy).

use super::{add_bias, column_sums, GnnLayer};
use crate::aggregate::{sum_aggregate, sum_aggregate_backward};
use fastgl_sample::Block;
use fastgl_tensor::init::{xavier_uniform, zeros_bias};
use fastgl_tensor::ops::{relu, relu_backward};
use fastgl_tensor::{Matrix, Optimizer};
use rand::RngCore;

/// One GIN layer with a 2-layer MLP update.
#[derive(Debug, Clone)]
pub struct GinLayer {
    w1: Matrix,
    b1: Matrix,
    w2: Matrix,
    b2: Matrix,
    epsilon: f32,
    activation: bool,
    // Caches.
    input: Option<Matrix>,
    agg: Option<Matrix>,
    hidden_pre: Option<Matrix>,
    out_pre: Option<Matrix>,
    // Gradients.
    grad_w1: Matrix,
    grad_b1: Matrix,
    grad_w2: Matrix,
    grad_b2: Matrix,
}

impl GinLayer {
    /// A layer mapping `d_in` to `d_out` through a 2-layer MLP with hidden
    /// width `mlp_hidden`, and fixed ε (the paper's models use ε = 0).
    pub fn new(
        d_in: usize,
        mlp_hidden: usize,
        d_out: usize,
        epsilon: f32,
        activation: bool,
        rng: &mut impl RngCore,
    ) -> Self {
        Self {
            w1: xavier_uniform(d_in, mlp_hidden, rng),
            b1: zeros_bias(mlp_hidden),
            w2: xavier_uniform(mlp_hidden, d_out, rng),
            b2: zeros_bias(d_out),
            epsilon,
            activation,
            input: None,
            agg: None,
            hidden_pre: None,
            out_pre: None,
            grad_w1: Matrix::zeros(d_in, mlp_hidden),
            grad_b1: Matrix::zeros(1, mlp_hidden),
            grad_w2: Matrix::zeros(mlp_hidden, d_out),
            grad_b2: Matrix::zeros(1, d_out),
        }
    }
}

impl GnnLayer for GinLayer {
    fn forward(&mut self, block: &Block, input: &Matrix) -> Matrix {
        let mut agg = sum_aggregate(block, input);
        if self.epsilon != 0.0 {
            for (i, &dst) in block.dst_locals.iter().enumerate() {
                let src_row: Vec<f32> = input.row(dst as usize).to_vec();
                let row = agg.row_mut(i);
                for (a, x) in row.iter_mut().zip(src_row) {
                    *a += self.epsilon * x;
                }
            }
        }
        let mut h1 = agg.matmul(&self.w1);
        add_bias(&mut h1, &self.b1);
        let r = relu(&h1);
        let mut out = r.matmul(&self.w2);
        add_bias(&mut out, &self.b2);
        self.input = Some(input.clone());
        self.agg = Some(agg);
        self.hidden_pre = Some(h1);
        self.out_pre = Some(out.clone());
        if self.activation {
            relu(&out)
        } else {
            out
        }
    }

    fn backward(&mut self, block: &Block, grad_out: &Matrix) -> Matrix {
        let input = self.input.as_ref().expect("forward before backward");
        let agg = self.agg.as_ref().expect("forward before backward");
        let h1 = self.hidden_pre.as_ref().expect("forward before backward");
        let out_pre = self.out_pre.as_ref().expect("forward before backward");

        let g_out = if self.activation {
            relu_backward(out_pre, grad_out)
        } else {
            grad_out.clone()
        };
        let r = relu(h1);
        self.grad_w2 += &r.matmul_transpose_a(&g_out);
        self.grad_b2 += &column_sums(&g_out);
        let d_r = g_out.matmul_transpose_b(&self.w2);
        let d_h1 = relu_backward(h1, &d_r);
        self.grad_w1 += &agg.matmul_transpose_a(&d_h1);
        self.grad_b1 += &column_sums(&d_h1);
        let d_agg = d_h1.matmul_transpose_b(&self.w1);

        let mut d_input = sum_aggregate_backward(block, &d_agg, input.rows());
        if self.epsilon != 0.0 {
            for (i, &dst) in block.dst_locals.iter().enumerate() {
                let g_row: Vec<f32> = d_agg.row(i).to_vec();
                let row = d_input.row_mut(dst as usize);
                for (o, g) in row.iter_mut().zip(g_row) {
                    *o += self.epsilon * g;
                }
            }
        }
        d_input
    }

    fn apply_grads(&mut self, opt: &mut dyn Optimizer, slot_base: usize) -> usize {
        opt.step(slot_base, self.w1.as_mut_slice(), self.grad_w1.as_slice());
        opt.step(
            slot_base + 1,
            self.b1.as_mut_slice(),
            self.grad_b1.as_slice(),
        );
        opt.step(
            slot_base + 2,
            self.w2.as_mut_slice(),
            self.grad_w2.as_slice(),
        );
        opt.step(
            slot_base + 3,
            self.b2.as_mut_slice(),
            self.grad_b2.as_slice(),
        );
        self.grad_w1.scale(0.0);
        self.grad_b1.scale(0.0);
        self.grad_w2.scale(0.0);
        self.grad_b2.scale(0.0);
        4
    }

    fn input_dim(&self) -> usize {
        self.w1.rows()
    }

    fn output_dim(&self) -> usize {
        self.w2.cols()
    }

    fn params(&self) -> Vec<&Matrix> {
        vec![&self.w1, &self.b1, &self.w2, &self.b2]
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        vec![&mut self.w1, &mut self.b1, &mut self.w2, &mut self.b2]
    }

    fn param_count(&self) -> usize {
        self.w1.rows() * self.w1.cols()
            + self.b1.cols()
            + self.w2.rows() * self.w2.cols()
            + self.b2.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::test_util::{check_input_gradient, input, tiny_block};
    use fastgl_graph::DeterministicRng;
    use fastgl_tensor::Sgd;

    fn layer(eps: f32, activation: bool) -> GinLayer {
        let mut rng = DeterministicRng::seed(17);
        GinLayer::new(3, 4, 2, eps, activation, &mut rng)
    }

    #[test]
    fn forward_shape() {
        let block = tiny_block();
        let x = input(4, 3, 1);
        let out = layer(0.0, true).forward(&block, &x);
        assert_eq!((out.rows(), out.cols()), (2, 2));
    }

    #[test]
    fn input_gradient_eps_zero() {
        let block = tiny_block();
        let x = input(4, 3, 2);
        let upstream = input(2, 2, 3);
        check_input_gradient(|| layer(0.0, false), &block, &x, &upstream, 3e-3);
    }

    #[test]
    fn input_gradient_with_epsilon_and_activation() {
        let block = tiny_block();
        let x = input(4, 3, 4);
        let upstream = input(2, 2, 5);
        check_input_gradient(|| layer(0.3, true), &block, &x, &upstream, 3e-3);
    }

    #[test]
    fn epsilon_changes_output() {
        let block = tiny_block();
        let x = input(4, 3, 6);
        let o1 = layer(0.0, false).forward(&block, &x);
        let o2 = layer(1.0, false).forward(&block, &x);
        assert_ne!(o1, o2);
    }

    #[test]
    fn apply_grads_uses_four_slots() {
        let block = tiny_block();
        let x = input(4, 3, 7);
        let upstream = input(2, 2, 8);
        let mut l = layer(0.0, false);
        l.forward(&block, &x);
        l.backward(&block, &upstream);
        let mut opt = Sgd::new(0.01);
        assert_eq!(l.apply_grads(&mut opt, 0), 4);
        assert_eq!(l.grad_w1.norm(), 0.0);
        assert_eq!(l.grad_w2.norm(), 0.0);
    }

    #[test]
    fn param_count() {
        let l = layer(0.0, true);
        assert_eq!(l.param_count(), 3 * 4 + 4 + 4 * 2 + 2);
        assert_eq!(l.input_dim(), 3);
        assert_eq!(l.output_dim(), 2);
    }
}
