//! Graph Convolutional Network layer (Kipf & Welling).
//!
//! `H' = σ( Â · X · W + b )` with mean aggregation over each destination's
//! sampled neighbours (including the self-loop the sampler adds), the
//! standard normalisation for sampled subgraphs.

use super::{add_bias, column_sums, GnnLayer};
use crate::aggregate::{mean_aggregate, mean_aggregate_backward};
use fastgl_sample::Block;
use fastgl_tensor::init::{xavier_uniform, zeros_bias};
use fastgl_tensor::ops::{relu, relu_backward};
use fastgl_tensor::{Matrix, Optimizer};
use rand::RngCore;

/// One GCN layer.
#[derive(Debug, Clone)]
pub struct GcnLayer {
    weight: Matrix,
    bias: Matrix,
    activation: bool,
    // Forward caches.
    input: Option<Matrix>,
    aggregated: Option<Matrix>,
    pre_activation: Option<Matrix>,
    // Accumulated gradients.
    grad_weight: Matrix,
    grad_bias: Matrix,
}

impl GcnLayer {
    /// A layer mapping `d_in` to `d_out` features; `activation` selects
    /// whether a ReLU follows (off for the output layer).
    pub fn new(d_in: usize, d_out: usize, activation: bool, rng: &mut impl RngCore) -> Self {
        Self {
            weight: xavier_uniform(d_in, d_out, rng),
            bias: zeros_bias(d_out),
            activation,
            input: None,
            aggregated: None,
            pre_activation: None,
            grad_weight: Matrix::zeros(d_in, d_out),
            grad_bias: Matrix::zeros(1, d_out),
        }
    }

    /// Immutable view of the weight matrix (for tests and inspection).
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }
}

impl GnnLayer for GcnLayer {
    fn forward(&mut self, block: &Block, input: &Matrix) -> Matrix {
        // Aggregate-then-update, as the paper's Eq. 1/2 formulates it:
        // h_u = Σ w_uv x_v over the raw (wide) features, then the dense
        // update. This is the order that makes the aggregation the
        // memory-bound stage the Memory-Aware kernel targets.
        let agg = mean_aggregate(block, input);
        let mut z = agg.matmul(&self.weight);
        add_bias(&mut z, &self.bias);
        self.input = Some(input.clone());
        self.aggregated = Some(agg);
        self.pre_activation = Some(z.clone());
        if self.activation {
            relu(&z)
        } else {
            z
        }
    }

    fn backward(&mut self, block: &Block, grad_out: &Matrix) -> Matrix {
        let input = self.input.as_ref().expect("forward before backward");
        let agg = self.aggregated.as_ref().expect("forward before backward");
        let pre = self
            .pre_activation
            .as_ref()
            .expect("forward before backward");
        let g = if self.activation {
            relu_backward(pre, grad_out)
        } else {
            grad_out.clone()
        };
        self.grad_weight += &agg.matmul_transpose_a(&g);
        self.grad_bias += &column_sums(&g);
        let d_agg = g.matmul_transpose_b(&self.weight);
        mean_aggregate_backward(block, &d_agg, input.rows())
    }

    fn apply_grads(&mut self, opt: &mut dyn Optimizer, slot_base: usize) -> usize {
        opt.step(
            slot_base,
            self.weight.as_mut_slice(),
            self.grad_weight.as_slice(),
        );
        opt.step(
            slot_base + 1,
            self.bias.as_mut_slice(),
            self.grad_bias.as_slice(),
        );
        self.grad_weight.scale(0.0);
        self.grad_bias.scale(0.0);
        2
    }

    fn input_dim(&self) -> usize {
        self.weight.rows()
    }

    fn output_dim(&self) -> usize {
        self.weight.cols()
    }

    fn params(&self) -> Vec<&Matrix> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn param_count(&self) -> usize {
        self.weight.rows() * self.weight.cols() + self.bias.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::test_util::{check_input_gradient, input, tiny_block};
    use fastgl_graph::DeterministicRng;
    use fastgl_tensor::Sgd;

    fn layer(activation: bool) -> GcnLayer {
        let mut rng = DeterministicRng::seed(42);
        GcnLayer::new(3, 2, activation, &mut rng)
    }

    #[test]
    fn forward_shape() {
        let block = tiny_block();
        let x = input(4, 3, 1);
        let mut l = layer(true);
        let out = l.forward(&block, &x);
        assert_eq!(out.rows(), 2);
        assert_eq!(out.cols(), 2);
    }

    #[test]
    fn relu_output_non_negative() {
        let block = tiny_block();
        let x = input(4, 3, 2);
        let mut l = layer(true);
        let out = l.forward(&block, &x);
        assert!(out.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn input_gradient_matches_finite_differences_linear() {
        let block = tiny_block();
        let x = input(4, 3, 3);
        let upstream = input(2, 2, 4);
        check_input_gradient(|| layer(false), &block, &x, &upstream, 2e-3);
    }

    #[test]
    fn input_gradient_matches_finite_differences_relu() {
        let block = tiny_block();
        let x = input(4, 3, 5);
        let upstream = input(2, 2, 6);
        check_input_gradient(|| layer(true), &block, &x, &upstream, 2e-3);
    }

    #[test]
    fn weight_gradient_matches_finite_differences() {
        let block = tiny_block();
        let x = input(4, 3, 7);
        let upstream = input(2, 2, 8);
        let mut l = layer(false);
        l.forward(&block, &x);
        l.backward(&block, &upstream);
        let analytic = l.grad_weight.clone();
        let eps = 1e-2;
        for i in 0..analytic.as_slice().len() {
            let mut lp = layer(false);
            lp.weight.as_mut_slice()[i] += eps;
            let op = lp.forward(&block, &x);
            let mut lm = layer(false);
            lm.weight.as_mut_slice()[i] -= eps;
            let om = lm.forward(&block, &x);
            let fd: f32 = op
                .as_slice()
                .iter()
                .zip(om.as_slice())
                .zip(upstream.as_slice())
                .map(|((p, m), u)| (p - m) * u)
                .sum::<f32>()
                / (2.0 * eps);
            let an = analytic.as_slice()[i];
            assert!((fd - an).abs() < 2e-3, "dW[{i}]: fd {fd} vs {an}");
        }
    }

    #[test]
    fn apply_grads_updates_and_clears() {
        let block = tiny_block();
        let x = input(4, 3, 9);
        let upstream = input(2, 2, 10);
        let mut l = layer(false);
        l.forward(&block, &x);
        l.backward(&block, &upstream);
        let w_before = l.weight.clone();
        let mut opt = Sgd::new(0.1);
        let slots = l.apply_grads(&mut opt, 0);
        assert_eq!(slots, 2);
        assert_ne!(l.weight, w_before);
        assert_eq!(l.grad_weight.norm(), 0.0);
    }

    #[test]
    fn dims_and_params() {
        let l = layer(true);
        assert_eq!(l.input_dim(), 3);
        assert_eq!(l.output_dim(), 2);
        assert_eq!(l.param_count(), 8);
    }
}
