//! GNN layers with hand-derived backward passes.

pub mod gat;
pub mod gcn;
pub mod gin;
pub mod sage;

use fastgl_sample::Block;
use fastgl_tensor::{Matrix, Optimizer};

/// A GNN layer operating on one subgraph block.
///
/// `forward` caches whatever `backward` needs; `backward` accumulates
/// parameter gradients internally and returns the gradient with respect to
/// the layer input; `apply_grads` consumes the accumulated gradients via an
/// optimiser and returns how many optimiser slots the layer used (so a
/// model can hand each layer a disjoint slot range).
pub trait GnnLayer {
    /// Computes the layer output over the block's destination nodes from
    /// `input`, whose rows cover the block's source ID space.
    fn forward(&mut self, block: &Block, input: &Matrix) -> Matrix;

    /// Backpropagates `grad_out` (rows = destinations), returning the
    /// gradient with respect to `input` and accumulating parameter grads.
    fn backward(&mut self, block: &Block, grad_out: &Matrix) -> Matrix;

    /// Applies and clears accumulated parameter gradients.
    fn apply_grads(&mut self, opt: &mut dyn Optimizer, slot_base: usize) -> usize;

    /// Input feature dimensionality.
    fn input_dim(&self) -> usize;

    /// Output feature dimensionality.
    fn output_dim(&self) -> usize;

    /// Total number of scalar parameters.
    fn param_count(&self) -> usize;

    /// The layer's parameter matrices, in a stable order.
    fn params(&self) -> Vec<&Matrix>;

    /// Mutable access to the same matrices, in the same order.
    fn params_mut(&mut self) -> Vec<&mut Matrix>;
}

/// Column-wise sums of a matrix as a `1 × cols` bias-gradient row.
pub(crate) fn column_sums(m: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(1, m.cols());
    for r in 0..m.rows() {
        let row = m.row(r);
        let acc = out.row_mut(0);
        for (a, &v) in acc.iter_mut().zip(row) {
            *a += v;
        }
    }
    out
}

/// Adds a bias row to every row of `m` in place.
pub(crate) fn add_bias(m: &mut Matrix, bias: &Matrix) {
    debug_assert_eq!(bias.rows(), 1);
    debug_assert_eq!(bias.cols(), m.cols());
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        for (x, &b) in row.iter_mut().zip(bias.row(0)) {
            *x += b;
        }
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use fastgl_sample::Block;

    /// A tiny block: 2 destinations over 4 source rows.
    /// dst 0 <- {0, 2, 3}, dst 1 <- {1, 3}.
    pub fn tiny_block() -> Block {
        Block {
            dst_locals: vec![0, 1],
            src_offsets: vec![0, 3, 5],
            src_locals: vec![0, 2, 3, 1, 3],
        }
    }

    /// Deterministic pseudo-random input of the given shape.
    pub fn input(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let data = (0..rows * cols)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// Checks `layer`'s input gradient against central finite differences
    /// of the scalar loss `<upstream, forward(input)>`.
    pub fn check_input_gradient<L: GnnLayer>(
        make_layer: impl Fn() -> L,
        block: &Block,
        input: &Matrix,
        upstream: &Matrix,
        tol: f32,
    ) {
        let mut layer = make_layer();
        layer.forward(block, input);
        let grad = layer.backward(block, upstream);
        let loss = |m: &Matrix| -> f32 {
            let mut l = make_layer();
            let out = l.forward(block, m);
            out.as_slice()
                .iter()
                .zip(upstream.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-2;
        for i in 0..input.as_slice().len() {
            let mut plus = input.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[i] -= eps;
            let fd = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            let an = grad.as_slice()[i];
            assert!(
                (fd - an).abs() < tol,
                "input grad[{i}]: finite-diff {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    fn column_sums_sum_columns() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(column_sums(&m).as_slice(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn add_bias_broadcasts() {
        let mut m = Matrix::zeros(2, 2);
        let b = Matrix::from_vec(1, 2, vec![1.0, -1.0]);
        add_bias(&mut m, &b);
        assert_eq!(m.as_slice(), &[1.0, -1.0, 1.0, -1.0]);
    }
}
