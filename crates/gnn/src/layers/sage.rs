//! GraphSAGE layer (Hamilton et al.) with the mean aggregator.
//!
//! `H'_u = σ( W_self · x_u + W_neigh · mean_{v∈N(u)} x_v + b )` — the
//! inductive workhorse that popularised sampling-based training. Not part
//! of the paper's benchmark trio, but the library exposes it because
//! sampled pipelines in the wild overwhelmingly run SAGE.

use super::{add_bias, column_sums, GnnLayer};
use crate::aggregate::{mean_aggregate, mean_aggregate_backward};
use fastgl_sample::Block;
use fastgl_tensor::init::{xavier_uniform, zeros_bias};
use fastgl_tensor::ops::{relu, relu_backward};
use fastgl_tensor::{Matrix, Optimizer};
use rand::RngCore;

/// One GraphSAGE-mean layer.
#[derive(Debug, Clone)]
pub struct SageLayer {
    w_self: Matrix,
    w_neigh: Matrix,
    bias: Matrix,
    activation: bool,
    // Caches.
    input: Option<Matrix>,
    self_rows: Option<Matrix>,
    aggregated: Option<Matrix>,
    pre_activation: Option<Matrix>,
    // Gradients.
    grad_w_self: Matrix,
    grad_w_neigh: Matrix,
    grad_bias: Matrix,
}

impl SageLayer {
    /// A layer mapping `d_in` to `d_out`; `activation` adds a ReLU.
    pub fn new(d_in: usize, d_out: usize, activation: bool, rng: &mut impl RngCore) -> Self {
        Self {
            w_self: xavier_uniform(d_in, d_out, rng),
            w_neigh: xavier_uniform(d_in, d_out, rng),
            bias: zeros_bias(d_out),
            activation,
            input: None,
            self_rows: None,
            aggregated: None,
            pre_activation: None,
            grad_w_self: Matrix::zeros(d_in, d_out),
            grad_w_neigh: Matrix::zeros(d_in, d_out),
            grad_bias: Matrix::zeros(1, d_out),
        }
    }

    fn gather_self_rows(block: &Block, input: &Matrix) -> Matrix {
        let indices: Vec<usize> = block.dst_locals.iter().map(|&d| d as usize).collect();
        input.gather_rows(&indices)
    }
}

impl GnnLayer for SageLayer {
    fn forward(&mut self, block: &Block, input: &Matrix) -> Matrix {
        let self_rows = Self::gather_self_rows(block, input);
        let agg = mean_aggregate(block, input);
        let mut z = self_rows.matmul(&self.w_self);
        z += &agg.matmul(&self.w_neigh);
        add_bias(&mut z, &self.bias);
        self.input = Some(input.clone());
        self.self_rows = Some(self_rows);
        self.aggregated = Some(agg);
        self.pre_activation = Some(z.clone());
        if self.activation {
            relu(&z)
        } else {
            z
        }
    }

    fn backward(&mut self, block: &Block, grad_out: &Matrix) -> Matrix {
        let input = self.input.as_ref().expect("forward before backward");
        let self_rows = self.self_rows.as_ref().expect("forward before backward");
        let agg = self.aggregated.as_ref().expect("forward before backward");
        let pre = self
            .pre_activation
            .as_ref()
            .expect("forward before backward");
        let g = if self.activation {
            relu_backward(pre, grad_out)
        } else {
            grad_out.clone()
        };
        self.grad_w_self += &self_rows.matmul_transpose_a(&g);
        self.grad_w_neigh += &agg.matmul_transpose_a(&g);
        self.grad_bias += &column_sums(&g);

        // Neighbour path scatters back through the mean aggregation.
        let d_agg = g.matmul_transpose_b(&self.w_neigh);
        let mut d_input = mean_aggregate_backward(block, &d_agg, input.rows());
        // Self path scatters to the destination rows directly.
        let d_self = g.matmul_transpose_b(&self.w_self);
        for (i, &dst) in block.dst_locals.iter().enumerate() {
            let row = d_input.row_mut(dst as usize);
            for (o, &v) in row.iter_mut().zip(d_self.row(i)) {
                *o += v;
            }
        }
        d_input
    }

    fn apply_grads(&mut self, opt: &mut dyn Optimizer, slot_base: usize) -> usize {
        opt.step(
            slot_base,
            self.w_self.as_mut_slice(),
            self.grad_w_self.as_slice(),
        );
        opt.step(
            slot_base + 1,
            self.w_neigh.as_mut_slice(),
            self.grad_w_neigh.as_slice(),
        );
        opt.step(
            slot_base + 2,
            self.bias.as_mut_slice(),
            self.grad_bias.as_slice(),
        );
        self.grad_w_self.scale(0.0);
        self.grad_w_neigh.scale(0.0);
        self.grad_bias.scale(0.0);
        3
    }

    fn input_dim(&self) -> usize {
        self.w_self.rows()
    }

    fn output_dim(&self) -> usize {
        self.w_self.cols()
    }

    fn params(&self) -> Vec<&Matrix> {
        vec![&self.w_self, &self.w_neigh, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        vec![&mut self.w_self, &mut self.w_neigh, &mut self.bias]
    }

    fn param_count(&self) -> usize {
        2 * self.w_self.rows() * self.w_self.cols() + self.bias.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::test_util::{check_input_gradient, input, tiny_block};
    use fastgl_graph::DeterministicRng;
    use fastgl_tensor::Sgd;

    fn layer(activation: bool) -> SageLayer {
        let mut rng = DeterministicRng::seed(31);
        SageLayer::new(3, 2, activation, &mut rng)
    }

    #[test]
    fn forward_shape() {
        let block = tiny_block();
        let x = input(4, 3, 1);
        let out = layer(true).forward(&block, &x);
        assert_eq!((out.rows(), out.cols()), (2, 2));
    }

    #[test]
    fn self_path_distinguishes_nodes_with_same_neighbours() {
        // Two destinations with identical neighbour sets but different own
        // features must produce different outputs (the point of W_self).
        let block = fastgl_sample::Block {
            dst_locals: vec![0, 1],
            src_offsets: vec![0, 2, 4],
            src_locals: vec![2, 3, 2, 3],
        };
        let x = input(4, 3, 2);
        let out = layer(false).forward(&block, &x);
        assert_ne!(out.row(0), out.row(1));
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let block = tiny_block();
        let x = input(4, 3, 3);
        let upstream = input(2, 2, 4);
        check_input_gradient(|| layer(false), &block, &x, &upstream, 3e-3);
    }

    #[test]
    fn input_gradient_with_activation() {
        let block = tiny_block();
        let x = input(4, 3, 5);
        let upstream = input(2, 2, 6);
        check_input_gradient(|| layer(true), &block, &x, &upstream, 3e-3);
    }

    #[test]
    fn weight_gradients_match_finite_differences() {
        let block = tiny_block();
        let x = input(4, 3, 7);
        let upstream = input(2, 2, 8);
        let mut l = layer(false);
        l.forward(&block, &x);
        l.backward(&block, &upstream);
        let eps = 1e-2;
        for (which, analytic) in [(0, l.grad_w_self.clone()), (1, l.grad_w_neigh.clone())] {
            for i in 0..analytic.as_slice().len() {
                let perturb = |delta: f32| {
                    let mut lp = layer(false);
                    let w = if which == 0 {
                        &mut lp.w_self
                    } else {
                        &mut lp.w_neigh
                    };
                    w.as_mut_slice()[i] += delta;
                    let out = lp.forward(&block, &x);
                    out.as_slice()
                        .iter()
                        .zip(upstream.as_slice())
                        .map(|(a, b)| a * b)
                        .sum::<f32>()
                };
                let fd = (perturb(eps) - perturb(-eps)) / (2.0 * eps);
                let an = analytic.as_slice()[i];
                assert!((fd - an).abs() < 3e-3, "w{which}[{i}]: fd {fd} vs {an}");
            }
        }
    }

    #[test]
    fn apply_grads_uses_three_slots_and_clears() {
        let block = tiny_block();
        let x = input(4, 3, 9);
        let upstream = input(2, 2, 10);
        let mut l = layer(false);
        l.forward(&block, &x);
        l.backward(&block, &upstream);
        let mut opt = Sgd::new(0.1);
        assert_eq!(l.apply_grads(&mut opt, 0), 3);
        assert_eq!(l.grad_w_self.norm(), 0.0);
        assert_eq!(l.grad_w_neigh.norm(), 0.0);
    }

    #[test]
    fn dims_and_params() {
        let l = layer(true);
        assert_eq!(l.input_dim(), 3);
        assert_eq!(l.output_dim(), 2);
        assert_eq!(l.param_count(), 2 * 6 + 2);
    }
}
