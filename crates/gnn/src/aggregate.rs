//! Sparse aggregation over subgraph blocks (the numeric counterpart of the
//! simulated aggregation kernel).
//!
//! These functions implement Eq. 1 of the paper and its backward (Eq. 5)
//! on the CPU: destination `u` of a block combines the rows of its sampled
//! sources. The *timing* of this kernel on the simulated GPU comes from
//! `fastgl-gpusim`; the numerics here are what actually trains.

use fastgl_sample::Block;
use fastgl_tensor::{parallel, Matrix};

/// Mean aggregation: `out[u] = (1/|N(u)|) Σ_{v∈N(u)} z[v]`.
///
/// Destinations with no sources produce a zero row (cannot happen when the
/// sampler adds self-loops).
///
/// # Panics
///
/// Panics if a source index exceeds `z.rows()`.
pub fn mean_aggregate(block: &Block, z: &Matrix) -> Matrix {
    weighted_aggregate(block, z, |deg| 1.0 / deg as f32)
}

/// Sum aggregation: `out[u] = Σ_{v∈N(u)} z[v]` (GIN's aggregator).
///
/// # Panics
///
/// Panics if a source index exceeds `z.rows()`.
pub fn sum_aggregate(block: &Block, z: &Matrix) -> Matrix {
    weighted_aggregate(block, z, |_| 1.0)
}

/// Minimum destination rows per aggregation worker; a chunk this size does
/// enough row-adds to amortise spawn/join even for skinny feature dims.
const AGGREGATE_GRAIN_DST: usize = 128;

fn weighted_aggregate(block: &Block, z: &Matrix, weight: impl Fn(usize) -> f32 + Sync) -> Matrix {
    let d = z.cols();
    let mut out = Matrix::zeros(block.num_dst(), d);
    if d == 0 {
        return out;
    }
    // Each destination row is an independent reduction over its sources, so
    // partitioning destinations across threads keeps the serial per-row
    // (source-ascending) accumulation order exactly.
    parallel::par_row_chunks_mut(
        out.as_mut_slice(),
        d,
        AGGREGATE_GRAIN_DST,
        |first_dst, chunk| {
            for (di, row) in chunk.chunks_mut(d).enumerate() {
                let srcs = block.sources_of(first_dst + di);
                if srcs.is_empty() {
                    continue;
                }
                let w = weight(srcs.len());
                for &v in srcs {
                    // Equal-length reslice lets the compiler elide the
                    // per-element bound checks and vectorise the add.
                    let src_row = z.row(v as usize);
                    assert_eq!(row.len(), src_row.len());
                    let src_row = &src_row[..row.len()];
                    for (o, &x) in row.iter_mut().zip(src_row) {
                        *o += w * x;
                    }
                }
            }
        },
    );
    out
}

/// Backward of [`mean_aggregate`]: scatters `grad[u] / |N(u)|` back to each
/// source row (Eq. 5 with the same weights).
///
/// `num_src_rows` is the number of rows of the forward input `z`.
///
/// # Panics
///
/// Panics if `grad.rows() != block.num_dst()` or a source index exceeds
/// `num_src_rows`.
pub fn mean_aggregate_backward(block: &Block, grad: &Matrix, num_src_rows: usize) -> Matrix {
    weighted_aggregate_backward(block, grad, num_src_rows, |deg| 1.0 / deg as f32)
}

/// Backward of [`sum_aggregate`].
///
/// # Panics
///
/// Panics if `grad.rows() != block.num_dst()` or a source index exceeds
/// `num_src_rows`.
pub fn sum_aggregate_backward(block: &Block, grad: &Matrix, num_src_rows: usize) -> Matrix {
    weighted_aggregate_backward(block, grad, num_src_rows, |_| 1.0)
}

fn weighted_aggregate_backward(
    block: &Block,
    grad: &Matrix,
    num_src_rows: usize,
    weight: impl Fn(usize) -> f32 + Sync,
) -> Matrix {
    assert_eq!(
        grad.rows(),
        block.num_dst(),
        "gradient rows must match destinations"
    );
    let d = grad.cols();
    let mut out = Matrix::zeros(num_src_rows, d);
    if d == 0 {
        for i in 0..block.num_dst() {
            for &v in block.sources_of(i) {
                assert!((v as usize) < num_src_rows, "source index out of range");
            }
        }
        return out;
    }
    // The scatter is parallelised by partitioning *source* rows: each worker
    // owns a contiguous range of output rows and scans the whole block CSR,
    // accumulating only the edges that land in its range. Compared with
    // per-worker partial buffers folded at the end, this trades P redundant
    // CSR reads (cheap: the index is a fraction of the feature data) for
    // zero write conflicts and zero temporary `num_src_rows × d` buffers —
    // and each output element keeps the serial destination-ascending
    // accumulation order, so the result is bit-identical at any thread
    // count.
    parallel::par_row_chunks_mut(
        out.as_mut_slice(),
        d,
        AGGREGATE_GRAIN_DST,
        |first_src, chunk| {
            let src_range = first_src..first_src + chunk.len() / d;
            for i in 0..block.num_dst() {
                let srcs = block.sources_of(i);
                if srcs.is_empty() {
                    continue;
                }
                let w = weight(srcs.len());
                let g_row = grad.row(i);
                for &v in srcs {
                    let v = v as usize;
                    assert!(v < num_src_rows, "source index out of range");
                    if !src_range.contains(&v) {
                        continue;
                    }
                    let dst_row = &mut chunk[(v - first_src) * d..(v - first_src + 1) * d];
                    assert_eq!(dst_row.len(), g_row.len());
                    let g_row = &g_row[..dst_row.len()];
                    for (o, &g) in dst_row.iter_mut().zip(g_row) {
                        *o += w * g;
                    }
                }
            }
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// dst 0 <- {0, 1}; dst 1 <- {2}.
    fn block() -> Block {
        Block {
            dst_locals: vec![0, 1],
            src_offsets: vec![0, 2, 3],
            src_locals: vec![0, 1, 2],
        }
    }

    fn z() -> Matrix {
        Matrix::from_vec(3, 2, vec![2.0, 4.0, 6.0, 8.0, 1.0, 3.0])
    }

    #[test]
    fn mean_aggregate_known_values() {
        let out = mean_aggregate(&block(), &z());
        assert_eq!(out.row(0), &[4.0, 6.0]); // mean of (2,4) and (6,8)
        assert_eq!(out.row(1), &[1.0, 3.0]);
    }

    #[test]
    fn sum_aggregate_known_values() {
        let out = sum_aggregate(&block(), &z());
        assert_eq!(out.row(0), &[8.0, 12.0]);
        assert_eq!(out.row(1), &[1.0, 3.0]);
    }

    #[test]
    fn mean_backward_matches_finite_differences() {
        let b = block();
        let base = z();
        let upstream = Matrix::from_vec(2, 2, vec![1.0, -2.0, 0.5, 3.0]);
        let grad = mean_aggregate_backward(&b, &upstream, 3);
        let eps = 1e-2;
        // loss = <upstream, mean_aggregate(z)>; check d loss / d z numerically.
        let loss = |m: &Matrix| -> f32 {
            let out = mean_aggregate(&b, m);
            out.as_slice()
                .iter()
                .zip(upstream.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        for i in 0..base.as_slice().len() {
            let mut plus = base.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = base.clone();
            minus.as_mut_slice()[i] -= eps;
            let fd = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            let an = grad.as_slice()[i];
            assert!((fd - an).abs() < 1e-3, "grad[{i}]: fd {fd} vs {an}");
        }
    }

    #[test]
    fn sum_backward_scatters_unweighted() {
        let b = block();
        let upstream = Matrix::from_vec(2, 2, vec![1.0, 1.0, 2.0, 2.0]);
        let grad = sum_aggregate_backward(&b, &upstream, 3);
        assert_eq!(grad.row(0), &[1.0, 1.0]);
        assert_eq!(grad.row(1), &[1.0, 1.0]);
        assert_eq!(grad.row(2), &[2.0, 2.0]);
    }

    #[test]
    fn shared_source_accumulates() {
        let b = Block {
            dst_locals: vec![0, 1],
            src_offsets: vec![0, 1, 2],
            src_locals: vec![0, 0],
        };
        let upstream = Matrix::from_vec(2, 1, vec![3.0, 4.0]);
        let grad = sum_aggregate_backward(&b, &upstream, 1);
        assert_eq!(grad.row(0), &[7.0]);
    }

    #[test]
    #[should_panic(expected = "must match destinations")]
    fn backward_validates_rows() {
        let _ = mean_aggregate_backward(&block(), &Matrix::zeros(5, 2), 3);
    }
}
