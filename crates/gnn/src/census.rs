//! Workload census: the per-layer event counts the simulator charges.
//!
//! The simulated GPU needs to know, for each GNN layer executed over a
//! sampled subgraph, how big the aggregation (sparse) and update (dense)
//! stages are. This module derives those numbers from the subgraph
//! structure and the model's layer dimensions — the *numeric* execution in
//! [`crate::model::GnnModel`] and the *timed* execution in the simulator
//! consume the same shapes.

use fastgl_sample::SampledSubgraph;

/// The workload of one GNN layer over one subgraph block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerWorkload {
    /// Destination nodes (rows produced).
    pub num_dst: u64,
    /// Source rows consumed (the previous layer's output, or the feature
    /// matrix for layer 0).
    pub num_src_rows: u64,
    /// Sampled edges aggregated.
    pub nnz: u64,
    /// Input feature dimensionality.
    pub d_in: usize,
    /// Output feature dimensionality.
    pub d_out: usize,
}

impl LayerWorkload {
    /// FLOPs of the dense update stage (`num_dst × d_in × d_out` GEMM;
    /// the update runs after aggregation, over destination rows).
    pub fn update_flops(&self) -> u64 {
        2 * self.num_dst * self.d_in as u64 * self.d_out as u64
    }

    /// FLOPs of the aggregation stage (one FMA per edge per input dim;
    /// Eq. 1 aggregates the raw features).
    pub fn aggregate_flops(&self) -> u64 {
        2 * self.nnz * self.d_in as u64
    }
}

/// Derives per-layer workloads for a model with `dims` layer dimensions
/// executed over `subgraph`.
///
/// # Panics
///
/// Panics if `dims.len() != subgraph.blocks.len()`.
pub fn census(subgraph: &SampledSubgraph, dims: &[(usize, usize)]) -> Vec<LayerWorkload> {
    assert_eq!(
        dims.len(),
        subgraph.blocks.len(),
        "census needs one (d_in, d_out) pair per block"
    );
    let mut out = Vec::with_capacity(dims.len());
    for (i, (block, &(d_in, d_out))) in subgraph.blocks.iter().zip(dims).enumerate() {
        let num_src_rows = if i == 0 {
            subgraph.num_nodes()
        } else {
            subgraph.blocks[i - 1].num_dst() as u64
        };
        out.push(LayerWorkload {
            num_dst: block.num_dst() as u64,
            num_src_rows,
            nnz: block.num_edges(),
            d_in,
            d_out,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgl_graph::generate::rmat::{self, RmatConfig};
    use fastgl_graph::{DeterministicRng, NodeId};
    use fastgl_sample::{FusedIdMap, NeighborSampler};

    fn subgraph() -> SampledSubgraph {
        let g = rmat::generate(&RmatConfig::social(400, 3_000), 2);
        let seeds: Vec<NodeId> = (0..8).map(|i| NodeId(i * 31 % 400)).collect();
        let mut rng = DeterministicRng::seed(1);
        NeighborSampler::new(vec![2, 3])
            .sample(&g, &seeds, &FusedIdMap::new(), &mut rng)
            .0
    }

    #[test]
    fn census_matches_blocks() {
        let sg = subgraph();
        let dims = [(32, 16), (16, 4)];
        let w = census(&sg, &dims);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].num_src_rows, sg.num_nodes());
        assert_eq!(w[1].num_src_rows, sg.blocks[0].num_dst() as u64);
        assert_eq!(w[0].nnz, sg.blocks[0].num_edges());
        assert_eq!(w[1].num_dst, 8);
        assert_eq!(w[0].d_in, 32);
        assert_eq!(w[1].d_out, 4);
    }

    #[test]
    fn flop_formulas() {
        let w = LayerWorkload {
            num_dst: 10,
            num_src_rows: 100,
            nnz: 50,
            d_in: 8,
            d_out: 4,
        };
        assert_eq!(w.update_flops(), 2 * 10 * 8 * 4);
        assert_eq!(w.aggregate_flops(), 2 * 50 * 8);
    }

    #[test]
    #[should_panic(expected = "one (d_in, d_out) pair per block")]
    fn dim_count_mismatch_panics() {
        let sg = subgraph();
        let _ = census(&sg, &[(8, 4)]);
    }
}
