//! GNN models for FastGL: GCN, GIN, and GAT over sampled subgraphs, with
//! hand-derived backward passes and a workload census for the simulator.
//!
//! The paper evaluates three representative models (§6.1): a 3-layer GCN
//! and GIN with hidden width 64, and a GAT with 8 heads of dimension 8.
//! This crate implements all three with real numerics — the convergence
//! experiment (Fig. 16) actually trains — while [`census()`](census::census) exposes the
//! per-layer shapes the simulated GPU charges for.

#![warn(missing_docs)]

pub mod aggregate;
pub mod census;
pub mod layers;
pub mod model;

pub use census::{census, LayerWorkload};
pub use layers::GnnLayer;
pub use model::{GnnModel, ModelConfig, ModelKind};
