//! Stacked GNN models matching the paper's benchmark configurations.

use crate::layers::gat::GatLayer;
use crate::layers::gcn::GcnLayer;
use crate::layers::gin::GinLayer;
use crate::layers::sage::SageLayer;
use crate::layers::GnnLayer;
use fastgl_sample::SampledSubgraph;
use fastgl_tensor::loss::{softmax_cross_entropy, LossOutput};
use fastgl_tensor::{Matrix, Optimizer};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// The three model families the paper evaluates (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Graph Convolutional Network (hidden width 64).
    Gcn,
    /// Graph Isomorphism Network (hidden width 64).
    Gin,
    /// Graph Attention Network (8 heads × 8 dims).
    Gat,
    /// GraphSAGE with the mean aggregator (not in the paper's benchmark
    /// trio, provided as a library extension).
    Sage,
}

impl ModelKind {
    /// All three models, in the paper's order.
    pub const ALL: [ModelKind; 3] = [ModelKind::Gcn, ModelKind::Gin, ModelKind::Gat];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Gcn => "GCN",
            ModelKind::Gin => "GIN",
            ModelKind::Gat => "GAT",
            ModelKind::Sage => "SAGE",
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Architecture description used to build a [`GnnModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Model family.
    pub kind: ModelKind,
    /// Input feature dimensionality.
    pub input_dim: usize,
    /// Hidden width (paper: 64 for GCN/GIN; 8 heads × 8 = 64 for GAT).
    pub hidden_dim: usize,
    /// Output classes.
    pub num_classes: usize,
    /// Number of layers (= sampling hops; paper default 3).
    pub num_layers: usize,
    /// GAT attention heads (ignored by GCN/GIN).
    pub heads: usize,
}

impl ModelConfig {
    /// The paper's configuration of `kind` for a dataset with `input_dim`
    /// features and `num_classes` classes (3 layers, hidden 64, 8 heads).
    pub fn paper(kind: ModelKind, input_dim: usize, num_classes: usize) -> Self {
        Self {
            kind,
            input_dim,
            hidden_dim: 64,
            num_classes,
            num_layers: 3,
            heads: 8,
        }
    }

    /// Same configuration with a different layer count (Fig. 14d).
    pub fn with_layers(mut self, num_layers: usize) -> Self {
        self.num_layers = num_layers;
        self
    }

    /// Same configuration with a different hidden width (Fig. 14c).
    pub fn with_hidden(mut self, hidden_dim: usize) -> Self {
        self.hidden_dim = hidden_dim;
        self
    }

    /// Per-layer `(input_dim, output_dim)` pairs, computed analytically —
    /// identical to what [`GnnModel::layer_dims`] reports after building.
    pub fn layer_dims(&self) -> Vec<(usize, usize)> {
        (0..self.num_layers)
            .map(|l| {
                let d_in = if l == 0 {
                    self.input_dim
                } else {
                    self.hidden_dim
                };
                let d_out = if l == self.num_layers - 1 {
                    self.num_classes
                } else {
                    self.hidden_dim
                };
                (d_in, d_out)
            })
            .collect()
    }

    /// Total scalar parameters, computed analytically without building the
    /// model (used by the simulator's memory and all-reduce accounting).
    pub fn param_count(&self) -> usize {
        self.layer_dims()
            .iter()
            .map(|&(d_in, d_out)| match self.kind {
                ModelKind::Gcn => d_in * d_out + d_out,
                ModelKind::Sage => 2 * d_in * d_out + d_out,
                ModelKind::Gin => {
                    d_in * self.hidden_dim + self.hidden_dim + self.hidden_dim * d_out + d_out
                }
                ModelKind::Gat => d_in * d_out + 2 * d_out,
            })
            .sum()
    }

    /// Bytes of FP32 parameters.
    pub fn param_bytes(&self) -> u64 {
        self.param_count() as u64 * 4
    }
}

/// A stack of GNN layers with training conveniences.
///
/// # Example
///
/// ```
/// use fastgl_gnn::{GnnModel, ModelConfig, ModelKind};
/// use fastgl_graph::DeterministicRng;
///
/// let config = ModelConfig::paper(ModelKind::Gcn, 602, 41); // Reddit shape
/// let mut rng = DeterministicRng::seed(1);
/// let model = GnnModel::new(&config, &mut rng);
/// assert_eq!(model.num_layers(), 3);
/// assert_eq!(model.layer_dims(), vec![(602, 64), (64, 64), (64, 41)]);
/// assert_eq!(model.param_count(), config.param_count());
/// ```
pub struct GnnModel {
    kind: ModelKind,
    layers: Vec<Box<dyn GnnLayer>>,
}

impl std::fmt::Debug for GnnModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GnnModel")
            .field("kind", &self.kind)
            .field("layers", &self.layers.len())
            .field("params", &self.param_count())
            .finish()
    }
}

impl GnnModel {
    /// Builds the model described by `config` with Xavier-initialised
    /// weights drawn from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `config.num_layers == 0` or any dimension is zero.
    pub fn new(config: &ModelConfig, rng: &mut impl RngCore) -> Self {
        assert!(config.num_layers > 0, "model needs at least one layer");
        assert!(
            config.input_dim > 0 && config.hidden_dim > 0 && config.num_classes > 0,
            "dimensions must be positive"
        );
        let mut layers: Vec<Box<dyn GnnLayer>> = Vec::with_capacity(config.num_layers);
        for l in 0..config.num_layers {
            let d_in = if l == 0 {
                config.input_dim
            } else {
                config.hidden_dim
            };
            let last = l == config.num_layers - 1;
            let d_out = if last {
                config.num_classes
            } else {
                config.hidden_dim
            };
            match config.kind {
                ModelKind::Gcn => layers.push(Box::new(GcnLayer::new(d_in, d_out, !last, rng))),
                ModelKind::Sage => layers.push(Box::new(SageLayer::new(d_in, d_out, !last, rng))),
                ModelKind::Gin => layers.push(Box::new(GinLayer::new(
                    d_in,
                    config.hidden_dim,
                    d_out,
                    0.0,
                    !last,
                    rng,
                ))),
                ModelKind::Gat => {
                    if last {
                        // Output layer: single head producing the logits.
                        layers.push(Box::new(GatLayer::new(
                            d_in,
                            1,
                            config.num_classes,
                            false,
                            rng,
                        )));
                    } else {
                        let heads = config.heads.max(1);
                        let head_dim = (config.hidden_dim / heads).max(1);
                        layers.push(Box::new(GatLayer::new(d_in, heads, head_dim, true, rng)));
                    }
                }
            }
        }
        Self {
            kind: config.kind,
            layers,
        }
    }

    /// Model family.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Per-layer `(input_dim, output_dim)` pairs, input side first.
    pub fn layer_dims(&self) -> Vec<(usize, usize)> {
        self.layers
            .iter()
            .map(|l| (l.input_dim(), l.output_dim()))
            .collect()
    }

    /// Total scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Bytes of FP32 parameters (gradient all-reduce volume).
    pub fn param_bytes(&self) -> u64 {
        self.param_count() as u64 * 4
    }

    /// Forward pass: `features` rows cover the subgraph's full node list;
    /// returns logits over the seed nodes.
    ///
    /// # Panics
    ///
    /// Panics if the subgraph's block count differs from the layer count or
    /// the feature matrix does not cover the subgraph.
    pub fn forward(&mut self, subgraph: &SampledSubgraph, features: &Matrix) -> Matrix {
        assert_eq!(
            subgraph.blocks.len(),
            self.layers.len(),
            "subgraph has {} blocks but the model has {} layers",
            subgraph.blocks.len(),
            self.layers.len()
        );
        assert_eq!(
            features.rows() as u64,
            subgraph.num_nodes(),
            "feature rows must cover the subgraph"
        );
        let mut h = features.clone();
        for (layer, block) in self.layers.iter_mut().zip(&subgraph.blocks) {
            h = layer.forward(block, &h);
        }
        h
    }

    /// Backward pass from the loss gradient over seed logits; accumulates
    /// parameter gradients in every layer.
    pub fn backward(&mut self, subgraph: &SampledSubgraph, grad_logits: &Matrix) {
        let mut g = grad_logits.clone();
        for (layer, block) in self.layers.iter_mut().zip(&subgraph.blocks).rev() {
            g = layer.backward(block, &g);
        }
    }

    /// Applies all accumulated gradients through `opt`.
    pub fn apply_grads(&mut self, opt: &mut dyn Optimizer) {
        let mut slot = 0;
        for layer in &mut self.layers {
            slot += layer.apply_grads(opt, slot);
        }
    }

    /// Serialises every parameter into one flat `f32` vector — a minimal
    /// checkpoint format (pair it with the same [`ModelConfig`] to restore).
    pub fn state(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            for p in layer.params() {
                out.extend_from_slice(p.as_slice());
            }
        }
        out
    }

    /// Restores parameters from a flat vector produced by
    /// [`GnnModel::state`] on a model of the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a message if `state` does not hold exactly
    /// [`GnnModel::param_count`] values; the model is unchanged on error.
    pub fn load_state(&mut self, state: &[f32]) -> Result<(), String> {
        if state.len() != self.param_count() {
            return Err(format!(
                "checkpoint holds {} values but the model has {} parameters",
                state.len(),
                self.param_count()
            ));
        }
        let mut cursor = 0;
        for layer in &mut self.layers {
            for p in layer.params_mut() {
                let n = p.as_slice().len();
                p.as_mut_slice().copy_from_slice(&state[cursor..cursor + n]);
                cursor += n;
            }
        }
        Ok(())
    }

    /// Forward-only evaluation on a mini-batch: returns `(loss, accuracy)`
    /// over the seeds without touching gradients or parameters.
    pub fn evaluate(
        &mut self,
        subgraph: &SampledSubgraph,
        features: &Matrix,
        labels: &[u32],
    ) -> (f32, f64) {
        let logits = self.forward(subgraph, features);
        let loss = softmax_cross_entropy(&logits, labels).loss;
        let acc = fastgl_tensor::loss::accuracy(&logits, labels);
        (loss, acc)
    }

    /// One full training step on a mini-batch: forward, loss, backward,
    /// update. Returns the loss value.
    pub fn train_step(
        &mut self,
        subgraph: &SampledSubgraph,
        features: &Matrix,
        labels: &[u32],
        opt: &mut dyn Optimizer,
    ) -> f32 {
        let logits = self.forward(subgraph, features);
        let LossOutput { loss, grad } = softmax_cross_entropy(&logits, labels);
        self.backward(subgraph, &grad);
        self.apply_grads(opt);
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgl_graph::generate::rmat::{self, RmatConfig};
    use fastgl_graph::{DeterministicRng, NodeId};
    use fastgl_sample::{FusedIdMap, NeighborSampler};
    use fastgl_tensor::Adam;

    fn subgraph(layers: usize) -> SampledSubgraph {
        let g = rmat::generate(&RmatConfig::social(500, 4_000), 1);
        let sampler = NeighborSampler::new(vec![3; layers]);
        let seeds: Vec<NodeId> = (0..16).map(|i| NodeId(i * 29 % 500)).collect();
        let mut rng = DeterministicRng::seed(2);
        sampler.sample(&g, &seeds, &FusedIdMap::new(), &mut rng).0
    }

    fn features(sg: &SampledSubgraph, dim: usize) -> Matrix {
        crate::layers::test_util::input(sg.num_nodes() as usize, dim, 3)
    }

    #[test]
    fn forward_produces_seed_logits_for_all_kinds() {
        for kind in ModelKind::ALL {
            let cfg = ModelConfig {
                kind,
                input_dim: 12,
                hidden_dim: 16,
                num_classes: 5,
                num_layers: 2,
                heads: 4,
            };
            let mut rng = DeterministicRng::seed(4);
            let mut model = GnnModel::new(&cfg, &mut rng);
            let sg = subgraph(2);
            let x = features(&sg, 12);
            let logits = model.forward(&sg, &x);
            assert_eq!(logits.rows(), 16, "{kind}");
            assert_eq!(logits.cols(), 5, "{kind}");
        }
    }

    #[test]
    fn training_reduces_loss_on_fixed_batch() {
        for kind in ModelKind::ALL {
            let cfg = ModelConfig {
                kind,
                input_dim: 8,
                hidden_dim: 16,
                num_classes: 3,
                num_layers: 2,
                heads: 2,
            };
            let mut rng = DeterministicRng::seed(5);
            let mut model = GnnModel::new(&cfg, &mut rng);
            let sg = subgraph(2);
            let x = features(&sg, 8);
            let labels: Vec<u32> = (0..16).map(|i| (i % 3) as u32).collect();
            let mut opt = Adam::new(0.01);
            let first = model.train_step(&sg, &x, &labels, &mut opt);
            let mut last = first;
            for _ in 0..80 {
                opt.next_iteration();
                last = model.train_step(&sg, &x, &labels, &mut opt);
            }
            assert!(
                last < first * 0.7,
                "{kind}: loss did not drop ({first} -> {last})"
            );
        }
    }

    #[test]
    fn layer_dims_follow_config() {
        let cfg = ModelConfig::paper(ModelKind::Gcn, 602, 41);
        let mut rng = DeterministicRng::seed(6);
        let model = GnnModel::new(&cfg, &mut rng);
        assert_eq!(model.layer_dims(), vec![(602, 64), (64, 64), (64, 41)]);
        assert!(model.param_count() > 602 * 64);
        assert_eq!(model.param_bytes(), model.param_count() as u64 * 4);
    }

    #[test]
    fn gat_paper_config_has_64_wide_hidden() {
        let cfg = ModelConfig::paper(ModelKind::Gat, 100, 10);
        let mut rng = DeterministicRng::seed(7);
        let model = GnnModel::new(&cfg, &mut rng);
        let dims = model.layer_dims();
        assert_eq!(dims[0], (100, 64));
        assert_eq!(dims[1], (64, 64));
        assert_eq!(dims[2], (64, 10));
    }

    #[test]
    #[should_panic(expected = "blocks but the model")]
    fn block_layer_mismatch_panics() {
        let cfg = ModelConfig::paper(ModelKind::Gcn, 8, 3);
        let mut rng = DeterministicRng::seed(8);
        let mut model = GnnModel::new(&cfg, &mut rng); // 3 layers
        let sg = subgraph(2); // 2 blocks
        let x = features(&sg, 8);
        let _ = model.forward(&sg, &x);
    }

    #[test]
    fn sage_model_trains() {
        let cfg = ModelConfig {
            kind: ModelKind::Sage,
            input_dim: 8,
            hidden_dim: 16,
            num_classes: 3,
            num_layers: 2,
            heads: 1,
        };
        let mut rng = DeterministicRng::seed(12);
        let mut model = GnnModel::new(&cfg, &mut rng);
        let sg = subgraph(2);
        let x = features(&sg, 8);
        let labels: Vec<u32> = (0..16).map(|i| (i % 3) as u32).collect();
        let mut opt = Adam::new(0.01);
        let first = model.train_step(&sg, &x, &labels, &mut opt);
        let mut last = first;
        for _ in 0..60 {
            opt.next_iteration();
            last = model.train_step(&sg, &x, &labels, &mut opt);
        }
        assert!(last < first * 0.7, "SAGE loss {first} -> {last}");
        assert_eq!(cfg.param_count(), model.param_count());
    }

    #[test]
    fn analytic_param_count_matches_built_model() {
        for kind in [
            ModelKind::Gcn,
            ModelKind::Gin,
            ModelKind::Gat,
            ModelKind::Sage,
        ] {
            let cfg = ModelConfig::paper(kind, 50, 7);
            let mut rng = DeterministicRng::seed(11);
            let model = GnnModel::new(&cfg, &mut rng);
            assert_eq!(cfg.param_count(), model.param_count(), "{kind}");
            assert_eq!(cfg.layer_dims(), model.layer_dims(), "{kind}");
        }
    }

    #[test]
    fn checkpoint_round_trip_restores_outputs() {
        let cfg = ModelConfig::paper(ModelKind::Gcn, 8, 3).with_layers(2);
        let mut r1 = DeterministicRng::seed(21);
        let mut r2 = DeterministicRng::seed(22);
        let mut trained = GnnModel::new(&cfg, &mut r1);
        let mut fresh = GnnModel::new(&cfg, &mut r2);
        let sg = subgraph(2);
        let x = features(&sg, 8);
        // Perturb `trained` so the two models differ, then transfer state.
        let labels: Vec<u32> = (0..16).map(|i| (i % 3) as u32).collect();
        let mut opt = Adam::new(0.05);
        trained.train_step(&sg, &x, &labels, &mut opt);
        let before = trained.forward(&sg, &x);
        assert_ne!(before, fresh.forward(&sg, &x));
        let state = trained.state();
        assert_eq!(state.len(), cfg.param_count());
        fresh.load_state(&state).unwrap();
        assert_eq!(before, fresh.forward(&sg, &x));
    }

    #[test]
    fn load_state_rejects_wrong_length() {
        let cfg = ModelConfig::paper(ModelKind::Gin, 8, 3);
        let mut rng = DeterministicRng::seed(23);
        let mut model = GnnModel::new(&cfg, &mut rng);
        let err = model.load_state(&[0.0; 3]).unwrap_err();
        assert!(err.contains("3 values"));
    }

    #[test]
    fn evaluate_reports_loss_and_accuracy_without_updating() {
        let cfg = ModelConfig::paper(ModelKind::Gcn, 8, 3).with_layers(2);
        let mut rng = DeterministicRng::seed(24);
        let mut model = GnnModel::new(&cfg, &mut rng);
        let sg = subgraph(2);
        let x = features(&sg, 8);
        let labels: Vec<u32> = (0..16).map(|i| (i % 3) as u32).collect();
        let state = model.state();
        let (loss, acc) = model.evaluate(&sg, &x, &labels);
        assert!(loss.is_finite() && loss > 0.0);
        assert!((0.0..=1.0).contains(&acc));
        assert_eq!(model.state(), state, "evaluation must not mutate params");
    }

    #[test]
    fn deterministic_initialisation() {
        let cfg = ModelConfig::paper(ModelKind::Gin, 16, 4);
        let mut r1 = DeterministicRng::seed(9);
        let mut r2 = DeterministicRng::seed(9);
        let mut m1 = GnnModel::new(&cfg, &mut r1);
        let mut m2 = GnnModel::new(&cfg, &mut r2);
        let sg = subgraph(3);
        let x = features(&sg, 16);
        assert_eq!(m1.forward(&sg, &x), m2.forward(&sg, &x));
    }
}
