//! Serial vs parallel scaling of the execution-backend hot paths.
//!
//! Runs the dominant training kernels (dense matmul, sparse mean
//! aggregation, flat feature gather) at three sizes, once with the backend
//! pinned to one thread and once with all available cores, so a multi-core
//! runner shows the speedup directly in the report. The outputs are
//! bit-identical between the two modes by construction (see
//! `fastgl_tensor::parallel`), which the bench asserts once per size.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fastgl_gnn::aggregate::mean_aggregate;
use fastgl_sample::Block;
use fastgl_tensor::{parallel, Matrix};

fn filled(rows: usize, cols: usize, mut x: u64) -> Matrix {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect(),
    )
}

/// A block where each of `num_dst` destinations aggregates `deg` sources
/// spread over `num_src` rows.
fn fanout_block(num_dst: usize, num_src: usize, deg: usize) -> Block {
    let mut src_offsets = Vec::with_capacity(num_dst + 1);
    let mut src_locals = Vec::with_capacity(num_dst * deg);
    src_offsets.push(0u64);
    for i in 0..num_dst {
        for e in 0..deg {
            src_locals.push(((i * 31 + e * 977) % num_src) as u64);
        }
        src_offsets.push(src_locals.len() as u64);
    }
    Block {
        dst_locals: (0..num_dst as u64).collect(),
        src_offsets,
        src_locals,
    }
}

/// The two backend modes under comparison.
fn modes() -> [(&'static str, usize); 2] {
    let all = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    [("serial", 1), ("parallel", all)]
}

fn bench_matmul_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling/matmul");
    group.sample_size(10);
    for &(m, k, n) in &[
        (512usize, 64usize, 64usize),
        (2_048, 128, 64),
        (8_192, 128, 128),
    ] {
        let a = filled(m, k, 1);
        let b = filled(k, n, 2);
        let reference = {
            parallel::set_num_threads(1);
            a.matmul(&b)
        };
        group.throughput(Throughput::Elements((2 * m * k * n) as u64));
        for (label, threads) in modes() {
            parallel::set_num_threads(threads);
            assert_eq!(a.matmul(&b), reference, "backend must be bit-identical");
            group.bench_with_input(
                BenchmarkId::new(label, format!("{m}x{k}x{n}")),
                &(&a, &b),
                |bch, (a, b)| {
                    bch.iter(|| black_box(a.matmul(b)));
                },
            );
        }
        parallel::set_num_threads(0);
    }
    group.finish();
}

fn bench_aggregate_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling/mean_aggregate");
    group.sample_size(10);
    for &(num_dst, deg, dim) in &[
        (1_000usize, 8usize, 64usize),
        (8_000, 16, 64),
        (8_000, 16, 256),
    ] {
        let num_src = num_dst * 4;
        let block = fanout_block(num_dst, num_src, deg);
        let z = filled(num_src, dim, 3);
        let reference = {
            parallel::set_num_threads(1);
            mean_aggregate(&block, &z)
        };
        group.throughput(Throughput::Elements((num_dst * deg * dim) as u64));
        for (label, threads) in modes() {
            parallel::set_num_threads(threads);
            assert_eq!(mean_aggregate(&block, &z), reference);
            group.bench_with_input(
                BenchmarkId::new(label, format!("{num_dst}dst_deg{deg}_d{dim}")),
                &(&block, &z),
                |bch, (block, z)| {
                    bch.iter(|| black_box(mean_aggregate(block, z)));
                },
            );
        }
        parallel::set_num_threads(0);
    }
    group.finish();
}

fn bench_gather_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling/gather");
    group.sample_size(10);
    for &(num_rows, dim, picks) in &[
        (50_000usize, 128usize, 10_000usize),
        (200_000, 128, 50_000),
        (200_000, 602, 50_000),
    ] {
        let store = filled(num_rows, dim, 4);
        let indices: Vec<usize> = (0..picks).map(|i| (i * 48_271) % num_rows).collect();
        group.throughput(Throughput::Bytes((picks * dim * 4) as u64));
        for (label, threads) in modes() {
            parallel::set_num_threads(threads);
            group.bench_with_input(
                BenchmarkId::new(label, format!("{picks}of{num_rows}_d{dim}")),
                &(&store, &indices),
                |bch, (store, indices)| {
                    bch.iter(|| {
                        black_box(Matrix::gather_flat(
                            store.as_slice(),
                            dim,
                            num_rows,
                            indices,
                        ))
                    });
                },
            );
        }
        parallel::set_num_threads(0);
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul_scaling,
    bench_aggregate_scaling,
    bench_gather_scaling
);
criterion_main!(benches);
