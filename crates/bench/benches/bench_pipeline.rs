//! End-to-end pipeline benchmark: one simulated epoch per system on a
//! small Products stand-in (the harness-side cost of regenerating Fig. 9).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fastgl_baselines::SystemKind;
use fastgl_core::FastGlConfig;
use fastgl_graph::Dataset;

fn bench_epoch(c: &mut Criterion) {
    let data = Dataset::Products.generate_scaled(1.0 / 1024.0, 7);
    let cfg = FastGlConfig::default()
        .with_batch_size(64)
        .with_fanouts(vec![5, 10]);
    let mut group = c.benchmark_group("epoch_simulation");
    group.sample_size(10);
    for kind in [
        SystemKind::Dgl,
        SystemKind::GnnLab,
        SystemKind::GnnAdvisor,
        SystemKind::FastGl,
    ] {
        group.bench_with_input(
            BenchmarkId::new("system", kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut sys = kind.build(cfg.clone());
                    black_box(sys.run_epoch(&data, 0))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_epoch);
criterion_main!(benches);
