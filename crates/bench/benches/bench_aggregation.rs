//! Microbenchmarks of the aggregation: the simulator's trace replay and
//! the numeric CPU aggregation kernels.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fastgl_gnn::aggregate::{mean_aggregate, sum_aggregate};
use fastgl_gpusim::{AggregationKernel, CostParams, DeviceSpec, SubgraphLayerTrace};
use fastgl_sample::Block;
use fastgl_tensor::Matrix;

/// A block with `t` targets of degree `deg` over `s` sources.
fn block(t: u64, deg: u64, s: u64) -> Block {
    let mut x = 0xBEEF_CAFE_1234_5678u64;
    let mut src_offsets = vec![0u64];
    let mut src_locals = Vec::new();
    for _ in 0..t {
        for _ in 0..deg {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            src_locals.push((x >> 33) % s);
        }
        src_offsets.push(src_locals.len() as u64);
    }
    Block {
        dst_locals: (0..t).collect(),
        src_offsets,
        src_locals,
    }
}

fn bench_trace_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_aggregation");
    group.sample_size(10);
    let b = block(8_000, 12, 60_000);
    let kernel = AggregationKernel::new(DeviceSpec::rtx3090(), CostParams::default());
    for &dim in &[64usize, 256] {
        let trace = SubgraphLayerTrace {
            offsets: &b.src_offsets,
            sources: &b.src_locals,
            num_sources: 60_000,
            feature_dim: dim,
        };
        group.bench_with_input(BenchmarkId::new("naive_trace", dim), &trace, |bch, t| {
            bch.iter(|| black_box(kernel.naive_cost(t)));
        });
        group.bench_with_input(BenchmarkId::new("memory_aware", dim), &trace, |bch, t| {
            bch.iter(|| black_box(kernel.memory_aware_cost(t)));
        });
    }
    group.finish();
}

fn bench_numeric_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("numeric_aggregation");
    group.sample_size(10);
    let b = block(4_000, 10, 20_000);
    let z = Matrix::zeros(20_000, 64);
    group.bench_function("mean_4k_dst_64d", |bch| {
        bch.iter(|| black_box(mean_aggregate(&b, &z)));
    });
    group.bench_function("sum_4k_dst_64d", |bch| {
        bch.iter(|| black_box(sum_aggregate(&b, &z)));
    });
    group.finish();
}

criterion_group!(benches, bench_trace_replay, bench_numeric_aggregation);
criterion_main!(benches);
