//! Microbenchmarks of the Match-Reorder building blocks (paper §4.1):
//! set intersection (Match), match-degree matrices, and Algorithm 1.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fastgl_core::match_reorder::{greedy_reorder, match_load_set};
use fastgl_graph::NodeId;
use fastgl_sample::overlap::match_degree_matrix;

/// A sorted ID set of `n` elements with `overlap` fraction shared with the
/// canonical base set.
fn node_set(n: usize, overlap: f64, salt: u64) -> Vec<NodeId> {
    let shared = (n as f64 * overlap) as u64;
    let mut ids: Vec<NodeId> = (0..shared).map(|i| NodeId(i * 2)).collect();
    ids.extend((0..(n as u64 - shared)).map(|i| NodeId(1_000_000 + salt * 100_000 + i * 2 + 1)));
    ids.sort_unstable();
    ids
}

fn bench_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("match");
    for &n in &[10_000usize, 100_000] {
        let incoming = node_set(n, 0.7, 1);
        let resident = node_set(n, 0.7, 2);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("match_load_set", n),
            &(incoming, resident),
            |b, (inc, res)| {
                b.iter(|| black_box(match_load_set(inc, res)));
            },
        );
    }
    group.finish();
}

fn bench_reorder(c: &mut Criterion) {
    let mut group = c.benchmark_group("reorder");
    group.sample_size(20);
    for &window in &[8usize, 32] {
        let sets: Vec<Vec<NodeId>> = (0..window)
            .map(|i| node_set(20_000, 0.6, i as u64))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("matrix_plus_greedy", window),
            &sets,
            |b, sets| {
                b.iter(|| {
                    let m = match_degree_matrix(sets);
                    black_box(greedy_reorder(&m))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_match, bench_reorder);
criterion_main!(benches);
