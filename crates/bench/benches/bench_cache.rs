//! Microbenchmarks of the cache simulator and the static feature cache.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fastgl_core::FeatureCache;
use fastgl_gpusim::{Cache, CacheConfig};
use fastgl_graph::generate::rmat::{self, RmatConfig};
use fastgl_graph::NodeId;

fn bench_cache_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_simulator");
    let n = 200_000u64;
    let addrs: Vec<u64> = {
        let mut x = 99u64;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 20) % (64 << 20)
            })
            .collect()
    };
    group.throughput(Throughput::Elements(n));
    for &capacity in &[(128u64 << 10), (6u64 << 20)] {
        group.bench_with_input(
            BenchmarkId::new("random_access", capacity),
            &addrs,
            |b, addrs| {
                b.iter(|| {
                    let mut cache = Cache::new(CacheConfig::with_capacity(capacity));
                    let mut hits = 0u64;
                    for &a in addrs {
                        hits += cache.access(a) as u64;
                    }
                    black_box(hits)
                });
            },
        );
    }
    group.finish();
}

fn bench_feature_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("feature_cache");
    let g = rmat::generate(&RmatConfig::social(100_000, 1_000_000), 5);
    let cache = FeatureCache::degree_ordered(&g, 20_000, 400);
    let load: Vec<NodeId> = (0..50_000).map(|i| NodeId(i * 2)).collect();
    group.throughput(Throughput::Elements(load.len() as u64));
    group.bench_function("partition_50k", |b| {
        b.iter(|| black_box(cache.partition(&load)));
    });
    group.sample_size(10);
    group.bench_function("build_degree_ordered_20k", |b| {
        b.iter(|| black_box(FeatureCache::degree_ordered(&g, 20_000, 400)));
    });
    group.finish();
}

criterion_group!(benches, bench_cache_sim, bench_feature_cache);
criterion_main!(benches);
