//! Microbenchmarks of the dense kernels backing the GNN update phase.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fastgl_tensor::loss::softmax_cross_entropy;
use fastgl_tensor::ops::relu;
use fastgl_tensor::Matrix;

fn filled(rows: usize, cols: usize) -> Matrix {
    let mut x = 1u64;
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect(),
    )
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for &(m, k, n) in &[(1_000usize, 200usize, 64usize), (4_000, 64, 64)] {
        let a = filled(m, k);
        let b = filled(k, n);
        group.throughput(Throughput::Elements((2 * m * k * n) as u64));
        group.bench_with_input(
            BenchmarkId::new("gemm", format!("{m}x{k}x{n}")),
            &(a, b),
            |bch, (a, b)| {
                bch.iter(|| black_box(a.matmul(b)));
            },
        );
    }
    group.finish();
}

fn bench_backward_gemms(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_transposed");
    group.sample_size(10);
    let x = filled(2_000, 128);
    let dy = filled(2_000, 64);
    let w = filled(128, 64);
    group.bench_function("dw_xT_dy", |b| {
        b.iter(|| black_box(x.matmul_transpose_a(&dy)));
    });
    group.bench_function("dx_dy_wT", |b| {
        b.iter(|| black_box(dy.matmul_transpose_b(&w)));
    });
    group.finish();
}

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("elementwise");
    let x = filled(4_000, 64);
    group.bench_function("relu_4kx64", |b| {
        b.iter(|| black_box(relu(&x)));
    });
    let logits = filled(4_000, 47);
    let labels: Vec<u32> = (0..4_000).map(|i| (i % 47) as u32).collect();
    group.bench_function("softmax_xent_4kx47", |b| {
        b.iter(|| black_box(softmax_cross_entropy(&logits, &labels)));
    });
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_backward_gemms, bench_ops);
criterion_main!(benches);
