//! Microbenchmark of the ID-map strategies (paper Table 8's kernel).
//!
//! Compares the DGL-style three-kernel map, the deterministic Fused-Map
//! replay, and the truly concurrent lock-free Fused-Map on realistic ID
//! streams (heavy duplication, power-law-ish key reuse).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fastgl_sample::{BaselineIdMap, FusedIdMap, IdMap};

/// An ID stream with ~8x duplication over a skewed key space, the shape a
/// sampled subgraph's concatenated frontiers produce.
fn id_stream(total: usize) -> Vec<u64> {
    let unique = (total / 8).max(1) as u64;
    let mut x = 0x1357_9BDF_2468_ACE0u64;
    (0..total)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Square the unit draw to bias towards small IDs (hubs).
            let u = (x >> 40) as f64 / (1u64 << 24) as f64;
            ((u * u * unique as f64) as u64).min(unique - 1)
        })
        .collect()
}

fn bench_id_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("id_map");
    group.sample_size(20);
    for &total in &[10_000usize, 100_000] {
        let ids = id_stream(total);
        group.throughput(Throughput::Elements(total as u64));
        group.bench_with_input(BenchmarkId::new("baseline", total), &ids, |b, ids| {
            b.iter(|| black_box(BaselineIdMap::new().map(ids)));
        });
        group.bench_with_input(BenchmarkId::new("fused", total), &ids, |b, ids| {
            b.iter(|| black_box(FusedIdMap::new().map(ids)));
        });
        group.bench_with_input(
            BenchmarkId::new("fused_parallel_4t", total),
            &ids,
            |b, ids| {
                b.iter(|| {
                    black_box(
                        FusedIdMap {
                            threads: 4,
                            ..FusedIdMap::new()
                        }
                        .map_parallel(ids),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_id_map);
criterion_main!(benches);
