//! Microbenchmark of subgraph sampling (neighbour and random-walk).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fastgl_graph::generate::rmat::{self, RmatConfig};
use fastgl_graph::{Csr, DeterministicRng, NodeId};
use fastgl_sample::{FusedIdMap, LayerWiseSampler, NeighborSampler, RandomWalkSampler};

fn graph() -> Csr {
    rmat::generate(&RmatConfig::social(50_000, 600_000), 42)
}

fn seeds(n: u64) -> Vec<NodeId> {
    (0..n).map(|i| NodeId(i * 97 % 50_000)).collect()
}

fn bench_neighbor(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("neighbor_sampling");
    group.sample_size(20);
    for fanouts in [vec![5usize, 10], vec![5, 10, 15]] {
        let sampler = NeighborSampler::new(fanouts.clone());
        group.bench_with_input(
            BenchmarkId::new("fanouts", format!("{fanouts:?}")),
            &sampler,
            |b, sampler| {
                let s = seeds(256);
                b.iter(|| {
                    let mut rng = DeterministicRng::seed(7);
                    black_box(sampler.sample(&g, &s, &FusedIdMap::new(), &mut rng))
                });
            },
        );
    }
    group.finish();
}

fn bench_random_walk(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("random_walk_sampling");
    group.sample_size(20);
    let sampler = RandomWalkSampler::paper_default();
    group.bench_function("pinsage_len3", |b| {
        let s = seeds(256);
        b.iter(|| {
            let mut rng = DeterministicRng::seed(9);
            black_box(sampler.sample(&g, &s, &FusedIdMap::new(), &mut rng))
        });
    });
    group.finish();
}

fn bench_layer_wise(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("layer_wise_sampling");
    group.sample_size(20);
    let sampler = LayerWiseSampler::new(vec![512, 1024]);
    group.bench_function("ladies_512_1024", |b| {
        let s = seeds(256);
        b.iter(|| {
            let mut rng = DeterministicRng::seed(11);
            black_box(sampler.sample(&g, &s, &FusedIdMap::new(), &mut rng))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_neighbor, bench_random_walk, bench_layer_wise);
criterion_main!(benches);
