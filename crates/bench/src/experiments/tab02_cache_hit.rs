//! Table 2: L1/L2 hit rates and achieved GFLOP/s of the naive aggregation.
//!
//! The motivation for Memory-Aware computation: irregular neighbour
//! gathers hit the 3090's L1 only ~3–5 % and L2 ~16–25 % of the time,
//! pinning the naive kernel far below peak.

use crate::experiments::base_config;
use crate::report::{fmt_pct, Report, Table};
use crate::scale::BenchScale;
use fastgl_core::sampler::SamplerEngine;
use fastgl_gnn::{census, ModelConfig, ModelKind};
use fastgl_gpusim::{AggregationKernel, SubgraphLayerTrace};
use fastgl_graph::{Dataset, DeterministicRng};

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "tab02_cache_hit",
        "Table 2: naive-aggregation L1/L2 hit rates and achieved GFLOP/s (forward)",
    );
    let mut table = Table::new(
        "Measured on the widest sampled block, GCN forward aggregation",
        &["graph", "L1 hit", "L2 hit", "GFLOP/s"],
    );
    let cfg = base_config(scale);
    for dataset in Dataset::CORE4 {
        let data = scale.bundle(dataset);
        let sampler = SamplerEngine::new(&cfg);
        let mut rng = DeterministicRng::seed(scale.seed ^ 2);
        let seeds: Vec<_> = data
            .train_nodes()
            .iter()
            .take(scale.batch_size as usize)
            .copied()
            .collect();
        let (sg, _) = sampler.sample_batch(&data.graph, &seeds, &mut rng);
        let model =
            ModelConfig::paper(ModelKind::Gcn, data.spec.feature_dim, data.spec.num_classes);
        let workloads = census(&sg, &model.layer_dims());
        // The widest (input-side) block dominates the aggregation traffic.
        let block = &sg.blocks[0];
        let w = &workloads[0];
        // Replay against capacities scaled like the workload, so the
        // cache-to-working-set ratio matches the paper's full-size regime.
        let kernel = AggregationKernel::new(cfg.system.device.clone(), cfg.system.cost.clone())
            .with_capacity_scale(data.spec.scale);
        let trace = SubgraphLayerTrace {
            offsets: &block.src_offsets,
            sources: &block.src_locals,
            num_sources: w.num_src_rows,
            feature_dim: w.d_in,
        };
        let cost = kernel.naive_cost(&trace);
        table.push_row(vec![
            dataset.short_name().into(),
            fmt_pct(cost.l1.hit_rate()),
            fmt_pct(cost.l2.hit_rate()),
            format!("{:.0}", cost.gflops()),
        ]);
    }
    report.tables.push(table);
    report.note(
        "Paper values: L1 3.3-5.1%, L2 15.7-24.6%, 340-401 GFLOP/s — both \
         hit rates far below what a regular kernel achieves, and GFLOP/s \
         around 1-2% of the 29,155 GFLOP/s peak. The reproduced shape is \
         'low hit rates, single-digit-percent of peak'. Scaled subgraphs \
         have smaller working sets, so absolute hit rates run higher here.",
    );
    report
}
