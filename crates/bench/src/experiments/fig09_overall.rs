//! Figure 9: overall training speed of three GNNs across five datasets.
//!
//! The headline comparison: FastGL vs DGL, GNNAdvisor, and GNNLab on
//! 2 GPUs (PyG is an order of magnitude slower and reported separately).

use crate::experiments::base_config;
use crate::report::{fmt_ratio, fmt_secs, Report, Table};
use crate::scale::BenchScale;
use fastgl_baselines::SystemKind;
use fastgl_gnn::ModelKind;
use fastgl_graph::Dataset;

/// Epoch time of one (system, model, dataset) cell.
pub fn epoch_time(scale: &BenchScale, kind: SystemKind, model: ModelKind, dataset: Dataset) -> f64 {
    let data = scale.bundle(dataset);
    let mut sys = kind.build(base_config(scale).with_model(model));
    sys.run_epochs(&data, scale.epochs).total().as_secs_f64()
}

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "fig09_overall",
        "Fig. 9: epoch time of GCN/GIN/GAT across all five graphs (2 GPUs)",
    );
    let mut fastgl_speedups: Vec<f64> = Vec::new();
    for model in ModelKind::ALL {
        let mut table = Table::new(
            format!("{model}: per-epoch time and FastGL speedup"),
            &[
                "graph",
                "DGL",
                "GNNAdvisor",
                "GNNLab",
                "FastGL",
                "vs DGL",
                "vs GNNLab",
            ],
        );
        for dataset in Dataset::ALL {
            let dgl = epoch_time(scale, SystemKind::Dgl, model, dataset);
            let advisor = epoch_time(scale, SystemKind::GnnAdvisor, model, dataset);
            let lab = epoch_time(scale, SystemKind::GnnLab, model, dataset);
            let fastgl = epoch_time(scale, SystemKind::FastGl, model, dataset);
            fastgl_speedups.push(dgl / fastgl);
            table.push_row(vec![
                dataset.short_name().into(),
                fmt_secs(dgl),
                fmt_secs(advisor),
                fmt_secs(lab),
                fmt_secs(fastgl),
                fmt_ratio(dgl / fastgl),
                fmt_ratio(lab / fastgl),
            ]);
        }
        report.tables.push(table);
    }
    let avg = fastgl_speedups.iter().sum::<f64>() / fastgl_speedups.len() as f64;
    report.note(format!(
        "Average FastGL speedup over DGL across all cells: {avg:.2}x \
         (paper: 2.2x average, 1.7x-5.1x range)."
    ));
    report.note(
        "Paper shape: FastGL is fastest everywhere; GNNLab is second on \
         cache-friendly graphs but loses its edge on MAG/PA where no \
         memory is left to cache; GNNAdvisor trails DGL because of \
         per-iteration preprocessing.",
    );
    report
}
