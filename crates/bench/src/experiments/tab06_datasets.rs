//! Table 6: the benchmark datasets — and how faithfully the synthetic
//! stand-ins reproduce their shape.
//!
//! The paper's Table 6 lists node/edge counts, feature widths, and class
//! counts. Since this reproduction substitutes scaled R-MAT stand-ins for
//! the real graphs, this experiment reports both the published full-scale
//! statistics and the generated stand-ins' measured shape (average degree,
//! skew) so every downstream result can be judged against the fidelity of
//! its input.

use crate::report::{fmt_pct, Report, Table};
use crate::scale::BenchScale;
use fastgl_graph::{Dataset, DegreeStats};

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "tab06_datasets",
        "Table 6: dataset statistics — published vs generated stand-ins",
    );
    let mut published = Table::new(
        "Published full-scale statistics (paper Table 6)",
        &[
            "graph",
            "nodes",
            "edges",
            "features",
            "classes",
            "avg degree",
        ],
    );
    for dataset in Dataset::ALL {
        let spec = dataset.spec();
        published.push_row(vec![
            dataset.short_name().into(),
            format!("{}", spec.num_nodes),
            format!("{}", spec.num_edges),
            spec.feature_dim.to_string(),
            spec.num_classes.to_string(),
            format!("{:.1}", spec.average_degree()),
        ]);
    }
    report.tables.push(published);

    let mut generated = Table::new(
        "Generated stand-ins at benchmark scale (measured)",
        &[
            "graph",
            "scale",
            "nodes",
            "edges",
            "avg deg (target)",
            "avg deg (got)",
            "degree gini",
            "top-1% edge share",
        ],
    );
    for dataset in Dataset::ALL {
        let bundle = scale.bundle(dataset);
        let stats = DegreeStats::compute(&bundle.graph);
        generated.push_row(vec![
            dataset.short_name().into(),
            format!("1/{:.0}", 1.0 / scale.factor(dataset)),
            stats.num_nodes.to_string(),
            stats.num_edges.to_string(),
            format!("{:.1}", bundle.spec.average_degree()),
            format!("{:.1}", stats.mean),
            format!("{:.3}", stats.gini),
            fmt_pct(stats.top1pct_edge_share),
        ]);
    }
    report.tables.push(generated);
    report.note(
        "Fidelity criteria: generated average degree within ~2x of the \
         published target (symmetrisation/dedup slack), heavy-tailed degree \
         distribution (gini well above 0.3, top-1% owning a large edge \
         share), feature widths and class counts identical by construction.",
    );
    report
}
