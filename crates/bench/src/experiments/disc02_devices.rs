//! Extension study: do FastGL's techniques survive newer GPUs?
//!
//! The paper evaluates on RTX 3090s. Datacenter parts change the balance:
//! HBM multiplies global bandwidth (shrinking the Memory-Aware headroom),
//! bigger L2s absorb more of the irregular gather, and the host link stays
//! the bottleneck it was. This study re-runs the headline comparison on
//! simulated A100 and H100 machines.

use crate::experiments::base_config;
use crate::report::{fmt_ratio, fmt_secs, Report, Table};
use crate::scale::BenchScale;
use fastgl_baselines::SystemKind;
use fastgl_gpusim::DeviceSpec;
use fastgl_graph::Dataset;

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "disc02_devices",
        "Extension: FastGL vs DGL across GPU generations (GCN on Products)",
    );
    let data = scale.bundle(Dataset::Products);
    let mut table = Table::new(
        "Per-epoch times on simulated devices (2 GPUs each)",
        &[
            "device",
            "DGL",
            "FastGL",
            "speedup",
            "DGL compute",
            "FastGL compute",
        ],
    );
    for device in [
        DeviceSpec::rtx3090(),
        DeviceSpec::a100(),
        DeviceSpec::h100(),
    ] {
        let mut cfg = base_config(scale);
        cfg.system.device = device.clone();
        let s_dgl = SystemKind::Dgl
            .build(cfg.clone())
            .run_epochs(&data, scale.epochs);
        let s_fast = SystemKind::FastGl
            .build(cfg)
            .run_epochs(&data, scale.epochs);
        table.push_row(vec![
            device.name.clone(),
            fmt_secs(s_dgl.total().as_secs_f64()),
            fmt_secs(s_fast.total().as_secs_f64()),
            fmt_ratio(s_dgl.total().as_secs_f64() / s_fast.total().as_secs_f64()),
            fmt_secs(s_dgl.breakdown.compute.as_secs_f64()),
            fmt_secs(s_fast.breakdown.compute.as_secs_f64()),
        ]);
    }
    report.tables.push(table);
    report.note(
        "Expected shape: the end-to-end speedup persists on every device \
         because it is dominated by Match-Reorder (the host link does not \
         improve between generations here), while the Memory-Aware compute \
         margin narrows as HBM bandwidth closes the global-vs-shared gap — \
         the paper's techniques are complementary, not tied to one part.",
    );
    report
}
