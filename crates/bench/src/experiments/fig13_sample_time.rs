//! Figure 13: sample-phase time per epoch across frameworks.
//!
//! PyG's CPU sampler is orders of magnitude slower; DGL's GPU sampler is
//! held back by ID-map synchronizations; Fused-Map removes them.

use crate::experiments::base_config;
use crate::report::{fmt_ratio, fmt_secs, Report, Table};
use crate::scale::BenchScale;
use fastgl_baselines::SystemKind;
use fastgl_graph::Dataset;

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "fig13_sample_time",
        "Fig. 13: sample-phase time per epoch (GCN, 2 GPUs)",
    );
    let mut table = Table::new(
        "Visible sample time (GNNLab's overlap hides part of its sampling)",
        &[
            "graph",
            "PyG",
            "DGL",
            "GNNLab",
            "FastGL",
            "PyG/FastGL",
            "DGL/FastGL",
        ],
    );
    for dataset in Dataset::ALL {
        let data = scale.bundle(dataset);
        let sample_of = |kind: SystemKind| {
            kind.build(base_config(scale))
                .run_epochs(&data, scale.epochs)
                .breakdown
                .sample
                .as_secs_f64()
        };
        let pyg = sample_of(SystemKind::Pyg);
        let dgl = sample_of(SystemKind::Dgl);
        let lab = sample_of(SystemKind::GnnLab);
        let fast = sample_of(SystemKind::FastGl);
        table.push_row(vec![
            dataset.short_name().into(),
            fmt_secs(pyg),
            fmt_secs(dgl),
            fmt_secs(lab),
            fmt_secs(fast),
            fmt_ratio(pyg / fast),
            fmt_ratio(dgl / fast),
        ]);
    }
    report.tables.push(table);
    report.note(
        "Paper shape: FastGL samples up to 80.8x faster than PyG and \
         2.0x-2.5x faster than DGL thanks to Fused-Map; GNNLab's visible \
         sample time is near zero while its dedicated GPU keeps up.",
    );
    report
}
