//! Figure 11: computation-phase time across frameworks.
//!
//! Memory-Aware computation vs the naive kernels of PyG/DGL and
//! GNNAdvisor's preprocess-then-compute design (whose preprocessing share
//! is shown shaded in the paper's bars).

use crate::experiments::base_config;
use crate::report::{fmt_pct, fmt_ratio, fmt_secs, Report, Table};
use crate::scale::BenchScale;
use fastgl_core::compute::ComputeEngine;
use fastgl_core::sampler::SamplerEngine;
use fastgl_core::ComputeMode;
use fastgl_gnn::{census, ModelConfig, ModelKind};
use fastgl_graph::{Dataset, DeterministicRng};
use fastgl_sample::MinibatchPlan;

/// Per-epoch computation time of one mode on one dataset, plus the
/// preprocessing share (GNNAdvisor only).
pub fn compute_time(scale: &BenchScale, dataset: Dataset, mode: ComputeMode) -> (f64, f64) {
    let data = scale.bundle(dataset);
    let cfg = base_config(scale);
    let sampler = SamplerEngine::new(&cfg);
    let mut engine = ComputeEngine::new(cfg.system.clone(), mode, ModelKind::Gcn);
    let model = ModelConfig::paper(ModelKind::Gcn, data.spec.feature_dim, data.spec.num_classes);
    let dims = model.layer_dims();
    let plan = MinibatchPlan::new(data.train_nodes(), scale.batch_size as usize, scale.seed, 0);
    let mut rng = DeterministicRng::seed(scale.seed ^ 11);
    let mut total = 0.0;
    let mut preprocess = 0.0;
    for seeds in plan.iter() {
        let (sg, _) = sampler.sample_batch(&data.graph, seeds, &mut rng);
        let workloads = census(&sg, &dims);
        let r = engine.batch_time(&sg, &workloads);
        total += r.time.as_secs_f64();
        preprocess += r.preprocess.as_secs_f64();
    }
    (total, preprocess)
}

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "fig11_compute",
        "Fig. 11: computation-phase time per epoch (GCN)",
    );
    let mut table = Table::new(
        "Computation time; GNNAdvisor's preprocessing share in the last column",
        &[
            "graph",
            "DGL (naive)",
            "GNNAdvisor",
            "FastGL (MA)",
            "FastGL speedup",
            "Advisor preproc%",
        ],
    );
    for dataset in Dataset::ALL {
        let (naive, _) = compute_time(scale, dataset, ComputeMode::Naive);
        let (advisor, pre) = compute_time(scale, dataset, ComputeMode::Advisor);
        let (ma, _) = compute_time(scale, dataset, ComputeMode::MemoryAware);
        table.push_row(vec![
            dataset.short_name().into(),
            fmt_secs(naive),
            fmt_secs(advisor),
            fmt_secs(ma),
            fmt_ratio(naive / ma),
            fmt_pct(pre / advisor),
        ]);
    }
    report.tables.push(table);
    report.note(
        "Paper shape: FastGL's Memory-Aware kernels beat DGL by 1.1x-6.7x; \
         GNNAdvisor is *slower* than DGL because each sampled subgraph must \
         be preprocessed (up to 75% of its computation time).",
    );
    report
}
