//! Figure 12: roofline analysis of the aggregation phase on Products.
//!
//! Places the forward and backward aggregation of each framework on the
//! 3090's roofline: all variants are memory-bound (operational intensity
//! far left of the ridge point), and FastGL lifts achieved performance by
//! raising the bandwidth actually delivered to the compute units.

use crate::experiments::base_config;
use crate::report::{Report, Table};
use crate::scale::BenchScale;
use fastgl_core::sampler::SamplerEngine;
use fastgl_gnn::{census, ModelConfig, ModelKind};
use fastgl_gpusim::roofline::{ridge_point, RooflinePoint};
use fastgl_gpusim::{AggregationKernel, SubgraphLayerTrace};
use fastgl_graph::{Dataset, DeterministicRng};

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "fig12_roofline",
        "Fig. 12: roofline of the GCN aggregation on Products (fwd+bwd)",
    );
    let data = scale.bundle(Dataset::Products);
    let cfg = base_config(scale);
    let sampler = SamplerEngine::new(&cfg);
    let mut rng = DeterministicRng::seed(scale.seed ^ 12);
    let seeds: Vec<_> = data
        .train_nodes()
        .iter()
        .take(scale.batch_size as usize)
        .copied()
        .collect();
    let (sg, _) = sampler.sample_batch(&data.graph, &seeds, &mut rng);
    let model = ModelConfig::paper(ModelKind::Gcn, data.spec.feature_dim, data.spec.num_classes);
    let workloads = census(&sg, &model.layer_dims());
    let kernel = AggregationKernel::new(cfg.system.device.clone(), cfg.system.cost.clone())
        .with_capacity_scale(data.spec.scale);

    let mut table = Table::new(
        "Aggregation of the widest block (forward; backward is symmetric)",
        &[
            "framework",
            "OI (FLOP/byte)",
            "achieved GFLOP/s",
            "roof GFLOP/s",
            "% of roof",
        ],
    );
    let block = &sg.blocks[0];
    let w = &workloads[0];
    let trace = SubgraphLayerTrace {
        offsets: &block.src_offsets,
        sources: &block.src_locals,
        num_sources: w.num_src_rows,
        feature_dim: w.d_in,
    };
    let naive = kernel.naive_cost(&trace);
    let ma = kernel.memory_aware_cost(&trace);
    for (name, cost) in [("DGL (naive)", naive), ("FastGL (Memory-Aware)", ma)] {
        let pt = RooflinePoint::from_profile(&cfg.system.device, &cost.profile, cost.cost.time());
        table.push_row(vec![
            name.into(),
            format!("{:.2}", pt.operational_intensity),
            format!("{:.0}", pt.achieved_gflops),
            format!("{:.0}", pt.roof_gflops),
            format!("{:.0}%", pt.efficiency() * 100.0),
        ]);
    }
    report.tables.push(table);
    report.note(format!(
        "Ridge point of the simulated 3090: {:.1} FLOP/byte; the \
         aggregation sits far left of it (memory bound), matching the \
         paper. FastGL's higher OI (global traffic shed to shared memory) \
         and delivered bandwidth yield up to ~4.2x the achieved GFLOP/s in \
         the paper's figure.",
        ridge_point(&cfg.system.device)
    ));
    report
}
