//! Figure 16: training-loss convergence — FastGL vs DGL.
//!
//! FastGL computes the same gradients as DGL; only the mini-batch order
//! within each sampled window differs (Reorder). Real GCN and GIN models
//! train on a labelled community graph with and without reordering and
//! must converge to approximately the same loss.

use crate::report::{Report, Table};
use crate::scale::BenchScale;
use fastgl_core::trainer::{train, ConvergenceRun, TrainerConfig};
use fastgl_gnn::ModelKind;
use fastgl_graph::generate::community::{self, CommunityConfig};
use fastgl_graph::NodeId;

/// The labelled graph used for convergence runs: Reddit-like community
/// structure at a size real training handles in seconds.
pub fn convergence_graph(scale: &BenchScale) -> community::CommunityGraph {
    let nodes = if scale.extra_factor < 1.0 {
        1_500
    } else {
        4_000
    };
    community::generate(
        &CommunityConfig {
            num_nodes: nodes,
            num_classes: 8,
            intra_degree: 14.0,
            inter_degree: 2.0,
            feature_dim: 32,
            feature_noise: 1.0,
        },
        scale.seed,
    )
}

/// Trains with or without Reorder and returns the run.
pub fn run_one(scale: &BenchScale, model: ModelKind, reorder: bool) -> ConvergenceRun {
    let d = convergence_graph(scale);
    let train_nodes: Vec<NodeId> = (0..d.graph.num_nodes() * 2 / 3).map(NodeId).collect();
    let cfg = TrainerConfig {
        model,
        hidden_dim: 32,
        fanouts: vec![4, 4],
        batch_size: 256,
        learning_rate: 0.01,
        epochs: if scale.extra_factor < 1.0 { 3 } else { 6 },
        reorder,
        window: 4,
        seed: scale.seed,
    };
    train(&d.graph, &d.features, &d.labels, &train_nodes, &cfg)
}

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "fig16_convergence",
        "Fig. 16: training loss, FastGL (reordered) vs DGL (default order)",
    );
    for model in [ModelKind::Gcn, ModelKind::Gin] {
        let dgl = run_one(scale, model, false);
        let fastgl = run_one(scale, model, true);
        let mut table = Table::new(
            format!("{model}: mean loss per epoch (real training)"),
            &["epoch", "DGL", "FastGL"],
        );
        for (e, (a, b)) in dgl
            .epoch_losses
            .iter()
            .zip(&fastgl.epoch_losses)
            .enumerate()
        {
            table.push_row(vec![e.to_string(), format!("{a:.4}"), format!("{b:.4}")]);
        }
        report.tables.push(table);
        report.note(format!(
            "{model}: converged (tail) loss DGL {:.4} vs FastGL {:.4}; final \
             train accuracy DGL {:.3} vs FastGL {:.3}.",
            dgl.tail_loss(10),
            fastgl.tail_loss(10),
            dgl.final_accuracy,
            fastgl.final_accuracy,
        ));
    }
    report.note(
        "Paper claim: FastGL converges to approximately the same loss as \
         DGL — reordering mini-batches within a window does not change what \
         is learned.",
    );
    report
}
