//! Figure 15: where the overall speedup comes from.
//!
//! Average end-to-end speedup over DGL across all five datasets as the
//! three techniques stack: +MR, +MR+MA, +MR+MA+FM (= FastGL).

use crate::experiments::base_config;
use crate::experiments::fig03_ablation_breakdown::staged_variants;
use crate::report::{fmt_ratio, Report, Table};
use crate::scale::BenchScale;
use fastgl_core::{FastGl, TrainingSystem};
use fastgl_graph::Dataset;

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "fig15_speedup_ablation",
        "Fig. 15: average overall speedup over DGL as techniques stack (GCN, 2 GPUs)",
    );
    let base = base_config(scale);
    let variants = staged_variants(&base);
    // Geometric-mean speedup across datasets per variant, DGL-equivalent
    // ('Naive') as the baseline.
    let mut per_dataset: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for dataset in Dataset::ALL {
        let data = scale.bundle(dataset);
        let mut naive_time = None;
        for (i, (_, cfg)) in variants.iter().enumerate() {
            let t = FastGl::new(cfg.clone())
                .run_epochs(&data, scale.epochs)
                .total()
                .as_secs_f64();
            if i == 0 {
                naive_time = Some(t);
            }
            per_dataset[i].push(naive_time.expect("naive runs first") / t);
        }
    }
    let mut table = Table::new(
        "Average speedup over the DGL-equivalent baseline (5 datasets)",
        &["variant", "avg speedup", "min", "max"],
    );
    for ((name, _), speedups) in variants.iter().zip(&per_dataset) {
        let avg = speedups
            .iter()
            .product::<f64>()
            .powf(1.0 / speedups.len() as f64);
        let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = speedups.iter().cloned().fold(0.0, f64::max);
        table.push_row(vec![
            (*name).into(),
            fmt_ratio(avg),
            fmt_ratio(min),
            fmt_ratio(max),
        ]);
    }
    report.tables.push(table);
    report.note(
        "Paper shape: Match-Reorder contributes the largest share (memory \
         IO dominates), Memory-Aware adds roughly another 1.6x, and \
         Fused-Map a smaller final increment because sampling is the \
         smallest phase (31-51%) by then.",
    );
    report
}
