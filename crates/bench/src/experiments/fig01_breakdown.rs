//! Figure 1: execution-time breakdown of sampling-based frameworks.
//!
//! The paper opens by decomposing GCN training epochs on Products, MAG,
//! and Papers100M under DGL and GNNLab into the three phases, showing that
//! memory IO dominates and no phase is negligible.

use crate::experiments::base_config;
use crate::report::{fmt_pct, fmt_secs, Report, Table};
use crate::scale::BenchScale;
use fastgl_baselines::SystemKind;
use fastgl_graph::Dataset;

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "fig01_breakdown",
        "Fig. 1: phase breakdown of GCN epochs under DGL and GNNLab",
    );
    let mut table = Table::new(
        "Phase breakdown (per-epoch, averaged)",
        &[
            "system", "graph", "sample", "io", "compute", "sample%", "io%", "compute%",
        ],
    );
    for kind in [SystemKind::Dgl, SystemKind::GnnLab] {
        for dataset in [Dataset::Products, Dataset::Mag, Dataset::Papers100M] {
            let data = scale.bundle(dataset);
            let mut sys = kind.build(base_config(scale));
            let s = sys.run_epochs(&data, scale.epochs);
            let (fs, fi, fc) = s.breakdown.fractions();
            table.push_row(vec![
                kind.name().into(),
                dataset.short_name().into(),
                fmt_secs(s.breakdown.sample.as_secs_f64()),
                fmt_secs(s.breakdown.io.as_secs_f64()),
                fmt_secs(s.breakdown.compute.as_secs_f64()),
                fmt_pct(fs),
                fmt_pct(fi),
                fmt_pct(fc),
            ]);
        }
    }
    report.tables.push(table);
    report.note(
        "Paper claim: memory IO consumes up to 77% of DGL epochs and every \
         phase is a meaningful fraction; GNNLab shifts time out of sample/IO \
         via overlap and caching but large graphs blunt its cache.",
    );
    report
}
