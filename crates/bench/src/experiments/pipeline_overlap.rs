//! Wall-clock benefit of the asynchronous window pipeline (paper §6.5).
//!
//! FastGL overlaps sampling, reorder/match, and feature-load/compute
//! across mini-batch windows. This bench runs the identical workload at
//! prefetch depths 0 (serial), 1, 2, and 4 and reports the host wall time
//! plus each stage's busy/stall split — while asserting that the simulated
//! epoch statistics are bit-identical at every depth, which is the
//! pipeline's core contract.

use crate::experiments::base_config;
use crate::report::{fmt_ratio, fmt_secs, Report, Table};
use crate::scale::BenchScale;
use fastgl_core::{FastGl, StageWallStats, TrainingSystem};
use fastgl_graph::Dataset;
use std::time::Instant;

fn stage_cell(st: StageWallStats) -> String {
    format!(
        "{} / {}",
        fmt_secs(st.busy.as_secs_f64()),
        fmt_secs(st.stall().as_secs_f64())
    )
}

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "BENCH_pipeline",
        "Pipelined epoch executor: wall time and stage busy/stall vs prefetch depth",
    );
    let data = scale.bundle(Dataset::Products);
    let mut table = Table::new(
        "GCN/Products, FastGL policy; same epochs at every depth",
        &[
            "prefetch",
            "wall epoch time",
            "wall speedup vs serial",
            "simulated total",
            "sample busy/stall",
            "prepare busy/stall",
            "execute busy/stall",
        ],
    );
    let mut serial_wall = None;
    let mut serial_stats = None;
    for depth in [0usize, 1, 2, 4] {
        // Pipelining overlaps *across* windows, so run the smallest
        // reorder window: the epoch splits into as many windows as the
        // profile's batch count allows instead of one monolithic window.
        let mut cfg = base_config(scale).with_prefetch_windows(depth);
        cfg.reorder_window = 2;
        let mut sys = FastGl::new(cfg);
        let started = Instant::now();
        let s = sys.run_epochs(&data, scale.epochs);
        let elapsed = started.elapsed().as_secs_f64();
        let serial = *serial_wall.get_or_insert(elapsed);
        match serial_stats {
            None => serial_stats = Some(s),
            Some(base) => assert_eq!(base, s, "prefetch depth {depth} changed simulated results"),
        }
        let wall = sys.pipeline_wall_stats().expect("at least one epoch ran");
        table.push_row(vec![
            depth.to_string(),
            fmt_secs(elapsed),
            fmt_ratio(serial / elapsed),
            fmt_secs(s.total().as_secs_f64()),
            stage_cell(wall.sample),
            stage_cell(wall.prepare),
            stage_cell(wall.execute),
        ]);
    }
    report.tables.push(table);
    report.note(
        "Expected shape: the simulated total is byte-identical in every \
         row (asserted), while wall time drops once prefetch ≥ 1 lets the \
         sampler run ahead of compute — the win saturates when the \
         slowest stage is fully busy, so depth 2 vs 4 is mostly flat. \
         Stall columns show where the pipeline waits: a sampler-bound run \
         stalls the execute stage, a compute-bound run stalls the \
         sampler. Depth 0 is the serial loop (busy only, no stalls). \
         Wall-clock numbers vary machine to machine; the committed \
         baseline records the shape, not a pinned value. On a \
         single-core host the stages cannot run concurrently and the \
         thread hand-off overhead makes depths >= 1 slightly *slower* \
         than serial — the overlap win needs two or more cores \
         (and FASTGL_THREADS >= 2 for the in-stage kernels).",
    );
    report
}
