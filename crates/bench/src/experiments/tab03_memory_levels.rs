//! Table 3: the simulated device's memory-level statistics.
//!
//! A configuration check rather than a measurement: the simulator must use
//! exactly the hierarchy the paper's analysis (Eq. 3/4) assumes.

use crate::report::{Report, Table};
use crate::scale::BenchScale;
use fastgl_gpusim::DeviceSpec;

/// Runs the experiment.
pub fn run(_scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "tab03_memory_levels",
        "Table 3: memory levels of the simulated RTX 3090",
    );
    let d = DeviceSpec::rtx3090();
    let mut table = Table::new(
        "Bandwidth and capacity per level",
        &["level", "bandwidth", "capacity", "paper"],
    );
    table.push_row(vec![
        "L1 cache / shared memory".into(),
        format!("{:.0} TB/s", d.bw_shared / 1e12),
        format!("{} KB per SM", d.l1_bytes_per_sm / 1024),
        "~12 TB/s, 128 KB per SM".into(),
    ]);
    table.push_row(vec![
        "L2 cache".into(),
        format!("{:.0} TB/s", d.bw_l2 / 1e12),
        format!("{} MB", d.l2_bytes / (1024 * 1024)),
        "3-5 TB/s, 6 MB".into(),
    ]);
    table.push_row(vec![
        "Global memory".into(),
        format!("{:.0} GB/s", d.bw_global / 1e9),
        format!("{} GB", d.global_bytes / (1024 * 1024 * 1024)),
        "938 GB/s, 24 GB".into(),
    ]);
    report.tables.push(table);
    report.note(format!(
        "Peak FP32 throughput: {:.0} GFLOP/s (paper: 29,155); SMs: {}.",
        d.peak_flops / 1e9,
        d.sm_count
    ));
    report
}
