//! Ablation: the Reorder window size `n` (Algorithm 1's only parameter).
//!
//! The paper samples `n` mini-batches at a time and reorders within the
//! window but does not sweep `n`. Larger windows give the greedy order
//! more candidates (potentially more reuse) at the cost of a quadratic
//! match-degree matrix; this ablation measures both sides.

use crate::experiments::base_config;
use crate::report::{fmt_secs, Report, Table};
use crate::scale::BenchScale;
use fastgl_core::{FastGl, TrainingSystem};
use fastgl_graph::Dataset;
use std::time::Instant;

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "abl01_reorder_window",
        "Ablation: Reorder window size vs IO savings and reorder cost",
    );
    let data = scale.bundle(Dataset::Products);
    let mut table = Table::new(
        "GCN/Products, 1 GPU, cache disabled (isolating Match-Reorder)",
        &[
            "window",
            "epoch IO",
            "rows loaded",
            "rows reused",
            "harness reorder time (wall)",
        ],
    );
    for window in [2usize, 4, 8, 16, 32] {
        let mut cfg = base_config(scale).with_gpus(1).with_cache_ratio(0.0);
        cfg.reorder_window = window;
        let mut sys = FastGl::new(cfg);
        let wall = Instant::now();
        let s = sys.run_epochs(&data, scale.epochs);
        let elapsed = wall.elapsed();
        table.push_row(vec![
            window.to_string(),
            fmt_secs(s.breakdown.io.as_secs_f64()),
            s.rows_loaded.to_string(),
            s.rows_reused.to_string(),
            fmt_secs(elapsed.as_secs_f64()),
        ]);
    }
    report.tables.push(table);
    report.note(
        "Expected shape: loaded rows decrease (weakly) with the window as \
         the greedy order finds better successors, while the O(n²) match \
         matrix makes the harness-side cost grow; the paper's default of a \
         small window (we use 8) sits at the knee. At simulator scale the \
         IO differences are small because match degrees are near-uniform \
         (see EXPERIMENTS.md, Table 4 notes).",
    );
    report
}
