//! Table 8: ID-map time — DGL's three-kernel map vs Fused-Map.
//!
//! The ID map is the sample phase's dominant step (up to 70 %); Fused-Map
//! removes its synchronizations for a 2.1x–2.7x per-epoch saving.

use crate::experiments::base_config;
use crate::report::{fmt_ratio, fmt_secs, Report, Table};
use crate::scale::BenchScale;
use fastgl_core::sampler::SamplerEngine;
use fastgl_core::IdMapKind;
use fastgl_graph::{Dataset, DeterministicRng};
use fastgl_sample::MinibatchPlan;

/// Per-epoch ID-map time of one strategy on one dataset.
pub fn id_map_time(scale: &BenchScale, dataset: Dataset, kind: IdMapKind) -> f64 {
    let data = scale.bundle(dataset);
    let mut cfg = base_config(scale);
    cfg.id_map = kind;
    let sampler = SamplerEngine::new(&cfg);
    let plan = MinibatchPlan::new(data.train_nodes(), scale.batch_size as usize, scale.seed, 0);
    let mut rng = DeterministicRng::seed(scale.seed ^ 8);
    let mut total = 0.0;
    for seeds in plan.iter() {
        let (_, stats) = sampler.sample_batch(&data.graph, seeds, &mut rng);
        total += sampler
            .sample_time(&stats, &cfg.system.cost)
            .id_map
            .as_secs_f64();
    }
    total
}

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "tab08_id_map",
        "Table 8: per-epoch ID-map time, DGL vs Fused-Map",
    );
    let mut table = Table::new(
        "Ratios in parentheses as the paper prints them (paper: 2.1x-2.7x)",
        &["graph", "DGL", "Fused-Map"],
    );
    for dataset in Dataset::CORE4 {
        let dgl = id_map_time(scale, dataset, IdMapKind::Baseline);
        let fused = id_map_time(scale, dataset, IdMapKind::Fused);
        table.push_row(vec![
            dataset.short_name().into(),
            format!("{} ({})", fmt_secs(dgl), fmt_ratio(dgl / fused)),
            format!("{} (1.00x)", fmt_secs(fused)),
        ]);
    }
    report.tables.push(table);
    report.note(
        "Paper shape: Fused-Map wins 2.1x-2.7x on every graph; the gap \
         comes from eliminating the per-unique-node synchronized local-ID \
         assignment and one device-wide barrier.",
    );
    report
}
