//! Cost of surviving faults (`BENCH_resilience`, DESIGN.md §10).
//!
//! Two questions an operator asks before turning fault injection loose on
//! a real run: *what does each fault class cost* (simulated time, extra
//! PCIe traffic, replays), and *how gracefully does the feature cache
//! degrade* as device-memory pressure evicts hot rows. Both answers are
//! deterministic — the same plan produces the same counters and the same
//! degraded statistics at any thread count or prefetch depth (asserted).

use crate::experiments::base_config;
use crate::report::{fmt_bytes, fmt_pct, fmt_ratio, fmt_secs, Report, Table};
use crate::scale::BenchScale;
use fastgl_core::{FastGl, FaultPlan, TrainingSystem};
use fastgl_graph::Dataset;

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "BENCH_resilience",
        "Fault injection: per-class recovery cost and cache-pressure degradation curve",
    );
    let data = scale.bundle(Dataset::Products);
    let clean = FastGl::new(base_config(scale)).run_epochs(&data, scale.epochs);

    // Per-class recovery cost, each plan injected alone so its cost is
    // attributable. The combined row is the ops-facing headline: every
    // class at once, still completing, still deterministic.
    let mut table = Table::new(
        "GCN/Products, FastGL policy; one fault class per row vs a clean run",
        &[
            "fault plan",
            "sim epoch time",
            "slowdown",
            "h2d bytes",
            "fault overhead",
            "recoveries",
        ],
    );
    // Transfer faults need a transfer to hit: on a fully cached profile
    // the clean run moves zero feature bytes, so the stall/retry rows
    // ride on mild OOM pressure (compare them against the oom-only row
    // to attribute their cost).
    let plans = [
        ("(none)", None),
        ("oom@epoch=0:0.25", Some("oom@epoch=0:0.25")),
        (
            "oom + pcie_stall@batch=1:8",
            Some("oom@epoch=0:0.25,pcie_stall@batch=1:8"),
        ),
        (
            "oom + transfer_error@batch=1:3",
            Some("oom@epoch=0:0.25,transfer_error@batch=1:3"),
        ),
        ("worker_panic@window=0", Some("worker_panic@window=0")),
        (
            "all classes",
            Some("pcie_stall@batch=1:8,transfer_error@batch=2:3,oom@epoch=0:0.5,worker_panic@window=0"),
        ),
    ];
    for (label, plan) in plans {
        let mut cfg = base_config(scale);
        if let Some(p) = plan {
            cfg = cfg.with_faults(p.parse::<FaultPlan>().expect("bench plan parses"));
        }
        let mut sys = FastGl::new(cfg.clone());
        let s = sys.run_epochs(&data, scale.epochs);
        let res = sys.resilience_stats();
        // The determinism contract under faults: a re-run at a different
        // prefetch depth reproduces both the statistics and the counters.
        let mut rerun = FastGl::new(cfg.with_prefetch_windows(2).with_threads(2));
        let s2 = rerun.run_epochs(&data, scale.epochs);
        assert_eq!(s, s2, "faulted run diverged across pipeline settings");
        assert_eq!(res, rerun.resilience_stats(), "counters diverged");
        table.push_row(vec![
            label.to_string(),
            fmt_secs(s.total().as_secs_f64()),
            fmt_ratio(s.total().as_secs_f64() / clean.total().as_secs_f64()),
            fmt_bytes(s.bytes_h2d),
            fmt_secs(res.fault_overhead.as_secs_f64()),
            format!(
                "{} stalls, {} retries, {} panics, {} replays, {} rows evicted",
                res.pcie_stalls,
                res.transfer_retries,
                res.worker_panics,
                res.stage_replays,
                res.evicted_rows
            ),
        ]);
    }
    report.tables.push(table);

    // Degradation curve: sweep the evicted fraction. Lost cache hits
    // become PCIe feature loads, so IO time and h2d bytes rise while the
    // epoch still completes — graceful degradation, not an abort.
    let mut curve = Table::new(
        "Cache pressure sweep: oom@epoch=0 at increasing evicted fraction",
        &[
            "evicted fraction",
            "rows evicted",
            "sim epoch time",
            "io time",
            "h2d bytes",
            "cache hit rate",
        ],
    );
    for fraction in ["0.25", "0.5", "0.75", "1.0"] {
        let plan: FaultPlan = format!("oom@epoch=0:{fraction}")
            .parse()
            .expect("bench plan parses");
        let mut sys = FastGl::new(base_config(scale).with_faults(plan));
        let s = sys.run_epochs(&data, scale.epochs);
        let res = sys.resilience_stats();
        let hits = s.rows_reused + s.rows_cached;
        let hit_rate = hits as f64 / (hits + s.rows_loaded).max(1) as f64;
        curve.push_row(vec![
            fraction.to_string(),
            res.evicted_rows.to_string(),
            fmt_secs(s.total().as_secs_f64()),
            fmt_secs(s.breakdown.io.as_secs_f64()),
            fmt_bytes(s.bytes_h2d),
            fmt_pct(hit_rate),
        ]);
    }
    report.tables.push(curve);
    report.note(
        "Expected shape: stalls and transfer retries add pure overhead \
         (same h2d bytes for stalls, extra wasted-copy bytes for \
         retries); worker panics cost one window replay and leave the \
         simulated statistics untouched; OOM pressure is the interesting \
         curve — each step of evicted fraction converts cache hits into \
         PCIe loads, so h2d bytes and IO time climb monotonically while \
         the run still completes. Every row is asserted bit-identical \
         across prefetch depth and thread count, faults included.",
    );
    report
}
