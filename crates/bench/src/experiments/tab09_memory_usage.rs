//! Table 9: GPU memory usage — DGL vs FastGL.
//!
//! Match-Reorder must not cost device memory; this table confirms FastGL's
//! peak usage is comparable to (slightly below) DGL's on every graph.

use crate::experiments::base_config;
use crate::report::{fmt_bytes, Report, Table};
use crate::scale::BenchScale;
use fastgl_baselines::SystemKind;
use fastgl_graph::Dataset;

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "tab09_memory_usage",
        "Table 9: peak modelled GPU memory, GCN on 1 GPU",
    );
    let mut table = Table::new(
        "Peak per-iteration working set (cache disabled for both, as the \
         paper compares the uncached cores)",
        &["graph", "DGL", "FastGL", "FastGL/DGL"],
    );
    for dataset in Dataset::ALL {
        let data = scale.bundle(dataset);
        let cfg = base_config(scale).with_gpus(1).with_cache_ratio(0.0);
        let dgl = SystemKind::Dgl
            .build(cfg.clone())
            .run_epochs(&data, scale.epochs)
            .peak_memory_bytes;
        let fast = SystemKind::FastGl
            .build(cfg)
            .run_epochs(&data, scale.epochs)
            .peak_memory_bytes;
        table.push_row(vec![
            dataset.short_name().into(),
            fmt_bytes(dgl),
            fmt_bytes(fast),
            format!("{:.3}", fast as f64 / dgl as f64),
        ]);
    }
    report.tables.push(table);
    report.note(
        "Paper shape: the two systems' memory usage is comparable on every \
         graph (FastGL slightly lower on some) — Match-Reorder reuses the \
         previous batch's necessarily-resident buffer instead of allocating \
         a cache, and only the current subgraph's topology lives on-device.",
    );
    report
}
