//! Table 4: average match degree and spread between sampled mini-batches.
//!
//! The premise of Match-Reorder: complex topology makes different sampled
//! subgraphs share most of their nodes (up to 93 % on Reddit), and match
//! degrees vary enough (ΔM of a few percent) that ordering matters.

use crate::experiments::base_config;
use crate::report::{fmt_pct, Report, Table};
use crate::scale::BenchScale;
use fastgl_core::sampler::SamplerEngine;
use fastgl_graph::{Dataset, DeterministicRng, NodeId};
use fastgl_sample::overlap::{match_degree_matrix, summarize_matrix};
use fastgl_sample::MinibatchPlan;

/// Paper Table 4 reference values: (graph, Avg(M_ij), ΔM).
pub const PAPER_MATCH_DEGREE: [(&str, f64, f64); 4] = [
    ("RD", 0.932, 0.049),
    ("PR", 0.714, 0.070),
    ("MAG", 0.353, 0.042),
    ("PA", 0.380, 0.053),
];

/// Samples a window of mini-batches and summarises its match degrees.
pub fn measure(scale: &BenchScale, dataset: Dataset, window: usize) -> (f64, f64) {
    let data = scale.bundle(dataset);
    let cfg = base_config(scale);
    let sampler = SamplerEngine::new(&cfg);
    let plan = MinibatchPlan::new(data.train_nodes(), scale.batch_size as usize, scale.seed, 0);
    let mut rng = DeterministicRng::seed(scale.seed ^ 4);
    let sets: Vec<Vec<NodeId>> = plan
        .iter()
        .take(window)
        .map(|seeds| {
            sampler
                .sample_batch(&data.graph, seeds, &mut rng)
                .0
                .sorted_global_ids()
                .to_vec()
        })
        .collect();
    let summary = summarize_matrix(&match_degree_matrix(&sets));
    (summary.average, summary.spread)
}

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "tab04_match_degree",
        "Table 4: average match degree and ΔM across sampled mini-batches",
    );
    let mut table = Table::new(
        "Uniform sampling, one reorder window",
        &["graph", "Avg(Mij)", "ΔM", "paper Avg", "paper ΔM"],
    );
    for (dataset, (short, p_avg, p_spread)) in Dataset::CORE4.iter().zip(PAPER_MATCH_DEGREE) {
        assert_eq!(dataset.short_name(), short);
        let (avg, spread) = measure(scale, *dataset, 10);
        table.push_row(vec![
            dataset.short_name().into(),
            fmt_pct(avg),
            fmt_pct(spread),
            fmt_pct(p_avg),
            fmt_pct(p_spread),
        ]);
    }
    report.tables.push(table);
    report.note(
        "Paper shape: Reddit's dense topology gives the highest overlap, \
         Products is high, the big sparse graphs (MAG, PA) sit lower but \
         still substantial; ΔM is a few percent everywhere, so the greedy \
         reorder has signal to exploit.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_degrees_are_valid_and_ranked() {
        let scale = crate::scale::BenchScale::quick();
        let (rd_avg, rd_spread) = measure(&scale, Dataset::Reddit, 5);
        let (pa_avg, pa_spread) = measure(&scale, Dataset::Papers100M, 5);
        for v in [rd_avg, rd_spread, pa_avg, pa_spread] {
            assert!((0.0..=1.0).contains(&v), "{v}");
        }
        // The paper's ordering: dense Reddit overlaps more than sparse PA.
        assert!(rd_avg > pa_avg, "RD {rd_avg} vs PA {pa_avg}");
    }

    #[test]
    fn paper_reference_values_match_table4() {
        assert_eq!(PAPER_MATCH_DEGREE[0], ("RD", 0.932, 0.049));
        assert_eq!(PAPER_MATCH_DEGREE[3], ("PA", 0.380, 0.053));
    }
}
