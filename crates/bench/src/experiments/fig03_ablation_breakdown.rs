//! Figure 3: staged breakdown on Products — Naive → +MR → +MR+MA → FastGL.
//!
//! The motivation figure: starting from DGL ('Naive'), each FastGL
//! technique removes the then-dominant phase: Match-Reorder shrinks memory
//! IO, Memory-Aware shrinks computation, Fused-Map shrinks sampling.

use crate::experiments::base_config;
use crate::report::{fmt_secs, Report, Table};
use crate::scale::BenchScale;
use fastgl_core::{ComputeMode, FastGl, FastGlConfig, IdMapKind, TrainingSystem};
use fastgl_gnn::ModelKind;
use fastgl_graph::Dataset;

/// The four staged variants of Fig. 3, from a base configuration.
pub fn staged_variants(base: &FastGlConfig) -> Vec<(&'static str, FastGlConfig)> {
    let naive = {
        let mut c = base.clone();
        c.enable_match = false;
        c.enable_reorder = false;
        c.compute_mode = ComputeMode::Naive;
        c.id_map = IdMapKind::Baseline;
        c.cache_ratio = Some(0.0);
        c
    };
    let mr = {
        let mut c = naive.clone();
        c.enable_match = true;
        c.enable_reorder = true;
        c
    };
    let mr_ma = {
        let mut c = mr.clone();
        c.compute_mode = ComputeMode::MemoryAware;
        c
    };
    let fastgl = {
        let mut c = mr_ma.clone();
        c.id_map = IdMapKind::Fused;
        c
    };
    vec![
        ("Naive", naive),
        ("Naive+MR", mr),
        ("Naive+MR+MA", mr_ma),
        ("FastGL", fastgl),
    ]
}

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "fig03_ablation_breakdown",
        "Fig. 3: staged phase breakdown of GCN and GIN on Products (2 GPUs)",
    );
    let data = scale.bundle(Dataset::Products);
    for model in [ModelKind::Gcn, ModelKind::Gin] {
        let mut table = Table::new(
            format!("{model} on Products"),
            &["variant", "sample", "io", "compute", "total"],
        );
        let base = base_config(scale).with_model(model);
        for (name, cfg) in staged_variants(&base) {
            let mut sys = FastGl::new(cfg);
            let s = sys.run_epochs(&data, scale.epochs);
            table.push_row(vec![
                name.into(),
                fmt_secs(s.breakdown.sample.as_secs_f64()),
                fmt_secs(s.breakdown.io.as_secs_f64()),
                fmt_secs(s.breakdown.compute.as_secs_f64()),
                fmt_secs(s.total().as_secs_f64()),
            ]);
        }
        report.tables.push(table);
    }
    report.note(
        "Paper claim: each stage removes the then-dominant phase — MR cuts \
         the IO column, MA cuts the compute column, FM cuts the sample \
         column; the total falls monotonically.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgl_core::SampleDevice;

    #[test]
    fn staged_variants_toggle_exactly_one_knob_each() {
        let base = FastGlConfig::default();
        let variants = staged_variants(&base);
        assert_eq!(variants.len(), 4);
        let (names, configs): (Vec<_>, Vec<_>) = variants.into_iter().unzip();
        assert_eq!(names, ["Naive", "Naive+MR", "Naive+MR+MA", "FastGL"]);
        // Naive is the DGL-equivalent.
        assert!(!configs[0].enable_match);
        assert_eq!(configs[0].compute_mode, ComputeMode::Naive);
        assert_eq!(configs[0].id_map, IdMapKind::Baseline);
        // Each stage flips exactly its own feature.
        assert!(configs[1].enable_match && configs[1].enable_reorder);
        assert_eq!(configs[1].compute_mode, ComputeMode::Naive);
        assert_eq!(configs[2].compute_mode, ComputeMode::MemoryAware);
        assert_eq!(configs[2].id_map, IdMapKind::Baseline);
        assert_eq!(configs[3].id_map, IdMapKind::Fused);
        // Every variant samples on the GPU with the cache disabled.
        for c in &configs {
            assert_eq!(c.sample_device, SampleDevice::Gpu);
            assert_eq!(c.cache_ratio, Some(0.0));
            c.validate().unwrap();
        }
    }
}
