//! Table 7: Match-Reorder under the PinSAGE random-walk sampler.
//!
//! Demonstrates that the IO savings are not an artefact of fanout
//! sampling: with length-3 random walks (PinSAGE's setting), Match and
//! Reorder still cut memory-IO time versus DGL.

use crate::experiments::base_config;
use crate::report::{fmt_ratio, fmt_secs, Report, Table};
use crate::scale::BenchScale;
use fastgl_core::{FastGl, TrainingSystem};
use fastgl_graph::Dataset;

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "tab07_random_walk",
        "Table 7: memory-IO time with the random-walk sampler (GCN, 1 GPU)",
    );
    let mut table = Table::new(
        "Normalized speedups in parentheses, as the paper prints them",
        &["graph", "DGL", "FastGL-nG", "FastGL"],
    );
    for dataset in Dataset::CORE4 {
        let data = scale.bundle(dataset);
        let base = base_config(scale)
            .with_gpus(1)
            .with_cache_ratio(0.0)
            .with_random_walk();
        let mut dgl_cfg = base.clone();
        dgl_cfg.enable_match = false;
        dgl_cfg.enable_reorder = false;
        let mut ng = base.clone(); // 'no Greedy reorder'
        ng.enable_reorder = false;
        let full = base;
        let t_dgl = FastGl::new(dgl_cfg)
            .run_epochs(&data, scale.epochs)
            .breakdown
            .io
            .as_secs_f64();
        let t_ng = FastGl::new(ng)
            .run_epochs(&data, scale.epochs)
            .breakdown
            .io
            .as_secs_f64();
        let t_full = FastGl::new(full)
            .run_epochs(&data, scale.epochs)
            .breakdown
            .io
            .as_secs_f64();
        table.push_row(vec![
            dataset.short_name().into(),
            format!("{} ({})", fmt_secs(t_dgl), fmt_ratio(1.0)),
            format!("{} ({})", fmt_secs(t_ng), fmt_ratio(t_dgl / t_ng)),
            format!("{} ({})", fmt_secs(t_full), fmt_ratio(t_dgl / t_full)),
        ]);
    }
    report.tables.push(table);
    report.note(
        "Paper shape: FastGL-nG (Match only) already beats DGL (1.1x-2.6x) \
         and the greedy Reorder adds a further margin on every graph, with \
         the densest graph (RD) benefiting most.",
    );
    report
}
