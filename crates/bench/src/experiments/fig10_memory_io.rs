//! Figure 10: memory-IO time under (a) varying cache ratios vs GNNLab and
//! (b) the greedy Reorder ablation.

use crate::experiments::base_config;
use crate::report::{fmt_secs, Report, Table};
use crate::scale::BenchScale;
use fastgl_baselines::GnnLabSystem;
use fastgl_core::{FastGl, TrainingSystem};
use fastgl_graph::Dataset;

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "fig10_memory_io",
        "Fig. 10: memory-IO time vs cache ratio (a) and the Reorder ablation (b)",
    );

    // (a) GCN on Products: sweep the cache ratio.
    let data = scale.bundle(Dataset::Products);
    let mut a = Table::new(
        "(a) GCN/Products memory-IO time per epoch vs cache ratio",
        &["cache ratio", "GNNLab", "FastGL"],
    );
    for ratio in [0.0, 0.1, 0.3, 0.5, 0.7, 0.9] {
        let mut lab = GnnLabSystem::with_cache_ratio(base_config(scale), ratio);
        let mut fast = FastGl::new(base_config(scale).with_cache_ratio(ratio));
        let io_lab = lab.run_epochs(&data, scale.epochs).breakdown.io;
        let io_fast = fast.run_epochs(&data, scale.epochs).breakdown.io;
        a.push_row(vec![
            format!("{ratio:.1}"),
            fmt_secs(io_lab.as_secs_f64()),
            fmt_secs(io_fast.as_secs_f64()),
        ]);
    }
    report.tables.push(a);

    // (b) Reorder ablation on one GPU across datasets.
    let mut b = Table::new(
        "(b) GCN memory-IO time per epoch, 1 GPU (DGL vs Match-only vs Match+Reorder)",
        &[
            "graph",
            "DGL",
            "w/o reorder",
            "w/ reorder",
            "rows loaded w/o",
            "rows loaded w/",
        ],
    );
    for dataset in Dataset::CORE4 {
        let data = scale.bundle(dataset);
        let base = base_config(scale).with_gpus(1).with_cache_ratio(0.0);
        let mut dgl_cfg = base.clone();
        dgl_cfg.enable_match = false;
        dgl_cfg.enable_reorder = false;
        let mut match_only = base.clone();
        match_only.enable_reorder = false;
        let reordered = base;
        let s_dgl = FastGl::new(dgl_cfg).run_epochs(&data, scale.epochs);
        let s_m = FastGl::new(match_only).run_epochs(&data, scale.epochs);
        let s_r = FastGl::new(reordered).run_epochs(&data, scale.epochs);
        b.push_row(vec![
            dataset.short_name().into(),
            fmt_secs(s_dgl.breakdown.io.as_secs_f64()),
            fmt_secs(s_m.breakdown.io.as_secs_f64()),
            fmt_secs(s_r.breakdown.io.as_secs_f64()),
            s_m.rows_loaded.to_string(),
            s_r.rows_loaded.to_string(),
        ]);
    }
    report.tables.push(b);
    report.note(
        "Paper shape (a): below cache ratio ~0.5 FastGL's Match-Reorder \
         beats GNNLab's cache decisively; with abundant cache both converge \
         with FastGL keeping a minor edge. (b): Match alone already beats \
         DGL; adding the greedy Reorder removes up to ~25% more IO time and \
         reduces the number of loaded rows.",
    );
    report
}
