//! Ablation: Fused-Map hash-table load factor.
//!
//! The paper's Discussion argues Fused-Map scales to 2^64 nodes; the
//! practical scaling limit is the table's memory, which invites shrinking
//! it. This ablation sweeps the capacity headroom and measures the probe
//! blow-up linear probing suffers as the table fills — quantifying why
//! DGL-style tables (and ours) keep a 2x headroom.

use crate::experiments::base_config;
use crate::report::{fmt_secs, Report, Table};
use crate::scale::BenchScale;
use fastgl_core::sampler::SamplerEngine;
use fastgl_graph::{Dataset, DeterministicRng};
use fastgl_sample::{FusedIdMap, IdMap};

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "abl02_hash_load_factor",
        "Ablation: Fused-Map probe count vs hash-table headroom",
    );
    // One real sampled batch's concatenated ID stream from Products.
    let data = scale.bundle(Dataset::Products);
    let cfg = base_config(scale);
    let sampler = SamplerEngine::new(&cfg);
    let mut rng = DeterministicRng::seed(scale.seed ^ 21);
    let seeds: Vec<_> = data
        .train_nodes()
        .iter()
        .take(scale.batch_size as usize)
        .copied()
        .collect();
    let (sg, _) = sampler.sample_batch(&data.graph, &seeds, &mut rng);
    // A worst-case-ish stream: the subgraph's distinct nodes (unique keys
    // load the table fully, unlike duplicate-heavy hop streams).
    let ids: Vec<u64> = sg.nodes.iter().map(|n| n.0).collect();

    let mut table = Table::new(
        format!("{} distinct IDs from a sampled Products batch", ids.len()),
        &[
            "capacity factor",
            "table slots",
            "load factor",
            "probes",
            "probes/ID",
            "sim time",
        ],
    );
    for factor in [4.0, 2.0, 1.5, 1.2, 1.05] {
        let map = FusedIdMap::with_capacity_factor(factor);
        let out = map.map(&ids);
        let slots = ((ids.len() as f64 * factor).ceil() as usize)
            .max(2)
            .next_power_of_two();
        let load = out.stats.unique_ids as f64 / slots as f64;
        let sim_ns = out.stats.total_ids as f64 * cfg.system.cost.gpu_hash_op_ns
            + out.stats.probes as f64 * cfg.system.cost.gpu_probe_ns
            + out.stats.lookups as f64 * cfg.system.cost.gpu_lookup_ns;
        table.push_row(vec![
            format!("{factor:.2}"),
            slots.to_string(),
            format!("{load:.2}"),
            out.stats.probes.to_string(),
            format!("{:.2}", out.stats.probes as f64 / ids.len() as f64),
            fmt_secs(sim_ns * 1e-9),
        ]);
    }
    report.tables.push(table);
    report.note(
        "Expected shape: probes per ID stay near zero until the load factor \
         passes ~0.7, then grow super-linearly — the classic linear-probing \
         curve. The 2x headroom the systems use buys near-probe-free \
         operation for 2x table memory (16 bytes per processed ID).",
    );
    report
}
