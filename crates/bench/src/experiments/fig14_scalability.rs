//! Figure 14: scalability on GPUs, batch size, feature dimension, and
//! fanout/hop configuration (all on GCN over Products).

use crate::experiments::base_config;
use crate::report::{fmt_ratio, fmt_secs, Report, Table};
use crate::scale::BenchScale;
use fastgl_baselines::SystemKind;
use fastgl_graph::Dataset;

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "fig14_scalability",
        "Fig. 14: scalability of FastGL vs baselines (GCN on Products)",
    );
    let data = scale.bundle(Dataset::Products);

    // (a) Number of GPUs.
    let mut a = Table::new(
        "(a) epoch time vs number of GPUs (GNNLab needs ≥2)",
        &["GPUs", "DGL", "GNNLab", "FastGL", "FastGL self-speedup"],
    );
    let fast_1gpu = SystemKind::FastGl
        .build(base_config(scale).with_gpus(1))
        .run_epochs(&data, scale.epochs)
        .total()
        .as_secs_f64();
    for gpus in [1usize, 2, 4, 8] {
        let cfg = base_config(scale).with_gpus(gpus);
        let dgl = SystemKind::Dgl
            .build(cfg.clone())
            .run_epochs(&data, scale.epochs)
            .total()
            .as_secs_f64();
        let lab = if gpus >= 2 {
            fmt_secs(
                SystemKind::GnnLab
                    .build(cfg.clone())
                    .run_epochs(&data, scale.epochs)
                    .total()
                    .as_secs_f64(),
            )
        } else {
            "n/a".to_string()
        };
        let fast = SystemKind::FastGl
            .build(cfg)
            .run_epochs(&data, scale.epochs)
            .total()
            .as_secs_f64();
        a.push_row(vec![
            gpus.to_string(),
            fmt_secs(dgl),
            lab,
            fmt_secs(fast),
            fmt_ratio(fast_1gpu / fast),
        ]);
    }
    report.tables.push(a);

    // (b) Batch size.
    let mut b = Table::new(
        "(b) epoch time vs batch size (values scaled from the paper's 2k-12k)",
        &["batch", "DGL", "FastGL", "speedup"],
    );
    for batch in [64u64, 128, 192, 256, 384] {
        let cfg = base_config(scale).with_batch_size(batch);
        let dgl = SystemKind::Dgl
            .build(cfg.clone())
            .run_epochs(&data, scale.epochs)
            .total()
            .as_secs_f64();
        let fast = SystemKind::FastGl
            .build(cfg)
            .run_epochs(&data, scale.epochs)
            .total()
            .as_secs_f64();
        b.push_row(vec![
            batch.to_string(),
            fmt_secs(dgl),
            fmt_secs(fast),
            fmt_ratio(dgl / fast),
        ]);
    }
    report.tables.push(b);

    // (c) Feature dimension: regenerate Products with overridden widths.
    let mut c = Table::new(
        "(c) epoch time and compute time vs feature dimension",
        &[
            "dim",
            "DGL",
            "FastGL",
            "speedup",
            "DGL compute",
            "FastGL compute",
        ],
    );
    for dim in [64usize, 128, 256, 512] {
        let mut spec = Dataset::Products
            .spec()
            .scaled(scale.factor(Dataset::Products));
        spec.train_fraction =
            ((scale.target_batches * scale.batch_size) as f64 / spec.num_nodes as f64).min(0.66);
        spec.feature_dim = dim;
        let dim_data = spec.generate(scale.seed);
        let cfg = base_config(scale);
        let s_dgl = SystemKind::Dgl
            .build(cfg.clone())
            .run_epochs(&dim_data, scale.epochs);
        let s_fast = SystemKind::FastGl
            .build(cfg)
            .run_epochs(&dim_data, scale.epochs);
        c.push_row(vec![
            dim.to_string(),
            fmt_secs(s_dgl.total().as_secs_f64()),
            fmt_secs(s_fast.total().as_secs_f64()),
            fmt_ratio(s_dgl.total().as_secs_f64() / s_fast.total().as_secs_f64()),
            fmt_secs(s_dgl.breakdown.compute.as_secs_f64()),
            fmt_secs(s_fast.breakdown.compute.as_secs_f64()),
        ]);
    }
    report.tables.push(c);

    // (d) Fanouts / hops.
    let mut d = Table::new(
        "(d) epoch time and sample time vs fanout configuration",
        &[
            "fanouts",
            "DGL",
            "GNNLab",
            "FastGL",
            "DGL sample",
            "FastGL sample",
        ],
    );
    for fanouts in [vec![5usize, 10], vec![5, 10, 15], vec![5, 5, 10, 10]] {
        let label = format!("{fanouts:?}");
        let cfg = base_config(scale).with_fanouts(fanouts);
        let s_dgl = SystemKind::Dgl
            .build(cfg.clone())
            .run_epochs(&data, scale.epochs);
        let s_lab = SystemKind::GnnLab
            .build(cfg.clone())
            .run_epochs(&data, scale.epochs);
        let s_fast = SystemKind::FastGl
            .build(cfg)
            .run_epochs(&data, scale.epochs);
        d.push_row(vec![
            label,
            fmt_secs(s_dgl.total().as_secs_f64()),
            fmt_secs(s_lab.total().as_secs_f64()),
            fmt_secs(s_fast.total().as_secs_f64()),
            fmt_secs(s_dgl.breakdown.sample.as_secs_f64()),
            fmt_secs(s_fast.breakdown.sample.as_secs_f64()),
        ]);
    }
    report.tables.push(d);

    report.note(
        "Paper shapes: (a) FastGL scales better with GPU count than DGL \
         (5.93x vs 3.36x at 8 GPUs); (b) larger batches widen FastGL's \
         lead (more overlap to Match, more sampling for Fused-Map); (c) \
         speedups hold across feature widths; (d) deeper/wider sampling \
         grows the sample phase, where Fused-Map and the hidden-sampler \
         comparison with GNNLab play out.",
    );
    report
}
