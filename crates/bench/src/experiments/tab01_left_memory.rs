//! Table 1: GPU memory left over when training a 3-layer GCN (hidden 256,
//! batch 8000) — the paper's argument that cache-based systems starve.
//!
//! This table is computed analytically at the datasets' *full published
//! scale* (actually sampling a 111M-node graph is neither possible here
//! nor necessary): the neighbour-explosion estimator predicts the sampled
//! subgraph size, and the memory model prices the resulting working set
//! against the 3090's 24 GB.

use crate::report::{fmt_bytes, Report, Table};
use crate::scale::BenchScale;
use fastgl_core::memory_model::{estimate_batch_memory, estimate_unique_nodes};
use fastgl_gnn::{LayerWorkload, ModelConfig, ModelKind};
use fastgl_gpusim::DeviceSpec;
use fastgl_graph::Dataset;

/// The paper's Table 1 reference values (bytes) for comparison notes.
pub const PAPER_LEFT_MEMORY: [(&str, u64); 4] = [
    ("RD", 13 * 1024 * 1024 * 1024),
    ("PR", 11 * 1024 * 1024 * 1024),
    ("MAG", 520 * 1024 * 1024),
    ("PA", 1024 * 1024 * 1024),
];

/// Estimates the leftover memory for one dataset at full scale.
pub fn left_memory(dataset: Dataset) -> u64 {
    let spec = dataset.spec();
    let fanouts = [5usize, 10, 15];
    let batch = 8_000u64;
    let model =
        ModelConfig::paper(ModelKind::Gcn, spec.feature_dim, spec.num_classes).with_hidden(256);
    let dims = model.layer_dims();

    // Frontier sizes per hop for the workload census.
    let mut frontier = vec![batch.min(spec.num_nodes)];
    for k in 1..=fanouts.len() {
        frontier.push(estimate_unique_nodes(
            spec.num_nodes,
            spec.average_degree(),
            batch,
            &fanouts[..k],
        ));
    }
    // Blocks run widest first: layer i has dst = frontier[L-1-i],
    // src = frontier[L-i].
    let l = fanouts.len();
    let workloads: Vec<LayerWorkload> = (0..l)
        .map(|i| {
            let dst = frontier[l - 1 - i];
            let src = frontier[l - i];
            LayerWorkload {
                num_dst: dst,
                num_src_rows: src,
                nnz: dst * (fanouts[l - 1 - i] as u64 + 1),
                d_in: dims[i].0,
                d_out: dims[i].1,
            }
        })
        .collect();
    let subgraph_nodes = *frontier.last().expect("non-empty");
    let total_ids: u64 = workloads.iter().map(|w| w.num_dst + w.nnz).sum();
    let topology_bytes = workloads.iter().map(|w| 8 * (2 * w.num_dst + w.nnz)).sum();
    let est = estimate_batch_memory(
        &workloads,
        model.param_bytes(),
        subgraph_nodes,
        spec.feature_dim,
        topology_bytes,
        total_ids,
        0,
    );
    // Two DGL-runtime terms beyond the lean working set: per-edge message
    // buffers that autograd keeps for the backward scatter (4·nnz·d_out per
    // layer), and the CUDA caching allocator's fragmentation slack on a
    // workload this churny (~30 %).
    let messages: u64 = workloads.iter().map(|w| 4 * w.nnz * w.d_out as u64).sum();
    let used = ((est.total() - est.runtime + messages) as f64 * 1.3) as u64 + est.runtime;
    DeviceSpec::rtx3090().global_bytes.saturating_sub(used)
}

/// Runs the experiment.
pub fn run(_scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "tab01_left_memory",
        "Table 1: remaining GPU memory, 3-layer GCN, batch 8000, hidden 256 (full scale, analytic)",
    );
    let mut table = Table::new(
        "Left memory on a 24 GB RTX 3090",
        &["graph", "left memory (ours)", "left memory (paper)"],
    );
    for (dataset, (short, paper)) in Dataset::CORE4.iter().zip(PAPER_LEFT_MEMORY) {
        let ours = left_memory(*dataset);
        assert_eq!(dataset.short_name(), short);
        table.push_row(vec![
            dataset.short_name().into(),
            fmt_bytes(ours),
            fmt_bytes(paper),
        ]);
    }
    report.tables.push(table);
    report.note(
        "Paper claim: small graphs (RD, PR) leave >10 GB for a feature \
         cache; large graphs (MAG, PA) leave ~0.5-1 GB, starving \
         cache-based designs. The ordering and the >10x gap between the \
         two regimes are the reproduced shape.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_graphs_starve_small_graphs_do_not() {
        // The claim of Table 1: RD leaves cache room, MAG/PA leave ~none.
        let rd = left_memory(Dataset::Reddit);
        let mag = left_memory(Dataset::Mag);
        let pa = left_memory(Dataset::Papers100M);
        assert!(rd > 8 * 1024 * 1024 * 1024, "RD left {rd}");
        assert!(mag < 2 * 1024 * 1024 * 1024, "MAG left {mag}");
        assert!(pa < 2 * 1024 * 1024 * 1024, "PA left {pa}");
        assert!(rd > 10 * mag.max(1), "two-regime gap");
    }

    #[test]
    fn report_has_one_row_per_core_dataset() {
        let report = run(&crate::scale::BenchScale::quick());
        assert_eq!(report.tables.len(), 1);
        assert_eq!(report.tables[0].rows.len(), 4);
    }
}
