//! Discussion §7(3): where does the memory-IO bottleneck go as the
//! host–device link gets faster?
//!
//! The paper closes by observing that the memory IO phase has two stages —
//! (1) organise the scattered feature rows on the CPU, (2) copy them over
//! the interconnect — and predicts that on Grace-Hopper-class links
//! (900 GB/s vs PCIe 4.0's 32 GB/s) stage 2 stops mattering and stage 1
//! becomes the next bottleneck. This experiment (not a paper figure; it
//! reproduces the discussion's forecast) sweeps the link bandwidth and
//! splits the simulated IO time into its two stages.

use crate::experiments::base_config;
use crate::report::{fmt_pct, fmt_secs, Report, Table};
use crate::scale::BenchScale;
use fastgl_baselines::SystemKind;
use fastgl_gpusim::HostSpec;
use fastgl_graph::Dataset;

/// The interconnect generations swept.
pub fn interconnects() -> Vec<(&'static str, f64)> {
    vec![
        ("PCIe 4.0 x16", 32.0e9),
        ("PCIe 5.0 x16", 64.0e9),
        ("NVLink-C2C (half)", 450.0e9),
        ("Grace Hopper", 900.0e9),
    ]
}

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "disc01_future_bandwidth",
        "§7(3): the IO bottleneck shifts from the link to host-side organisation",
    );
    let data = scale.bundle(Dataset::Papers100M);
    let mut table = Table::new(
        "DGL on Papers100M: per-epoch IO split vs interconnect",
        &[
            "link",
            "bandwidth",
            "gather (stage 1)",
            "copy (stage 2)",
            "gather share",
            "epoch total",
        ],
    );
    for (name, bw) in interconnects() {
        let mut cfg = base_config(scale);
        cfg.system.host = HostSpec {
            pcie_bw: bw,
            ..HostSpec::pcie4()
        };
        let mut sys = SystemKind::Dgl.build(cfg.clone());
        let s = sys.run_epochs(&data, scale.epochs);
        // Split the IO phase analytically from the byte ledger: stage 1 is
        // the contended host gather, stage 2 the link copy plus latency.
        let trainer_gpus = cfg.system.num_gpus as f64;
        let gather = s.bytes_h2d as f64 / cfg.system.host.gather_bw * trainer_gpus;
        let copy = s.bytes_h2d as f64 / (bw * cfg.system.host.pcie_efficiency)
            + s.iterations as f64 * cfg.system.host.pcie_latency_ns as f64 * 1e-9;
        let share = gather / (gather + copy).max(1e-12);
        table.push_row(vec![
            name.into(),
            format!("{:.0} GB/s", bw / 1e9),
            fmt_secs(gather),
            fmt_secs(copy),
            fmt_pct(share),
            fmt_secs(s.total().as_secs_f64()),
        ]);
    }
    report.tables.push(table);
    report.note(
        "Paper forecast: at PCIe 4.0 the copy dominates IO; at Grace-Hopper \
         bandwidth the copy becomes negligible and the host-side gather \
         (stage 1) is nearly all of the remaining IO time — 'optimizing the \
         way data is organized on the CPU side' becomes the next frontier.",
    );
    report.note(
        "Match-Reorder remains useful at every bandwidth: it removes rows \
         from both stages, not just the link copy.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interconnect_sweep_is_ordered() {
        let links = interconnects();
        assert_eq!(links.len(), 4);
        assert!(links.windows(2).all(|w| w[0].1 < w[1].1));
        assert_eq!(links[0].1, 32.0e9);
        assert_eq!(links[3].1, 900.0e9);
    }
}
