//! One module per table/figure of the paper's evaluation section.
//!
//! Every experiment is a function `run(&BenchScale) -> Report`, registered
//! in [`all`] so the `all_experiments` binary can regenerate the complete
//! evaluation in one pass.

pub mod abl01_reorder_window;
pub mod abl02_hash_load_factor;
pub mod disc01_future_bandwidth;
pub mod disc02_devices;
pub mod fig01_breakdown;
pub mod fig03_ablation_breakdown;
pub mod fig09_overall;
pub mod fig10_memory_io;
pub mod fig11_compute;
pub mod fig12_roofline;
pub mod fig13_sample_time;
pub mod fig14_scalability;
pub mod fig15_speedup_ablation;
pub mod fig16_convergence;
pub mod insight_attrib;
pub mod pipeline_overlap;
pub mod resilience;
pub mod tab01_left_memory;
pub mod tab02_cache_hit;
pub mod tab03_memory_levels;
pub mod tab04_match_degree;
pub mod tab06_datasets;
pub mod tab07_random_walk;
pub mod tab08_id_map;
pub mod tab09_memory_usage;

use crate::report::Report;
use crate::scale::BenchScale;
use fastgl_core::FastGlConfig;

/// The base configuration every experiment starts from: the paper's GCN,
/// fanouts `[5, 10, 15]`, 2 GPUs, with the profile's batch size and seed.
pub fn base_config(scale: &BenchScale) -> FastGlConfig {
    FastGlConfig::default()
        .with_batch_size(scale.batch_size)
        .with_seed(scale.seed)
}

/// An experiment entry: id and runner.
pub type Experiment = (&'static str, fn(&BenchScale) -> Report);

/// Every experiment of the evaluation, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        ("fig01_breakdown", fig01_breakdown::run as _),
        (
            "fig03_ablation_breakdown",
            fig03_ablation_breakdown::run as _,
        ),
        ("tab01_left_memory", tab01_left_memory::run as _),
        ("tab02_cache_hit", tab02_cache_hit::run as _),
        ("tab03_memory_levels", tab03_memory_levels::run as _),
        ("tab04_match_degree", tab04_match_degree::run as _),
        ("tab06_datasets", tab06_datasets::run as _),
        ("fig09_overall", fig09_overall::run as _),
        ("fig10_memory_io", fig10_memory_io::run as _),
        ("tab07_random_walk", tab07_random_walk::run as _),
        ("fig11_compute", fig11_compute::run as _),
        ("fig12_roofline", fig12_roofline::run as _),
        ("fig13_sample_time", fig13_sample_time::run as _),
        ("tab08_id_map", tab08_id_map::run as _),
        ("fig14_scalability", fig14_scalability::run as _),
        ("fig15_speedup_ablation", fig15_speedup_ablation::run as _),
        ("tab09_memory_usage", tab09_memory_usage::run as _),
        ("fig16_convergence", fig16_convergence::run as _),
        ("disc01_future_bandwidth", disc01_future_bandwidth::run as _),
        ("disc02_devices", disc02_devices::run as _),
        ("abl01_reorder_window", abl01_reorder_window::run as _),
        ("abl02_hash_load_factor", abl02_hash_load_factor::run as _),
        ("BENCH_pipeline", pipeline_overlap::run as _),
        ("BENCH_resilience", resilience::run as _),
        ("INSIGHT_attribution", insight_attrib::run as _),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn registry_ids_match_modules_and_are_unique() {
        let ids: Vec<&str> = super::all().iter().map(|(id, _)| *id).collect();
        assert_eq!(ids.len(), 25);
        let set: std::collections::HashSet<&&str> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
    }
}
