//! Critical-path and memory-hierarchy attribution of a FastGL run.
//!
//! This is `fastgl-insight` driven end to end: run the full pipeline with
//! telemetry recording, then answer the two questions the paper's
//! analysis sections revolve around — *which stage binds each mini-batch
//! window* (Fig. 1's breakdown, but per window instead of per epoch, with
//! the overlap model's hidden time called out) and *which level of the
//! memory hierarchy served the bytes* (the §4.2/Fig. 10 story, folded
//! from the runtime counters).
//!
//! Every table except the wall-clock stall attribution is simulated and
//! deterministic, so this report diffs under `perfdiff`'s exact tier; the
//! per-window visible times sum to the epoch total to the nanosecond
//! (asserted here, and pinned by `fastgl-insight`'s integration tests).

use crate::experiments::base_config;
use crate::report::{fmt_bytes, fmt_pct, fmt_secs, Report, Table};
use crate::scale::BenchScale;
use fastgl_core::{
    CachePolicy, CacheRankPolicy, EpochStats, FastGl, Pipeline, PipelinePolicy, TrainingSystem,
};
use fastgl_graph::Dataset;
use fastgl_insight::critical_path::{self, BindingStage, CriticalPath};
use fastgl_insight::MemoryAttribution;

fn fmt_dur(t: fastgl_gpusim::SimTime) -> String {
    fmt_secs(t.as_secs_f64())
}

/// The binding-stage histogram as a table.
fn histogram_table(title: &str, cp: &CriticalPath) -> Table {
    let mut t = Table::new(
        title,
        &[
            "binding stage",
            "windows",
            "window share",
            "bound visible time",
            "time share",
        ],
    );
    let total_windows = cp.histogram.total().max(1);
    let total_time = cp.visible_total();
    for stage in BindingStage::all() {
        let bound = cp.bound_time(stage);
        t.push_row(vec![
            stage.name().into(),
            cp.histogram.count(stage).to_string(),
            fmt_pct(cp.histogram.count(stage) as f64 / total_windows as f64),
            fmt_dur(bound),
            fmt_pct(bound.as_secs_f64() / total_time.as_secs_f64().max(f64::MIN_POSITIVE)),
        ]);
    }
    t
}

/// The per-window attribution as a table.
fn window_table(title: &str, cp: &CriticalPath) -> Table {
    let mut t = Table::new(
        title,
        &[
            "window",
            "binding",
            "sample",
            "visible sample",
            "io",
            "compute",
            "visible total",
        ],
    );
    for w in &cp.windows {
        t.push_row(vec![
            w.index.to_string(),
            w.binding.name().into(),
            fmt_dur(w.phases.sample),
            fmt_dur(w.phases.visible_sample),
            fmt_dur(w.phases.io),
            fmt_dur(w.phases.compute),
            fmt_dur(w.phases.visible_total()),
        ]);
    }
    t
}

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Report {
    let mut report = Report::new(
        "INSIGHT_attribution",
        "fastgl-insight: per-window critical path and memory-hierarchy attribution",
    );
    let data = scale.bundle(Dataset::Products);

    // Record this run's counters regardless of the process-wide telemetry
    // setting, restoring it afterwards. The drain keeps our counters out
    // of any enclosing runner's export (and vice versa: the runner drains
    // after each experiment, so the buffer starts empty here).
    let telemetry_was_on = fastgl_telemetry::enabled();
    fastgl_telemetry::set_enabled(true);
    fastgl_telemetry::reset();

    // Small windows so the epoch splits into several pipelined windows.
    let mut cfg = base_config(scale).with_prefetch_windows(2);
    cfg.reorder_window = 2;
    let mut sys = FastGl::new(cfg);
    let mut last: Option<EpochStats> = None;
    for epoch in 0..scale.epochs {
        last = Some(sys.run_epoch(&data, epoch));
    }
    let snap = fastgl_telemetry::drain();
    fastgl_telemetry::set_enabled(telemetry_was_on);

    let stats = last.expect("at least one epoch");
    let cp = critical_path::analyze(sys.window_trace().expect("epoch ran"));
    // The attribution's core contract: visible per-window times reproduce
    // the epoch's reported accounting exactly, in integer nanoseconds.
    assert_eq!(
        cp.breakdown, stats.breakdown,
        "attribution must sum exactly"
    );

    report.tables.push(histogram_table(
        "FastGL/Products: binding stage per window (last epoch)",
        &cp,
    ));
    report.tables.push(window_table(
        "FastGL/Products: per-window visible phases (last epoch)",
        &cp,
    ));

    // The same attribution under GNNLab's factored design, where a
    // dedicated sampler GPU hides sampling behind training: the overlap
    // model's hidden time shows up and the binding shifts off `sample`.
    let overlap_policy = PipelinePolicy {
        use_match: false,
        use_reorder: false,
        cache: CachePolicy::None,
        sampler_gpus: 1,
        overlap_sample: true,
        cache_rank: CacheRankPolicy::Degree,
    };
    let mut overlap_cfg = base_config(scale);
    overlap_cfg.reorder_window = 2;
    let mut factored = Pipeline::new("factored", overlap_cfg, overlap_policy);
    let overlap_stats = factored.run_epoch(&data, 0);
    let overlap_cp = critical_path::analyze(factored.window_trace().expect("epoch ran"));
    assert_eq!(overlap_cp.breakdown, overlap_stats.breakdown);

    let mut overlap_table = Table::new(
        "Overlap model: visible vs hidden sampling",
        &[
            "pipeline",
            "raw sample",
            "visible sample",
            "hidden sample",
            "epoch total",
        ],
    );
    for (name, c) in [
        ("fastgl (no overlap)", &cp),
        ("factored (1 sampler GPU)", &overlap_cp),
    ] {
        let raw: fastgl_gpusim::SimTime = c.windows.iter().map(|w| w.phases.sample).sum();
        overlap_table.push_row(vec![
            name.into(),
            fmt_dur(raw),
            fmt_dur(c.breakdown.sample),
            fmt_dur(c.hidden_sample),
            fmt_dur(c.visible_total()),
        ]);
    }
    report.tables.push(overlap_table);
    report.tables.push(histogram_table(
        "Factored pipeline: binding stage per window",
        &overlap_cp,
    ));

    // Memory hierarchy: fold the run's counters into the per-level view.
    let mem = MemoryAttribution::from_snapshot(&snap);
    let mut mem_table = Table::new(
        "Memory hierarchy: bytes served per level (FastGL run)",
        &["level", "bytes", "share of device traffic"],
    );
    for (level, bytes) in mem.levels() {
        let share = if level == "PCIe" {
            "-".to_string()
        } else {
            fmt_pct(mem.device_share(bytes))
        };
        mem_table.push_row(vec![level.into(), fmt_bytes(bytes), share]);
    }
    report.tables.push(mem_table);

    let mut derived = Table::new(
        "Memory hierarchy: derived rates and savings",
        &["metric", "value"],
    );
    for (metric, value) in [
        (
            "on-chip service rate (shared+L1+L2)",
            fmt_pct(mem.on_chip_rate()),
        ),
        ("feature-cache hit rate", fmt_pct(mem.cache_hit_rate())),
        ("PCIe bytes as run", fmt_bytes(mem.bytes_pcie)),
        (
            "PCIe bytes saved by match-reorder",
            fmt_bytes(mem.bytes_reuse_saved),
        ),
        (
            "PCIe bytes saved by feature cache",
            fmt_bytes(mem.bytes_cache_saved),
        ),
        (
            "PCIe bytes without either",
            fmt_bytes(mem.pcie_bytes_unoptimized()),
        ),
        ("PCIe savings rate", fmt_pct(mem.pcie_savings_rate())),
        ("aggregation flops", mem.flops.to_string()),
        ("kernel launches", mem.kernel_launches.to_string()),
        ("feature rows loaded", mem.rows_loaded.to_string()),
    ] {
        derived.push_row(vec![metric.into(), value]);
    }
    report.tables.push(derived);

    // Wall-clock stall attribution: why each executor stage waited. The
    // "wall"-headed columns keep this out of perfdiff's exact tier —
    // these numbers are machine- and scheduling-dependent by nature.
    if let Some(wall) = sys.pipeline_wall_stats() {
        let mut stall_table = Table::new(
            "Pipelined executor: wall-clock stall attribution (machine-dependent)",
            &[
                "stage",
                "wall busy",
                "wall stall-in",
                "wall stall-out",
                "wall verdict",
            ],
        );
        for a in critical_path::attribute_wall(&wall) {
            stall_table.push_row(vec![
                a.stage.into(),
                fmt_secs(a.busy.as_secs_f64()),
                fmt_secs(a.stall_in.as_secs_f64()),
                fmt_secs(a.stall_out.as_secs_f64()),
                a.verdict.name().into(),
            ]);
        }
        report.tables.push(stall_table);
    }

    report.note(
        "Expected shape: without dedicated samplers every window's \
         sampling is visible (hidden sample = 0) and the binding stage \
         tracks the dominant phase of the epoch breakdown; the factored \
         pipeline hides most sampling behind training, so its binding \
         histogram shifts toward io/compute and the hidden-sample column \
         is non-zero. The memory tables fold the gpusim byte taxonomy: \
         Memory-Aware aggregation keeps the on-chip service rate high, \
         and Match-Reorder plus the feature cache cut the would-be PCIe \
         traffic by the savings rate. All tables except the wall-clock \
         stall attribution are simulated and bit-reproducible; perfdiff \
         gates them under the exact tier.",
    );
    report
}
