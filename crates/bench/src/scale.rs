//! Experiment scale profiles.
//!
//! The paper evaluates on graphs with up to 111M nodes and a batch size of
//! 8000. The scaled stand-ins keep each dataset's degree structure and
//! relative proportions while shrinking node counts to what a CPU-only
//! machine simulates in seconds. Batch size and training fraction are
//! scaled so the *batches-per-epoch* count stays in the paper's range
//! (≈10–50), which is what the Match-Reorder window mechanics depend on.

use fastgl_graph::{Dataset, DatasetBundle};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// A scale profile for experiment runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchScale {
    /// Multiplier applied on top of each dataset's per-dataset scale.
    pub extra_factor: f64,
    /// Mini-batch size (the paper's 8000, scaled).
    pub batch_size: u64,
    /// Target mini-batches per epoch; the training fraction adapts to hit
    /// it, keeping epoch structure in the paper's range at reduced scale.
    pub target_batches: u64,
    /// Epochs averaged per measurement (the paper averages 20).
    pub epochs: u64,
    /// Base random seed.
    pub seed: u64,
}

impl BenchScale {
    /// The default profile used by the experiment binaries.
    pub fn default_profile() -> Self {
        Self {
            extra_factor: 1.0,
            batch_size: 256,
            target_batches: 16,
            epochs: 2,
            seed: 0xFA57,
        }
    }

    /// A fast smoke profile for tests (`FASTGL_QUICK=1`).
    pub fn quick() -> Self {
        Self {
            extra_factor: 0.25,
            batch_size: 64,
            target_batches: 6,
            epochs: 1,
            seed: 0xFA57,
        }
    }

    /// Reads the profile from the environment (`FASTGL_QUICK`).
    pub fn from_env() -> Self {
        if std::env::var("FASTGL_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            Self::quick()
        } else {
            Self::default_profile()
        }
    }

    /// Per-dataset base scale factor, chosen so stand-ins land between
    /// roughly 8k and 60k nodes (Reddit stays smaller because its average
    /// degree of ~470 makes even small instances expensive).
    pub fn base_factor(dataset: Dataset) -> f64 {
        match dataset {
            Dataset::Reddit => 1.0 / 32.0,
            Dataset::Products => 1.0 / 64.0,
            Dataset::Mag => 1.0 / 128.0,
            Dataset::IgbLarge => 1.0 / 1024.0,
            Dataset::Papers100M => 1.0 / 1024.0,
        }
    }

    /// The effective scale of `dataset` under this profile.
    pub fn factor(&self, dataset: Dataset) -> f64 {
        (Self::base_factor(dataset) * self.extra_factor).min(1.0)
    }

    /// Generates (or fetches from the process-wide cache) the scaled bundle
    /// of `dataset`, with the profile's training fraction applied.
    pub fn bundle(&self, dataset: Dataset) -> DatasetBundle {
        static CACHE: OnceLock<Mutex<HashMap<(Dataset, u64), DatasetBundle>>> = OnceLock::new();
        let key = (dataset, (self.factor(dataset) * 1e9) as u64 ^ self.seed);
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(b) = cache.lock().expect("cache poisoned").get(&key) {
            return b.clone();
        }
        let mut spec = dataset.spec().scaled(self.factor(dataset));
        spec.train_fraction =
            ((self.target_batches * self.batch_size) as f64 / spec.num_nodes as f64).min(0.66);
        let bundle = spec.generate(self.seed);
        cache
            .lock()
            .expect("cache poisoned")
            .insert(key, bundle.clone());
        bundle
    }
}

impl Default for BenchScale {
    fn default() -> Self {
        Self::default_profile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundles_are_cached_and_consistent() {
        let scale = BenchScale::quick();
        let a = scale.bundle(Dataset::Products);
        let b = scale.bundle(Dataset::Products);
        assert_eq!(a.graph, b.graph);
        assert!(a.graph.num_nodes() > 1_000);
    }

    #[test]
    fn batches_per_epoch_near_target() {
        let scale = BenchScale::quick();
        for d in [Dataset::Products, Dataset::Mag] {
            let b = scale.bundle(d);
            let batches = b.train_nodes().len() as u64 / scale.batch_size;
            assert!(
                batches >= scale.target_batches / 2 && batches <= scale.target_batches + 2,
                "{d}: {batches} batches per epoch (target {})",
                scale.target_batches
            );
        }
    }

    #[test]
    fn quick_profile_is_smaller() {
        let q = BenchScale::quick();
        let d = BenchScale::default_profile();
        assert!(q.factor(Dataset::Products) < d.factor(Dataset::Products));
    }
}
