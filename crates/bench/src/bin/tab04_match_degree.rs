//! Regenerates the paper artefact `tab04_match_degree` and writes its CSV/JSON
//! artifacts to `results/`. Set `FASTGL_QUICK=1` for a fast smoke run.

fn main() {
    let scale = fastgl_bench::BenchScale::from_env();
    let report = fastgl_bench::experiments::tab04_match_degree::run(&scale);
    fastgl_bench::emit::finish(&report);
}
