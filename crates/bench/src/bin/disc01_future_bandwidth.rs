//! Regenerates the §7 discussion experiment `disc01_future_bandwidth` and
//! writes its CSVs to `results/`. Set `FASTGL_QUICK=1` for a smoke run.

fn main() {
    let scale = fastgl_bench::BenchScale::from_env();
    let report = fastgl_bench::experiments::disc01_future_bandwidth::run(&scale);
    fastgl_bench::emit::finish(&report);
}
