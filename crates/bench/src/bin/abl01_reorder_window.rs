//! Regenerates the ablation `abl01_reorder_window` and writes its CSVs to `results/`.
//! Set `FASTGL_QUICK=1` for a fast smoke run.

fn main() {
    let scale = fastgl_bench::BenchScale::from_env();
    let report = fastgl_bench::experiments::abl01_reorder_window::run(&scale);
    fastgl_bench::emit::finish(&report);
}
