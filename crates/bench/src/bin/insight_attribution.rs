//! Regenerates the `INSIGHT_attribution` report (critical-path and
//! memory-hierarchy attribution of a FastGL run) and writes its CSV/JSON
//! artifacts to `results/`. Set `FASTGL_QUICK=1` for a fast smoke run.

fn main() {
    let scale = fastgl_bench::BenchScale::from_env();
    let report = fastgl_bench::experiments::insight_attrib::run(&scale);
    fastgl_bench::emit::finish(&report);
}
