//! Benchmarks the asynchronous window pipeline (`BENCH_pipeline`): wall
//! epoch time and per-stage busy/stall at prefetch depths 0/1/2/4, with
//! simulated results asserted bit-identical across depths.
//! Set `FASTGL_QUICK=1` for a fast smoke run.

fn main() {
    let scale = fastgl_bench::BenchScale::from_env();
    let report = fastgl_bench::experiments::pipeline_overlap::run(&scale);
    fastgl_bench::emit::finish(&report);
}
