//! Regenerates the cross-device extension study `disc02_devices` and
//! writes its CSVs to `results/`. Set `FASTGL_QUICK=1` for a smoke run.

fn main() {
    let scale = fastgl_bench::BenchScale::from_env();
    let report = fastgl_bench::experiments::disc02_devices::run(&scale);
    fastgl_bench::emit::finish(&report);
}
