//! The perf-regression gate: diffs freshly generated `results/*.json`
//! reports against a committed baseline directory.
//!
//! ```text
//! perfdiff --baseline results/quick --candidate /tmp/fresh \
//!          [--wall-tol 0.5] [--markdown perfdiff.md]
//! ```
//!
//! Simulated cells must match **exactly** (they are deterministic by the
//! workspace's test suite); wall-clock cells (headers containing `wall`)
//! are only compared when `--wall-tol <fraction>` opts in, direction
//! aware. Reports whose provenance stamps carry different scale profiles
//! are refused rather than mis-diffed.
//!
//! Exit codes: `0` clean, `1` regressions found, `2` usage error or
//! incomparable runs.

use fastgl_insight::perfdiff::{diff_dirs, DiffOptions};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    baseline: PathBuf,
    candidate: PathBuf,
    opts: DiffOptions,
    markdown: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: perfdiff --baseline <dir> --candidate <dir> \
     [--wall-tol <fraction>] [--markdown <file>]"
}

fn parse_args() -> Result<Args, String> {
    let mut baseline = None;
    let mut candidate = None;
    let mut wall_tol = None;
    let mut markdown = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(value()?)),
            "--candidate" => candidate = Some(PathBuf::from(value()?)),
            "--markdown" => markdown = Some(PathBuf::from(value()?)),
            "--wall-tol" => {
                let raw = value()?;
                let tol: f64 = raw
                    .parse()
                    .map_err(|_| format!("--wall-tol wants a fraction, got '{raw}'"))?;
                if !(tol >= 0.0 && tol.is_finite()) {
                    return Err(format!(
                        "--wall-tol must be a finite fraction >= 0, got {tol}"
                    ));
                }
                wall_tol = Some(tol);
            }
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    Ok(Args {
        baseline: baseline.ok_or_else(|| format!("--baseline is required\n{}", usage()))?,
        candidate: candidate.ok_or_else(|| format!("--candidate is required\n{}", usage()))?,
        opts: DiffOptions { wall_tol },
        markdown,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perfdiff: {e}");
            return ExitCode::from(2);
        }
    };
    let summary = match diff_dirs(&args.baseline, &args.candidate, &args.opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("perfdiff: {e}");
            return ExitCode::from(2);
        }
    };
    let markdown = summary.to_markdown();
    print!("{markdown}");
    if let Some(path) = &args.markdown {
        if let Err(e) = std::fs::write(path, &markdown) {
            eprintln!("perfdiff: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if summary.has_regressions() {
        ExitCode::from(1)
    } else if summary.has_incompatible() {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
