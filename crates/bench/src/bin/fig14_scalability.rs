//! Regenerates the paper artefact `fig14_scalability` and writes its CSV/JSON
//! artifacts to `results/`. Set `FASTGL_QUICK=1` for a fast smoke run.

fn main() {
    let scale = fastgl_bench::BenchScale::from_env();
    let report = fastgl_bench::experiments::fig14_scalability::run(&scale);
    fastgl_bench::emit::finish(&report);
}
