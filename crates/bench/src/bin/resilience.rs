//! Benchmarks fault-injection recovery cost (`BENCH_resilience`):
//! per-fault-class simulated overhead and the cache-pressure degradation
//! curve, with faulted results asserted bit-identical across pipeline
//! settings. Set `FASTGL_QUICK=1` for a fast smoke run.

fn main() {
    let scale = fastgl_bench::BenchScale::from_env();
    let report = fastgl_bench::experiments::resilience::run(&scale);
    fastgl_bench::emit::finish(&report);
}
