//! Runs every experiment of the paper's evaluation section in order,
//! printing each report and writing all CSVs/JSON to `results/` (plus
//! per-experiment telemetry under `results/telemetry/` when
//! `FASTGL_TELEMETRY=1`).
//!
//! Set `FASTGL_QUICK=1` for a fast smoke pass, or pass experiment ids as
//! arguments to run a subset (e.g. `all_experiments fig09_overall`).

use std::time::Instant;

fn main() {
    let scale = fastgl_bench::BenchScale::from_env();
    let filter: Vec<String> = std::env::args().skip(1).collect();
    let started = Instant::now();
    // Drop anything recorded before the first experiment (dataset setup,
    // warmup) so each exported trace holds exactly one experiment's events.
    fastgl_telemetry::reset();
    for (id, runner) in fastgl_bench::experiments::all() {
        if !filter.is_empty() && !filter.iter().any(|f| f == id) {
            continue;
        }
        let t = Instant::now();
        let report = runner(&scale);
        fastgl_bench::emit::finish(&report);
        println!("[{} finished in {:.1}s]\n", id, t.elapsed().as_secs_f64());
    }
    println!("all done in {:.1}s", started.elapsed().as_secs_f64());
}
