//! Regenerates the paper artefact `tab01_left_memory` and writes its CSVs to
//! `results/`. Set `FASTGL_QUICK=1` for a fast smoke run.

fn main() {
    let scale = fastgl_bench::BenchScale::from_env();
    let report = fastgl_bench::experiments::tab01_left_memory::run(&scale);
    print!("{}", report.to_text());
    if let Err(e) = report.write_csv(std::path::Path::new("results")) {
        eprintln!("warning: could not write CSVs: {e}");
    }
}
