//! Regenerates the ablation `abl02_hash_load_factor` and writes its CSVs to `results/`.
//! Set `FASTGL_QUICK=1` for a fast smoke run.

fn main() {
    let scale = fastgl_bench::BenchScale::from_env();
    let report = fastgl_bench::experiments::abl02_hash_load_factor::run(&scale);
    fastgl_bench::emit::finish(&report);
}
