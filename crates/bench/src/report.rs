//! Report rendering: aligned text tables plus CSV and JSON export.

use std::fmt::Write as _;
use std::path::Path;

/// Escapes a string for a JSON document (RFC 8259).
fn json_esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_str_array(items: &[String]) -> String {
    let cells: Vec<String> = items
        .iter()
        .map(|s| format!("\"{}\"", json_esc(s)))
        .collect();
    format!("[{}]", cells.join(","))
}

/// One table of an experiment report.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    /// Table caption (e.g. "Table 8: ID map time (s)").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells for {} headers",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Renders the table as aligned text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("| ");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{cell:<w$} | ");
            }
            s.trim_end().to_string()
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as a JSON object
    /// `{"title": …, "headers": […], "rows": [[…], …]}`.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self.rows.iter().map(|r| json_str_array(r)).collect();
        format!(
            "{{\"title\":\"{}\",\"headers\":{},\"rows\":[{}]}}",
            json_esc(&self.title),
            json_str_array(&self.headers),
            rows.join(",")
        )
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// The run conditions a report was produced under, stamped into the JSON
/// export so `perfdiff` can refuse apples-to-oranges comparisons (see
/// DESIGN.md §11). Everything is recorded as the *effective* setting the
/// run saw, environment overrides included.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Provenance {
    /// Scale profile: `"quick"` (`FASTGL_QUICK=1`) or `"default"`.
    pub profile: String,
    /// `FASTGL_THREADS` override, or `"auto"` when unset.
    pub threads: String,
    /// `FASTGL_PREFETCH` override, or `"default"` when unset.
    pub prefetch: String,
    /// Whether telemetry was recording during the run.
    pub telemetry: bool,
    /// Abbreviated git revision of the producing tree, when available.
    pub git: Option<String>,
}

impl Provenance {
    /// Captures the current process environment.
    pub fn current() -> Self {
        let env_or = |key: &str, default: &str| {
            std::env::var(key)
                .ok()
                .filter(|v| !v.is_empty())
                .unwrap_or_else(|| default.to_string())
        };
        let quick = std::env::var("FASTGL_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
        Self {
            profile: if quick { "quick" } else { "default" }.to_string(),
            threads: env_or("FASTGL_THREADS", "auto"),
            prefetch: env_or("FASTGL_PREFETCH", "default"),
            telemetry: fastgl_telemetry::enabled(),
            git: git_revision(),
        }
    }

    /// Renders the stamp as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"profile\":\"{}\",\"threads\":\"{}\",\"prefetch\":\"{}\",\
             \"telemetry\":{},\"git\":{}}}",
            json_esc(&self.profile),
            json_esc(&self.threads),
            json_esc(&self.prefetch),
            self.telemetry,
            match &self.git {
                Some(rev) => format!("\"{}\"", json_esc(rev)),
                None => "null".to_string(),
            }
        )
    }
}

/// The producing tree's abbreviated git revision, or `None` outside a
/// repository (or without git on PATH).
fn git_revision() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?.trim().to_string();
    (!rev.is_empty()).then_some(rev)
}

/// A full experiment report: id, description, and one or more tables.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Report {
    /// Experiment identifier, e.g. "fig09".
    pub id: String,
    /// One-line description referencing the paper artefact.
    pub description: String,
    /// Narrative notes (what to look for, paper expectations).
    pub notes: Vec<String>,
    /// The tables.
    pub tables: Vec<Table>,
    /// Run-condition stamp, filled in by `emit::finish` just before the
    /// JSON export. `None` until then (and absent from the JSON if a
    /// report is exported without finishing).
    pub provenance: Option<Provenance>,
}

impl Report {
    /// An empty report.
    pub fn new(id: impl Into<String>, description: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            description: description.into(),
            notes: Vec::new(),
            tables: Vec::new(),
            provenance: None,
        }
    }

    /// Adds a narrative note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders the full report as text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}\n", self.id, self.description);
        for table in &self.tables {
            out.push_str(&table.to_text());
            out.push('\n');
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }

    /// Writes every table as `dir/<id>_<index>.csv`. Creates `dir`.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error encountered.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for (i, table) in self.tables.iter().enumerate() {
            let path = dir.join(format!("{}_{}.csv", self.id, i));
            std::fs::write(path, table.to_csv())?;
        }
        Ok(())
    }

    /// Renders the full report (id, description, notes, tables) as one
    /// JSON document, so downstream tooling gets a machine-readable view
    /// of every figure/table without parsing CSV filenames.
    pub fn to_json(&self) -> String {
        let tables: Vec<String> = self.tables.iter().map(Table::to_json).collect();
        let provenance = match &self.provenance {
            Some(p) => format!(",\"provenance\":{}", p.to_json()),
            None => String::new(),
        };
        format!(
            "{{\"id\":\"{}\",\"description\":\"{}\",\"notes\":{},\"tables\":[{}]{}}}\n",
            json_esc(&self.id),
            json_esc(&self.description),
            json_str_array(&self.notes),
            tables.join(","),
            provenance
        )
    }

    /// Writes the report as `dir/<id>.json`. Creates `dir`.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error encountered.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.json", self.id)), self.to_json())
    }
}

/// Formats seconds with 4 significant-ish digits.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.3}us", s * 1e6)
    }
}

/// Formats a ratio as `N.NNx`.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

/// Formats bytes with binary units.
pub fn fmt_bytes(b: u64) -> String {
    const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    let b = b as f64;
    if b >= GB {
        format!("{:.2}GB", b / GB)
    } else if b >= MB {
        format!("{:.1}MB", b / MB)
    } else if b >= 1024.0 {
        format!("{:.0}KB", b / 1024.0)
    } else {
        format!("{b:.0}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_row(vec!["b".into(), "22222".into()]);
        t
    }

    #[test]
    fn text_is_aligned() {
        let text = table().to_text();
        assert!(text.contains("## Demo"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", &["a"]);
        t.push_row(vec!["v,w".into()]);
        assert!(t.to_csv().contains("\"v,w\""));
    }

    #[test]
    #[should_panic(expected = "cells for")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn report_renders_notes_and_tables() {
        let mut r = Report::new("fig00", "demo experiment");
        r.tables.push(table());
        r.note("expected shape holds");
        let text = r.to_text();
        assert!(text.contains("fig00"));
        assert!(text.contains("note: expected"));
    }

    #[test]
    fn csv_written_to_disk() {
        let mut r = Report::new("t", "x");
        r.tables.push(table());
        let dir = std::env::temp_dir().join("fastgl_report_test");
        r.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("t_0.csv")).unwrap();
        assert!(content.starts_with("name,value"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_escapes_and_structures() {
        let mut t = Table::new("quote \" and\nnewline", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "z\\w".into()]);
        let j = t.to_json();
        assert!(j.contains("quote \\\" and\\nnewline"));
        assert!(j.contains("\"rows\":[[\"x,y\",\"z\\\\w\"]]"));
    }

    #[test]
    fn report_json_written_to_disk() {
        let mut r = Report::new("tj", "json demo");
        r.tables.push(table());
        r.note("shape holds");
        let dir = std::env::temp_dir().join("fastgl_report_json_test");
        r.write_json(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("tj.json")).unwrap();
        assert!(content.starts_with("{\"id\":\"tj\""));
        assert!(content.contains("\"notes\":[\"shape holds\"]"));
        assert!(content.contains("\"headers\":[\"name\",\"value\"]"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn provenance_stamps_into_the_json_export() {
        let mut r = Report::new("tp", "provenance demo");
        r.tables.push(table());
        assert!(
            !r.to_json().contains("\"provenance\":"),
            "unstamped reports carry no provenance key"
        );
        r.provenance = Some(Provenance {
            profile: "quick".into(),
            threads: "8".into(),
            prefetch: "default".into(),
            telemetry: false,
            git: None,
        });
        let j = r.to_json();
        assert!(j.contains("\"provenance\":{\"profile\":\"quick\""));
        assert!(j.contains("\"threads\":\"8\""));
        assert!(j.contains("\"telemetry\":false"));
        assert!(j.contains("\"git\":null"));
        let with_git = Provenance {
            git: Some("abc1234".into()),
            ..Provenance::default()
        };
        assert!(with_git.to_json().contains("\"git\":\"abc1234\""));
    }

    #[test]
    fn provenance_current_reflects_the_environment() {
        // The test harness runs from the repo, so a revision resolves;
        // profile is one of the two known names either way.
        let p = Provenance::current();
        assert!(p.profile == "quick" || p.profile == "default");
        assert!(!p.threads.is_empty());
        assert!(!p.prefetch.is_empty());
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(2.5), "2.500s");
        assert_eq!(fmt_secs(0.0025), "2.500ms");
        assert_eq!(fmt_secs(2.5e-6), "2.500us");
        assert_eq!(fmt_ratio(2.345), "2.35x");
        assert_eq!(fmt_pct(0.936), "93.6%");
        assert_eq!(fmt_bytes(3 * 1024 * 1024 * 1024), "3.00GB");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2KB");
    }
}
