//! Report rendering: aligned text tables plus CSV and JSON export.

use std::fmt::Write as _;
use std::path::Path;

/// Escapes a string for a JSON document (RFC 8259).
fn json_esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_str_array(items: &[String]) -> String {
    let cells: Vec<String> = items
        .iter()
        .map(|s| format!("\"{}\"", json_esc(s)))
        .collect();
    format!("[{}]", cells.join(","))
}

/// One table of an experiment report.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    /// Table caption (e.g. "Table 8: ID map time (s)").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells for {} headers",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Renders the table as aligned text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("| ");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{cell:<w$} | ");
            }
            s.trim_end().to_string()
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as a JSON object
    /// `{"title": …, "headers": […], "rows": [[…], …]}`.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self.rows.iter().map(|r| json_str_array(r)).collect();
        format!(
            "{{\"title\":\"{}\",\"headers\":{},\"rows\":[{}]}}",
            json_esc(&self.title),
            json_str_array(&self.headers),
            rows.join(",")
        )
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// A full experiment report: id, description, and one or more tables.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Report {
    /// Experiment identifier, e.g. "fig09".
    pub id: String,
    /// One-line description referencing the paper artefact.
    pub description: String,
    /// Narrative notes (what to look for, paper expectations).
    pub notes: Vec<String>,
    /// The tables.
    pub tables: Vec<Table>,
}

impl Report {
    /// An empty report.
    pub fn new(id: impl Into<String>, description: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            description: description.into(),
            notes: Vec::new(),
            tables: Vec::new(),
        }
    }

    /// Adds a narrative note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders the full report as text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}\n", self.id, self.description);
        for table in &self.tables {
            out.push_str(&table.to_text());
            out.push('\n');
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }

    /// Writes every table as `dir/<id>_<index>.csv`. Creates `dir`.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error encountered.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for (i, table) in self.tables.iter().enumerate() {
            let path = dir.join(format!("{}_{}.csv", self.id, i));
            std::fs::write(path, table.to_csv())?;
        }
        Ok(())
    }

    /// Renders the full report (id, description, notes, tables) as one
    /// JSON document, so downstream tooling gets a machine-readable view
    /// of every figure/table without parsing CSV filenames.
    pub fn to_json(&self) -> String {
        let tables: Vec<String> = self.tables.iter().map(Table::to_json).collect();
        format!(
            "{{\"id\":\"{}\",\"description\":\"{}\",\"notes\":{},\"tables\":[{}]}}\n",
            json_esc(&self.id),
            json_esc(&self.description),
            json_str_array(&self.notes),
            tables.join(",")
        )
    }

    /// Writes the report as `dir/<id>.json`. Creates `dir`.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error encountered.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.json", self.id)), self.to_json())
    }
}

/// Formats seconds with 4 significant-ish digits.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.3}us", s * 1e6)
    }
}

/// Formats a ratio as `N.NNx`.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

/// Formats bytes with binary units.
pub fn fmt_bytes(b: u64) -> String {
    const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    let b = b as f64;
    if b >= GB {
        format!("{:.2}GB", b / GB)
    } else if b >= MB {
        format!("{:.1}MB", b / MB)
    } else if b >= 1024.0 {
        format!("{:.0}KB", b / 1024.0)
    } else {
        format!("{b:.0}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_row(vec!["b".into(), "22222".into()]);
        t
    }

    #[test]
    fn text_is_aligned() {
        let text = table().to_text();
        assert!(text.contains("## Demo"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", &["a"]);
        t.push_row(vec!["v,w".into()]);
        assert!(t.to_csv().contains("\"v,w\""));
    }

    #[test]
    #[should_panic(expected = "cells for")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn report_renders_notes_and_tables() {
        let mut r = Report::new("fig00", "demo experiment");
        r.tables.push(table());
        r.note("expected shape holds");
        let text = r.to_text();
        assert!(text.contains("fig00"));
        assert!(text.contains("note: expected"));
    }

    #[test]
    fn csv_written_to_disk() {
        let mut r = Report::new("t", "x");
        r.tables.push(table());
        let dir = std::env::temp_dir().join("fastgl_report_test");
        r.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("t_0.csv")).unwrap();
        assert!(content.starts_with("name,value"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_escapes_and_structures() {
        let mut t = Table::new("quote \" and\nnewline", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "z\\w".into()]);
        let j = t.to_json();
        assert!(j.contains("quote \\\" and\\nnewline"));
        assert!(j.contains("\"rows\":[[\"x,y\",\"z\\\\w\"]]"));
    }

    #[test]
    fn report_json_written_to_disk() {
        let mut r = Report::new("tj", "json demo");
        r.tables.push(table());
        r.note("shape holds");
        let dir = std::env::temp_dir().join("fastgl_report_json_test");
        r.write_json(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("tj.json")).unwrap();
        assert!(content.starts_with("{\"id\":\"tj\""));
        assert!(content.contains("\"notes\":[\"shape holds\"]"));
        assert!(content.contains("\"headers\":[\"name\",\"value\"]"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(2.5), "2.500s");
        assert_eq!(fmt_secs(0.0025), "2.500ms");
        assert_eq!(fmt_secs(2.5e-6), "2.500us");
        assert_eq!(fmt_ratio(2.345), "2.35x");
        assert_eq!(fmt_pct(0.936), "93.6%");
        assert_eq!(fmt_bytes(3 * 1024 * 1024 * 1024), "3.00GB");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2KB");
    }
}
