//! The FastGL benchmark harness: regenerates every table and figure of the
//! paper's evaluation section (§6).
//!
//! Each experiment lives in [`experiments`] as a function producing a
//! [`report::Report`] (aligned text tables plus CSV series), and has a thin
//! binary under `src/bin/` (`fig09_overall`, `tab08_id_map`, …).
//! `all_experiments` runs the full suite and writes `results/*.csv` plus a
//! combined transcript.
//!
//! # Scale
//!
//! The paper's graphs (up to 111M nodes) do not fit a CPU-only test
//! machine, so every experiment runs on the scaled synthetic stand-ins of
//! `fastgl_graph::datasets` under a [`scale::BenchScale`] profile. The
//! *shape* of each result — which system wins, by roughly what factor,
//! where crossovers fall — is what the suite reproduces; absolute numbers
//! are smaller by the scale factor. Set `FASTGL_QUICK=1` for a fast smoke
//! profile (used by CI and `cargo test`).

#![warn(missing_docs)]

pub mod emit;
pub mod experiments;
pub mod report;
pub mod scale;

pub use report::{Report, Table};
pub use scale::BenchScale;
