//! Shared experiment finishing: print the report, persist it as CSV and
//! JSON under `results/`, and — when telemetry is recording — drain the
//! run's spans/counters into `results/telemetry/` next to the data they
//! explain.

use crate::report::{Provenance, Report, Table};
use fastgl_telemetry::Snapshot;
use std::path::PathBuf;

/// Where experiment tables land by default (see [`results_dir`]).
pub const RESULTS_DIR: &str = "results";

/// Where telemetry artifacts land by default (see [`telemetry_dir`]).
pub const TELEMETRY_DIR: &str = "results/telemetry";

/// The effective results directory: `FASTGL_RESULTS_DIR` when set (CI's
/// perfdiff gate redirects fresh runs there, away from the committed
/// baselines), [`RESULTS_DIR`] otherwise.
pub fn results_dir() -> PathBuf {
    std::env::var("FASTGL_RESULTS_DIR")
        .ok()
        .filter(|v| !v.is_empty())
        .map_or_else(|| PathBuf::from(RESULTS_DIR), PathBuf::from)
}

/// The effective telemetry directory: `<results_dir()>/telemetry`.
pub fn telemetry_dir() -> PathBuf {
    results_dir().join("telemetry")
}

/// Prints the report, stamps it with the run's [`Provenance`], and writes
/// `results/<id>_<i>.csv` plus `results/<id>.json`; then exports this
/// run's telemetry (if enabled) under
/// `results/telemetry/<id>.{trace,telemetry}.json`. Write failures warn
/// on stderr rather than aborting the run — the printed report is the
/// primary artifact.
pub fn finish(report: &Report) {
    print!("{}", report.to_text());
    let mut stamped = report.clone();
    if stamped.provenance.is_none() {
        stamped.provenance = Some(Provenance::current());
    }
    let results = results_dir();
    if let Err(e) = stamped.write_csv(&results) {
        eprintln!("warning: could not write CSVs for {}: {e}", report.id);
    }
    if let Err(e) = stamped.write_json(&results) {
        eprintln!("warning: could not write JSON for {}: {e}", report.id);
    }
    export_telemetry(&report.id);
}

/// Drains the telemetry buffers and writes the chrome trace + perf JSON
/// for them, keyed by `stem`. No-op (and no drain) when telemetry is off,
/// so a multi-experiment runner can call this after every experiment and
/// each gets exactly its own events.
pub fn export_telemetry(stem: &str) {
    if !fastgl_telemetry::enabled() {
        return;
    }
    let snap = fastgl_telemetry::drain();
    match fastgl_telemetry::export::write_to_dir(&snap, &telemetry_dir(), stem) {
        Ok((trace, perf)) => {
            for t in telemetry_tables(&snap) {
                print!("{}", t.to_text());
                println!();
            }
            println!(
                "[telemetry: {} events -> {} + {}]\n",
                snap.events.len(),
                trace.display(),
                perf.display()
            );
        }
        Err(e) => eprintln!("warning: could not write telemetry for {stem}: {e}"),
    }
}

/// Renders a snapshot as report [`Table`]s (the same aligned-table type
/// every experiment uses), so telemetry summaries print and export in the
/// house style.
pub fn telemetry_tables(snap: &Snapshot) -> Vec<Table> {
    let mut out = Vec::new();

    let sim = snap.sim_phase_totals();
    if !sim.is_empty() {
        let total: u64 = sim.values().sum();
        let mut t = Table::new("Telemetry: simulated phases", &["phase", "total", "share"]);
        for (name, &ns) in &sim {
            t.push_row(vec![
                name.to_string(),
                crate::report::fmt_secs(ns as f64 * 1e-9),
                crate::report::fmt_pct(ns as f64 / total.max(1) as f64),
            ]);
        }
        out.push(t);
    }

    let spans = snap.span_totals();
    if !spans.is_empty() {
        let mut t = Table::new(
            "Telemetry: wall-clock spans",
            &["span", "count", "total", "mean"],
        );
        for (name, agg) in &spans {
            t.push_row(vec![
                name.to_string(),
                agg.count.to_string(),
                crate::report::fmt_secs(agg.total_ns as f64 * 1e-9),
                crate::report::fmt_secs(agg.total_ns as f64 * 1e-9 / agg.count.max(1) as f64),
            ]);
        }
        out.push(t);
    }

    if !snap.counters.is_empty() {
        let mut t = Table::new("Telemetry: counters", &["counter", "value"]);
        for (name, value) in &snap.counters {
            t.push_row(vec![name.to_string(), value.to_string()]);
        }
        out.push(t);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;
    use std::sync::Mutex;

    /// Serializes tests that flip the global telemetry state.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn telemetry_tables_cover_each_section() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        fastgl_telemetry::set_enabled(true);
        fastgl_telemetry::reset();
        {
            let _s = fastgl_telemetry::span("bench.demo");
        }
        fastgl_telemetry::counter_add("bench.counter", 7);
        fastgl_telemetry::record_sim_phases("epoch", &[("sample", 10), ("compute", 30)]);
        let snap = fastgl_telemetry::drain();
        fastgl_telemetry::set_enabled(false);

        let tables = telemetry_tables(&snap);
        assert_eq!(tables.len(), 3);
        let all: String = tables.iter().map(Table::to_text).collect();
        assert!(all.contains("bench.demo"));
        assert!(all.contains("bench.counter"));
        assert!(all.contains("sample"));
        // Tables are the regular report type: CSV/JSON export works too.
        assert!(tables[0].to_json().starts_with("{\"title\""));
    }

    #[test]
    fn telemetry_tables_empty_when_nothing_recorded() {
        let snap = Snapshot::default();
        assert!(telemetry_tables(&snap).is_empty());
    }

    #[test]
    fn finish_stamps_provenance_and_honours_results_dir_override() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("fastgl_emit_override_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("FASTGL_RESULTS_DIR", &dir);
        let mut report = Report::new("emit_test", "results-dir override demo");
        report.tables.push({
            let mut t = Table::new("T", &["k", "v"]);
            t.push_row(vec!["a".into(), "1".into()]);
            t
        });
        finish(&report);
        std::env::remove_var("FASTGL_RESULTS_DIR");
        let json = std::fs::read_to_string(dir.join("emit_test.json"))
            .expect("finish wrote into the overridden directory");
        assert!(json.contains("\"provenance\":{\"profile\":"));
        assert!(dir.join("emit_test_0.csv").exists());
        assert_eq!(results_dir(), Path::new(RESULTS_DIR).to_path_buf());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_telemetry_noop_when_disabled() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        fastgl_telemetry::set_enabled(false);
        // Must not drain, must not write: just return.
        export_telemetry("never_written");
        assert!(!Path::new(TELEMETRY_DIR)
            .join("never_written.trace.json")
            .exists());
    }
}
