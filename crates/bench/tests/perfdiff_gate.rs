//! End-to-end tests of the `perfdiff` gate binary: a clean tree diffs to
//! zero regressions, an injected 10% slowdown in a simulated cell is
//! caught with a non-zero exit and the right markdown row, and
//! mismatched scale profiles are refused rather than mis-diffed.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_perfdiff")
}

/// A minimal but realistic report: provenance-stamped, one exact column,
/// one wall column, one informational column.
fn report_json(id: &str, sim_io: &str, wall: &str) -> String {
    format!(
        "{{\"id\":\"{id}\",\"description\":\"gate fixture\",\"notes\":[],\
         \"tables\":[{{\"title\":\"Breakdown\",\
         \"headers\":[\"case\",\"epoch io\",\"wall epoch time\",\"sample busy/stall\"],\
         \"rows\":[[\"gcn/products\",\"{sim_io}\",\"{wall}\",\"1.0ms / 2.0ms\"],\
         [\"gcn/mag\",\"9.000ms\",\"2.000s\",\"3.0ms / 4.0ms\"]]}}],\
         \"provenance\":{{\"profile\":\"quick\",\"threads\":\"auto\",\
         \"prefetch\":\"default\",\"telemetry\":false,\"git\":null}}}}\n"
    )
}

struct Dirs {
    baseline: PathBuf,
    candidate: PathBuf,
    root: PathBuf,
}

fn fresh_dirs(stem: &str) -> Dirs {
    let root = std::env::temp_dir().join(format!("fastgl_perfdiff_gate_{stem}"));
    let _ = std::fs::remove_dir_all(&root);
    let baseline = root.join("baseline");
    let candidate = root.join("candidate");
    std::fs::create_dir_all(&baseline).unwrap();
    std::fs::create_dir_all(&candidate).unwrap();
    Dirs {
        baseline,
        candidate,
        root,
    }
}

fn run_gate(baseline: &Path, candidate: &Path, extra: &[&str]) -> (i32, String) {
    let out = Command::new(bin())
        .arg("--baseline")
        .arg(baseline)
        .arg("--candidate")
        .arg(candidate)
        .args(extra)
        .output()
        .expect("perfdiff spawns");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.code().expect("exit code"), stdout)
}

#[test]
fn identical_runs_pass_with_exit_zero() {
    let dirs = fresh_dirs("clean");
    let report = report_json("fig01", "4.218ms", "1.000s");
    std::fs::write(dirs.baseline.join("fig01.json"), &report).unwrap();
    std::fs::write(dirs.candidate.join("fig01.json"), &report).unwrap();
    let (code, md) = run_gate(&dirs.baseline, &dirs.candidate, &[]);
    assert_eq!(code, 0, "clean diff must exit 0:\n{md}");
    assert!(md.contains("VERDICT: PASS"));
    let _ = std::fs::remove_dir_all(&dirs.root);
}

#[test]
fn injected_ten_percent_slowdown_fails_with_the_right_markdown_row() {
    let dirs = fresh_dirs("slowdown");
    // Baseline 4.218ms; candidate 4.640ms = +10% on a *simulated* cell.
    std::fs::write(
        dirs.baseline.join("fig01.json"),
        report_json("fig01", "4.218ms", "1.000s"),
    )
    .unwrap();
    std::fs::write(
        dirs.candidate.join("fig01.json"),
        report_json("fig01", "4.640ms", "1.000s"),
    )
    .unwrap();
    let md_path = dirs.root.join("perfdiff.md");
    let (code, md) = run_gate(
        &dirs.baseline,
        &dirs.candidate,
        &["--markdown", md_path.to_str().unwrap()],
    );
    assert_eq!(code, 1, "a simulated slowdown must fail the gate:\n{md}");
    assert!(md.contains("VERDICT: FAIL"));
    // The markdown row names the report, the cell, and both values.
    let written = std::fs::read_to_string(&md_path).unwrap();
    assert_eq!(written, md, "--markdown writes exactly what was printed");
    let row = written
        .lines()
        .find(|l| l.starts_with("| fig01 |"))
        .expect("finding row present");
    assert!(row.contains("epoch io"), "row names the column: {row}");
    assert!(
        row.contains("gcn/products"),
        "row names the row label: {row}"
    );
    assert!(row.contains("4.218ms") && row.contains("4.640ms"));
    assert!(row.contains("regression"));
    let _ = std::fs::remove_dir_all(&dirs.root);
}

#[test]
fn wall_noise_is_ignored_without_tolerance_and_gated_with_one() {
    let dirs = fresh_dirs("wall");
    std::fs::write(
        dirs.baseline.join("b.json"),
        report_json("b", "4.218ms", "1.000s"),
    )
    .unwrap();
    // Wall time doubles; simulated cells identical.
    std::fs::write(
        dirs.candidate.join("b.json"),
        report_json("b", "4.218ms", "2.000s"),
    )
    .unwrap();
    let (code, md) = run_gate(&dirs.baseline, &dirs.candidate, &[]);
    assert_eq!(code, 0, "wall cells are skipped by default:\n{md}");
    assert!(md.contains("wall cell(s) skipped"));
    let (code, md) = run_gate(&dirs.baseline, &dirs.candidate, &["--wall-tol", "0.5"]);
    assert_eq!(code, 1, "a 2x wall slowdown exceeds a 50% tolerance:\n{md}");
    assert!(md.contains("wall-tier value moved +100.0%"));
    let _ = std::fs::remove_dir_all(&dirs.root);
}

#[test]
fn profile_mismatch_is_refused_with_exit_two() {
    let dirs = fresh_dirs("profiles");
    std::fs::write(
        dirs.baseline.join("r.json"),
        report_json("r", "4.218ms", "1.000s"),
    )
    .unwrap();
    std::fs::write(
        dirs.candidate.join("r.json"),
        report_json("r", "4.218ms", "1.000s").replace("\"quick\"", "\"default\""),
    )
    .unwrap();
    let (code, md) = run_gate(&dirs.baseline, &dirs.candidate, &[]);
    assert_eq!(code, 2, "profile mismatch must refuse, not diff:\n{md}");
    assert!(md.contains("VERDICT: REFUSED"));
    assert!(md.contains("incompatible"));
    let _ = std::fs::remove_dir_all(&dirs.root);
}

#[test]
fn usage_errors_exit_two() {
    let out = Command::new(bin()).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "stderr explains usage: {err}");
}
