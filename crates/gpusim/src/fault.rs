//! Simulated transfer faults and their deterministic recovery cost.
//!
//! Production GNN stacks treat PCIe stalls, transient transfer errors, and
//! device-memory pressure as routine events (BGL, FastSample) rather than
//! crashes. This module gives the simulated GPU the same vocabulary: a
//! fault is a *deterministic cost event* attached to a transfer, and its
//! recovery (retry with backoff, or riding out a stall) is priced in
//! simulated time by a [`RetryCostModel`] — a pure function of the fault
//! parameters, so faulted runs reproduce bit-for-bit like everything else
//! in the simulator.
//!
//! The faults are injected from above (see `fastgl_core::resilience`);
//! this layer only knows how to *price* them and how to account the extra
//! PCIe traffic they cause.

use crate::timeline::SimTime;

/// A fault affecting one host→device transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransferFault {
    /// The link stalls for `factor` × the transfer's own copy time
    /// (congestion, link retraining): the transfer succeeds but late.
    Stall {
        /// Stall duration as a multiple of the copy time.
        factor: f64,
    },
    /// The transfer fails `failures` times before succeeding; each failed
    /// attempt wastes part of the copy and waits an exponential backoff.
    Retryable {
        /// Number of failed attempts before the transfer goes through.
        failures: u32,
    },
}

/// Deterministic pricing of transfer retries.
///
/// Each failed attempt costs `wasted_fraction` of the transfer's copy time
/// (the partial copy that had to be thrown away) plus a simulated backoff
/// that doubles per attempt: `backoff × 2^attempt`. No wall clock and no
/// randomness are involved, so the recovery cost of a given fault is a
/// pure function of its parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryCostModel {
    /// Base backoff charged before the first retry; doubles each attempt.
    pub backoff: SimTime,
    /// Fraction of the copy time (and of the bytes) wasted per failed
    /// attempt, in `[0, 1]`.
    pub wasted_fraction: f64,
}

impl Default for RetryCostModel {
    /// 10 µs base backoff, half the copy wasted per failed attempt.
    fn default() -> Self {
        Self {
            backoff: SimTime::from_micros(10),
            wasted_fraction: 0.5,
        }
    }
}

impl RetryCostModel {
    /// Extra simulated time for `failures` failed attempts of a transfer
    /// whose clean copy time is `copy`.
    pub fn overhead(&self, copy: SimTime, failures: u32) -> SimTime {
        let mut total = SimTime::ZERO;
        for attempt in 0..failures {
            total += copy * self.wasted_fraction;
            total += self.backoff * (1u64 << attempt.min(20)) as f64;
        }
        total
    }

    /// Extra PCIe bytes moved by the wasted partial copies of `failures`
    /// failed attempts of a `bytes`-sized transfer.
    pub fn wasted_bytes(&self, bytes: u64, failures: u32) -> u64 {
        (bytes as f64 * self.wasted_fraction) as u64 * failures as u64
    }
}

/// The outcome of a transfer that may have been faulted.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultedTransfer {
    /// Total simulated time including recovery overhead.
    pub time: SimTime,
    /// Recovery overhead alone (zero for a clean transfer).
    pub overhead: SimTime,
    /// Failed attempts that were retried.
    pub retries: u32,
    /// Whether the transfer rode out a stall.
    pub stalled: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_zero_without_failures() {
        let m = RetryCostModel::default();
        assert_eq!(m.overhead(SimTime::from_millis(1), 0), SimTime::ZERO);
        assert_eq!(m.wasted_bytes(1 << 20, 0), 0);
    }

    #[test]
    fn overhead_grows_superlinearly_with_failures() {
        let m = RetryCostModel::default();
        let copy = SimTime::from_millis(1);
        let one = m.overhead(copy, 1);
        let three = m.overhead(copy, 3);
        // Three failures cost more than 3x one failure: the backoff doubles.
        assert!(three > one * 3.0, "{three} vs 3x {one}");
    }

    #[test]
    fn overhead_is_deterministic() {
        let m = RetryCostModel::default();
        let copy = SimTime::from_micros(123);
        assert_eq!(m.overhead(copy, 5), m.overhead(copy, 5));
    }

    #[test]
    fn wasted_bytes_track_fraction() {
        let m = RetryCostModel {
            backoff: SimTime::from_micros(1),
            wasted_fraction: 0.25,
        };
        assert_eq!(m.wasted_bytes(1000, 2), 500);
    }
}
