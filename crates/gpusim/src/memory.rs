//! Device global-memory accounting.
//!
//! The paper's Tables 1 and 9 hinge on how much of the 24 GB device memory
//! each system consumes: caching schemes (PaGraph, GNNLab) need leftover
//! memory, which large sampled subgraphs eat up. This module tracks named
//! allocations against a fixed capacity so those tables can be regenerated.

use crate::spec::DeviceSpec;
use std::collections::BTreeMap;
use std::fmt;

/// Error returned when an allocation exceeds the remaining capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryError {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes still available.
    pub available: u64,
    /// Label of the failed allocation.
    pub label: String,
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of device memory: '{}' requested {} bytes, {} available",
            self.label, self.requested, self.available
        )
    }
}

impl std::error::Error for MemoryError {}

/// Tracks named allocations against a device's global memory capacity.
///
/// # Example
///
/// ```
/// use fastgl_gpusim::{DeviceMemory, DeviceSpec};
///
/// let mut mem = DeviceMemory::new(&DeviceSpec::rtx3090());
/// mem.allocate("model", 1 << 30)?;
/// assert_eq!(mem.used(), 1 << 30);
/// mem.free("model");
/// assert_eq!(mem.used(), 0);
/// # Ok::<(), fastgl_gpusim::MemoryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DeviceMemory {
    capacity: u64,
    allocations: BTreeMap<String, u64>,
}

impl DeviceMemory {
    /// An empty memory of the device's capacity.
    pub fn new(spec: &DeviceSpec) -> Self {
        Self::with_capacity(spec.global_bytes)
    }

    /// An empty memory with an explicit capacity in bytes.
    pub fn with_capacity(capacity: u64) -> Self {
        Self {
            capacity,
            allocations: BTreeMap::new(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.allocations.values().sum()
    }

    /// Bytes still available.
    pub fn remaining(&self) -> u64 {
        self.capacity - self.used()
    }

    /// Allocates `bytes` under `label`, accumulating if the label exists.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError`] when `bytes` exceeds the remaining capacity;
    /// the allocation map is unchanged on error.
    pub fn allocate(&mut self, label: &str, bytes: u64) -> Result<(), MemoryError> {
        if bytes > self.remaining() {
            return Err(MemoryError {
                requested: bytes,
                available: self.remaining(),
                label: label.to_string(),
            });
        }
        *self.allocations.entry(label.to_string()).or_insert(0) += bytes;
        Ok(())
    }

    /// Releases the allocation under `label`, returning its size (0 if the
    /// label was unknown).
    pub fn free(&mut self, label: &str) -> u64 {
        self.allocations.remove(label).unwrap_or(0)
    }

    /// Replaces the allocation under `label` with a new size.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError`] if the new size does not fit once the old
    /// allocation is released; in that case the old allocation is restored.
    pub fn resize(&mut self, label: &str, bytes: u64) -> Result<(), MemoryError> {
        let old = self.free(label);
        match self.allocate(label, bytes) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.allocate(label, old).expect("restoring must fit");
                Err(e)
            }
        }
    }

    /// Size of the allocation under `label`, if any.
    pub fn allocation(&self, label: &str) -> Option<u64> {
        self.allocations.get(label).copied()
    }

    /// Iterator over `(label, bytes)` pairs in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.allocations.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_free_cycle() {
        let mut mem = DeviceMemory::with_capacity(1000);
        mem.allocate("a", 400).unwrap();
        mem.allocate("b", 500).unwrap();
        assert_eq!(mem.used(), 900);
        assert_eq!(mem.remaining(), 100);
        assert_eq!(mem.free("a"), 400);
        assert_eq!(mem.remaining(), 500);
        assert_eq!(mem.free("a"), 0);
    }

    #[test]
    fn over_allocation_fails_cleanly() {
        let mut mem = DeviceMemory::with_capacity(100);
        mem.allocate("a", 60).unwrap();
        let err = mem.allocate("b", 50).unwrap_err();
        assert_eq!(err.requested, 50);
        assert_eq!(err.available, 40);
        assert_eq!(mem.used(), 60, "failed allocation must not change state");
    }

    #[test]
    fn same_label_accumulates() {
        let mut mem = DeviceMemory::with_capacity(100);
        mem.allocate("a", 30).unwrap();
        mem.allocate("a", 20).unwrap();
        assert_eq!(mem.allocation("a"), Some(50));
    }

    #[test]
    fn resize_replaces() {
        let mut mem = DeviceMemory::with_capacity(100);
        mem.allocate("a", 80).unwrap();
        mem.resize("a", 40).unwrap();
        assert_eq!(mem.allocation("a"), Some(40));
        mem.resize("a", 100).unwrap();
        assert_eq!(mem.used(), 100);
    }

    #[test]
    fn resize_failure_restores_old() {
        let mut mem = DeviceMemory::with_capacity(100);
        mem.allocate("a", 50).unwrap();
        mem.allocate("b", 40).unwrap();
        let err = mem.resize("a", 70).unwrap_err();
        assert_eq!(err.available, 60);
        assert_eq!(mem.allocation("a"), Some(50));
    }

    #[test]
    fn from_device_spec() {
        let mem = DeviceMemory::new(&DeviceSpec::rtx3090());
        assert_eq!(mem.capacity(), 24 * 1024 * 1024 * 1024);
    }

    #[test]
    fn iter_lists_labels() {
        let mut mem = DeviceMemory::with_capacity(100);
        mem.allocate("b", 1).unwrap();
        mem.allocate("a", 2).unwrap();
        let items: Vec<_> = mem.iter().collect();
        assert_eq!(items, vec![("a", 2), ("b", 1)]);
    }

    #[test]
    fn error_display_mentions_label() {
        let mut mem = DeviceMemory::with_capacity(10);
        let err = mem.allocate("features", 20).unwrap_err();
        assert!(err.to_string().contains("features"));
    }
}
