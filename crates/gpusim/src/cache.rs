//! Set-associative LRU cache simulator.
//!
//! Used to measure the L1/L2 hit rates of the aggregation phase. The paper
//! reports (Table 2) that irregular neighbour accesses achieve only ~4 % L1
//! and ~20 % L2 hit rates on real hardware; this simulator reproduces those
//! numbers from the actual access streams of sampled subgraphs.

/// Geometry of a simulated cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// A cache with the given capacity, 128-byte lines, 8 ways.
    pub fn with_capacity(capacity_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            line_bytes: 128,
            ways: 8,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero capacity, line size, or
    /// ways, or capacity smaller than one way of lines).
    pub fn num_sets(&self) -> usize {
        assert!(self.line_bytes > 0 && self.ways > 0, "degenerate cache");
        let lines = (self.capacity_bytes / self.line_bytes) as usize;
        let sets = lines / self.ways;
        assert!(sets > 0, "cache too small for its associativity");
        sets
    }
}

/// Running hit/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; zero when no accesses occurred.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// # Example
///
/// ```
/// use fastgl_gpusim::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig { capacity_bytes: 1024, line_bytes: 64, ways: 2 });
/// assert!(!c.access(0));   // cold miss
/// assert!(c.access(32));   // same line: hit
/// assert_eq!(c.stats().hit_rate(), 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    num_sets: usize,
    /// `sets[s]` holds the resident line tags of set `s` in LRU order,
    /// most-recently-used last.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (see [`CacheConfig::num_sets`]).
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        Self {
            config,
            num_sets,
            sets: vec![Vec::with_capacity(config.ways); num_sets],
            stats: CacheStats::default(),
        }
    }

    /// Accesses one byte address; returns `true` on hit. Misses insert the
    /// line, evicting the least-recently-used line of the set if full.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.config.line_bytes;
        let set_idx = (line % self.num_sets as u64) as usize;
        let tag = line / self.num_sets as u64;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Move to MRU position.
            let t = set.remove(pos);
            set.push(t);
            self.stats.hits += 1;
            true
        } else {
            if set.len() == self.config.ways {
                set.remove(0);
            }
            set.push(tag);
            self.stats.misses += 1;
            false
        }
    }

    /// Accesses a contiguous byte range, one access per touched line.
    /// Returns the number of lines that hit.
    pub fn access_range(&mut self, addr: u64, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let first = addr / self.config.line_bytes;
        let last = (addr + bytes - 1) / self.config.line_bytes;
        let mut hits = 0;
        for line in first..=last {
            if self.access(line * self.config.line_bytes) {
                hits += 1;
            }
        }
        hits
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Empties the cache and zeroes the counters.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 lines of 64 bytes, 2 ways => 2 sets.
        Cache::new(CacheConfig {
            capacity_bytes: 256,
            line_bytes: 64,
            ways: 2,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (line % 2 == 0).
        c.access(0); // miss, set0 = [0]
        c.access(128); // miss, set0 = [0, 2]
        c.access(0); // hit,  set0 = [2, 0]
        c.access(256); // miss, evicts line 2, set0 = [0, 4]
        assert!(c.access(0), "line 0 should survive (was MRU)");
        assert!(!c.access(128), "line 2 was LRU and evicted");
    }

    #[test]
    fn capacity_working_set_all_hits_after_warmup() {
        let mut c = Cache::new(CacheConfig {
            capacity_bytes: 8192,
            line_bytes: 64,
            ways: 4,
        });
        for addr in (0..8192).step_by(64) {
            c.access(addr);
        }
        c.reset();
        // reset clears contents too: warm again then measure.
        for addr in (0..8192).step_by(64) {
            c.access(addr);
        }
        let before = c.stats();
        for addr in (0..8192).step_by(64) {
            assert!(c.access(addr));
        }
        let after = c.stats();
        assert_eq!(after.hits - before.hits, 128);
    }

    #[test]
    fn streaming_over_capacity_never_hits() {
        let mut c = tiny();
        for addr in (0..64 * 1024).step_by(64) {
            c.access(addr);
        }
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn access_range_counts_lines() {
        let mut c = tiny();
        let hits = c.access_range(0, 200); // lines 0..=3 -> 4 accesses
        assert_eq!(hits, 0);
        assert_eq!(c.stats().accesses(), 4);
        let hits = c.access_range(0, 64);
        assert_eq!(hits, 1);
        assert_eq!(c.access_range(0, 0), 0);
    }

    #[test]
    fn hit_rate_bounds() {
        let mut c = tiny();
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.access(0);
        c.access(0);
        let r = c.stats().hit_rate();
        assert!(r > 0.0 && r < 1.0);
    }

    #[test]
    #[should_panic(expected = "cache too small")]
    fn degenerate_geometry_rejected() {
        let _ = Cache::new(CacheConfig {
            capacity_bytes: 64,
            line_bytes: 64,
            ways: 2,
        });
    }

    #[test]
    fn config_accessors() {
        let c = tiny();
        assert_eq!(c.config().ways, 2);
        assert_eq!(c.config().num_sets(), 2);
    }
}
