//! Hardware specifications of the simulated system.
//!
//! The default device reproduces the NVIDIA RTX 3090 as characterised by
//! Table 3 of the paper (bandwidth and capacity of each memory level) plus
//! its public peak-FLOP figure; the default host models the paper's PCIe
//! 4.0 ×16 link and EPYC-class CPU.

use serde::{Deserialize, Serialize};

/// Parameters of the simulated GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable model name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// L1 cache / shared memory capacity per SM, bytes (unified pool).
    pub l1_bytes_per_sm: u64,
    /// L2 cache capacity, bytes.
    pub l2_bytes: u64,
    /// Global (device) memory capacity, bytes.
    pub global_bytes: u64,
    /// Shared-memory / L1 bandwidth, bytes per second (~12 TB/s on 3090).
    pub bw_shared: f64,
    /// L2 bandwidth, bytes per second (3–5 TB/s on 3090).
    pub bw_l2: f64,
    /// Global memory bandwidth, bytes per second (938 GB/s on 3090).
    pub bw_global: f64,
    /// Peak FP32 throughput, FLOP/s (29.15 TFLOP/s on 3090).
    pub peak_flops: f64,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Maximum threads per thread block (1024 on current hardware).
    pub max_threads_per_block: u32,
}

impl DeviceSpec {
    /// The RTX 3090 as described by the paper's Table 3.
    pub fn rtx3090() -> Self {
        Self {
            name: "RTX 3090 (simulated)".to_string(),
            sm_count: 82,
            l1_bytes_per_sm: 128 * 1024,
            l2_bytes: 6 * 1024 * 1024,
            global_bytes: 24 * 1024 * 1024 * 1024,
            bw_shared: 12.0e12,
            bw_l2: 4.0e12,
            bw_global: 938.0e9,
            peak_flops: 29.15e12,
            line_bytes: 128,
            max_threads_per_block: 1024,
        }
    }
}

impl DeviceSpec {
    /// An NVIDIA A100 (SXM, 80 GB): more SMs, a 40 MB L2, and HBM2e.
    pub fn a100() -> Self {
        Self {
            name: "A100 80GB (simulated)".to_string(),
            sm_count: 108,
            l1_bytes_per_sm: 192 * 1024,
            l2_bytes: 40 * 1024 * 1024,
            global_bytes: 80 * 1024 * 1024 * 1024,
            bw_shared: 19.0e12,
            bw_l2: 6.0e12,
            bw_global: 2_039.0e9,
            peak_flops: 19.5e12,
            line_bytes: 128,
            max_threads_per_block: 1024,
        }
    }

    /// An NVIDIA H100 (SXM, 80 GB): 50 MB L2 and HBM3.
    pub fn h100() -> Self {
        Self {
            name: "H100 80GB (simulated)".to_string(),
            sm_count: 132,
            l1_bytes_per_sm: 228 * 1024,
            l2_bytes: 50 * 1024 * 1024,
            global_bytes: 80 * 1024 * 1024 * 1024,
            bw_shared: 33.0e12,
            bw_l2: 12.0e12,
            bw_global: 3_350.0e9,
            peak_flops: 66.9e12,
            line_bytes: 128,
            max_threads_per_block: 1024,
        }
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        Self::rtx3090()
    }
}

/// Parameters of the simulated host and host–device interconnect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSpec {
    /// Nominal PCIe bandwidth, bytes per second (32 GB/s for PCIe 4.0 ×16).
    pub pcie_bw: f64,
    /// Achievable fraction of the nominal PCIe bandwidth for large copies.
    pub pcie_efficiency: f64,
    /// Fixed per-transfer latency, nanoseconds (driver + DMA setup).
    pub pcie_latency_ns: u64,
    /// Host-memory gather bandwidth, bytes per second: the rate at which
    /// the CPU can assemble scattered feature rows into a pinned staging
    /// buffer (stage 1 of the memory IO phase, paper §7(3)).
    pub gather_bw: f64,
    /// Peer-to-peer bandwidth between GPUs for gradient all-reduce,
    /// bytes per second.
    pub p2p_bw: f64,
}

impl HostSpec {
    /// PCIe 4.0 ×16 host as used in the paper's testbed. The per-transfer
    /// latency is scaled down with the workload like the other fixed
    /// overheads (see [`CostParams::default`]).
    pub fn pcie4() -> Self {
        Self {
            pcie_bw: 32.0e9,
            pcie_efficiency: 0.85,
            pcie_latency_ns: 2_000,
            gather_bw: 24.0e9,
            p2p_bw: 20.0e9,
        }
    }
}

impl Default for HostSpec {
    fn default() -> Self {
        Self::pcie4()
    }
}

/// Calibrated per-operation costs.
///
/// Each `*_ns` value is the *amortized* cost of one logical operation after
/// accounting for the device's massive parallelism — e.g. a GPU performs
/// billions of neighbour draws per second across its threads, so the
/// per-draw cost is a fraction of a nanosecond of wall time even though a
/// single draw takes far longer in isolation. The defaults are calibrated
/// so the simulated phase breakdowns land in the regimes the paper reports
/// (memory IO ≈ 50–77 % of a DGL epoch, ID map ≈ 70 % of the sample phase,
/// and so on); see `EXPERIMENTS.md` for the calibration evidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// GPU neighbour-draw cost per sampled edge (amortized), ns.
    pub gpu_sample_edge_ns: f64,
    /// CPU neighbour-draw cost per sampled edge (PyG-style sampling), ns.
    pub cpu_sample_edge_ns: f64,
    /// GPU hash-table operation (hash + first probe), ns per ID.
    pub gpu_hash_op_ns: f64,
    /// Additional linear-probe step, ns per probe.
    pub gpu_probe_ns: f64,
    /// Cost of a CAS retry caused by contention, ns per conflict.
    pub gpu_cas_conflict_ns: f64,
    /// Serialized cost per unique node of the baseline (DGL-style) local-ID
    /// assignment, which synchronizes threads to avoid duplicate local IDs
    /// (paper §3.3), ns.
    pub gpu_sync_serialization_ns: f64,
    /// Hash-lookup cost in the final global→local transform kernel, ns.
    pub gpu_lookup_ns: f64,
    /// Fixed kernel-launch overhead, ns.
    pub kernel_launch_ns: u64,
    /// Fraction of peak FLOPs a dense GEMM (the update phase) achieves.
    pub gemm_efficiency: f64,
    /// GNNAdvisor-style per-edge preprocessing cost (neighbour grouping and
    /// renumbering executed before every iteration's computation), ns.
    pub preprocess_edge_ns: f64,
    /// Host-side bookkeeping per mini-batch (queueing, Python-level glue), ns.
    pub per_batch_overhead_ns: u64,
}

impl Default for CostParams {
    /// Defaults calibrated for the workspace's scaled-down graphs.
    ///
    /// Two deliberate departures from raw hardware values: the fixed
    /// per-launch and per-batch overheads are set well below their
    /// real-hardware magnitudes (≈5 µs and ≈0.1–1 ms). The experiments run
    /// on graphs ~100× smaller than the paper's, which shrinks all
    /// bandwidth- and count-proportional work by that factor while fixed
    /// overheads would stay constant — letting them dominate would distort
    /// every phase ratio that is bandwidth-determined at the paper's scale.
    /// Scaling the fixed overheads along with the workload preserves the
    /// paper's regime; see DESIGN.md §1.
    fn default() -> Self {
        Self {
            gpu_sample_edge_ns: 2.0,
            cpu_sample_edge_ns: 60.0,
            gpu_hash_op_ns: 0.8,
            gpu_probe_ns: 0.3,
            gpu_cas_conflict_ns: 1.2,
            gpu_sync_serialization_ns: 10.0,
            gpu_lookup_ns: 0.4,
            kernel_launch_ns: 800,
            gemm_efficiency: 0.55,
            preprocess_edge_ns: 8.0,
            per_batch_overhead_ns: 25_000,
        }
    }
}

/// The full simulated system: device, host, cost calibration, GPU count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    /// GPU model parameters.
    pub device: DeviceSpec,
    /// Host and interconnect parameters.
    pub host: HostSpec,
    /// Calibrated per-operation costs.
    pub cost: CostParams,
    /// Number of identical GPUs in the machine.
    pub num_gpus: usize,
}

impl SystemSpec {
    /// The paper's testbed: RTX 3090s behind PCIe 4.0, `num_gpus` of them.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus == 0`.
    pub fn rtx3090_server(num_gpus: usize) -> Self {
        assert!(num_gpus > 0, "a system needs at least one GPU");
        Self {
            device: DeviceSpec::rtx3090(),
            host: HostSpec::pcie4(),
            cost: CostParams::default(),
            num_gpus,
        }
    }

    /// Effective PCIe bandwidth after the efficiency factor.
    pub fn effective_pcie_bw(&self) -> f64 {
        self.host.pcie_bw * self.host.pcie_efficiency
    }
}

impl Default for SystemSpec {
    fn default() -> Self {
        Self::rtx3090_server(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtx3090_matches_table3() {
        let d = DeviceSpec::rtx3090();
        assert_eq!(d.l1_bytes_per_sm, 131_072); // 128 KB per SM
        assert_eq!(d.l2_bytes, 6 * 1024 * 1024); // 6 MB
        assert_eq!(d.global_bytes, 24 * 1024 * 1024 * 1024); // 24 GB
        assert!((d.bw_shared - 12.0e12).abs() < 1.0);
        assert!((d.bw_global - 938.0e9).abs() < 1.0);
        assert!((d.peak_flops - 29.15e12).abs() < 1e6);
    }

    #[test]
    fn bandwidth_hierarchy_is_ordered_on_every_preset() {
        for d in [
            DeviceSpec::rtx3090(),
            DeviceSpec::a100(),
            DeviceSpec::h100(),
        ] {
            assert!(d.bw_shared > d.bw_l2, "{}", d.name);
            assert!(d.bw_l2 > d.bw_global, "{}", d.name);
            assert!(d.l2_bytes > d.l1_bytes_per_sm, "{}", d.name);
        }
    }

    #[test]
    fn datacenter_parts_outclass_the_3090_where_expected() {
        let consumer = DeviceSpec::rtx3090();
        let a100 = DeviceSpec::a100();
        assert!(a100.bw_global > 2.0 * consumer.bw_global, "HBM vs GDDR");
        assert!(a100.l2_bytes > 6 * consumer.l2_bytes);
        // FP32 peak is where the 3090 keeps up (no tensor cores modelled).
        assert!(a100.peak_flops < consumer.peak_flops * 1.1);
    }

    #[test]
    fn system_effective_bandwidth() {
        let s = SystemSpec::rtx3090_server(2);
        assert!(s.effective_pcie_bw() < s.host.pcie_bw);
        assert!(s.effective_pcie_bw() > 0.5 * s.host.pcie_bw);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_rejected() {
        let _ = SystemSpec::rtx3090_server(0);
    }

    #[test]
    fn cpu_sampling_much_slower_than_gpu() {
        let c = CostParams::default();
        assert!(c.cpu_sample_edge_ns > 10.0 * c.gpu_sample_edge_ns);
    }

    #[test]
    fn sync_serialization_dominates_hash_cost() {
        // The premise of Fused-Map (paper §3.3): the baseline's local-ID
        // synchronization is far more expensive than the hashing itself.
        let c = CostParams::default();
        assert!(c.gpu_sync_serialization_ns > 3.0 * c.gpu_hash_op_ns);
    }
}
