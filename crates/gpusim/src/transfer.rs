//! PCIe transfer engine — the simulator of the memory IO phase.
//!
//! The memory IO phase has two stages (paper §7): (1) the host gathers the
//! required feature rows into a contiguous staging buffer, and (2) the
//! buffer crosses PCIe. Both are bandwidth-bound; stage 2 dominates on
//! PCIe 4.0 but the engine models both so the paper's "future direction"
//! observation (host-side organisation becoming the bottleneck at
//! Grace-Hopper bandwidths) can be explored too.

use crate::fault::{FaultedTransfer, RetryCostModel, TransferFault};
use crate::spec::HostSpec;
use crate::timeline::SimTime;

/// Simulates host→device and device→host copies and accumulates a ledger
/// of transferred bytes.
///
/// # Example
///
/// ```
/// use fastgl_gpusim::{PcieEngine, SimTime};
///
/// let mut pcie = PcieEngine::default();
/// let t = pcie.feature_load(100 << 20); // gather + copy 100 MB
/// assert!(t > SimTime::from_millis(3)); // ≥ 100 MB / 32 GB/s
/// assert_eq!(pcie.h2d_total(), 100 << 20);
/// ```
#[derive(Debug, Clone)]
pub struct PcieEngine {
    spec: HostSpec,
    h2d_bytes: u64,
    d2h_bytes: u64,
    transfers: u64,
}

impl PcieEngine {
    /// An engine over the given host parameters.
    pub fn new(spec: HostSpec) -> Self {
        Self {
            spec,
            h2d_bytes: 0,
            d2h_bytes: 0,
            transfers: 0,
        }
    }

    /// Effective PCIe bandwidth in bytes/s.
    pub fn effective_bw(&self) -> f64 {
        self.spec.pcie_bw * self.spec.pcie_efficiency
    }

    /// Time for the host to gather `bytes` of scattered rows into a pinned
    /// staging buffer (stage 1 of the memory IO phase).
    pub fn host_gather_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 / self.spec.gather_bw)
    }

    /// Time for one host→device copy of `bytes` (stage 2), including the
    /// fixed per-transfer latency. Records the transfer in the ledger.
    pub fn h2d(&mut self, bytes: u64) -> SimTime {
        self.h2d_bytes += bytes;
        self.transfers += 1;
        self.copy_time(bytes)
    }

    /// Time for one device→host copy of `bytes`. Records the transfer.
    pub fn d2h(&mut self, bytes: u64) -> SimTime {
        self.d2h_bytes += bytes;
        self.transfers += 1;
        self.copy_time(bytes)
    }

    /// Pure copy-time query (no ledger update).
    pub fn copy_time(&self, bytes: u64) -> SimTime {
        SimTime::from_nanos(self.spec.pcie_latency_ns)
            + SimTime::from_secs_f64(bytes as f64 / self.effective_bw())
    }

    /// [`h2d`](Self::h2d) under an optional injected fault: a clean call
    /// (`fault == None`) is bit-identical to `h2d`, a [`TransferFault::Stall`]
    /// adds `factor ×` the copy time, and a [`TransferFault::Retryable`]
    /// charges `model`'s deterministic backoff and accounts the wasted
    /// partial copies as extra PCIe traffic in the ledger.
    pub fn h2d_with_fault(
        &mut self,
        bytes: u64,
        fault: Option<&TransferFault>,
        model: &RetryCostModel,
    ) -> FaultedTransfer {
        let time = self.h2d(bytes);
        match fault {
            None => FaultedTransfer {
                time,
                ..Default::default()
            },
            Some(TransferFault::Stall { factor }) => {
                let overhead = self.copy_time(bytes) * *factor;
                FaultedTransfer {
                    time: time + overhead,
                    overhead,
                    retries: 0,
                    stalled: true,
                }
            }
            Some(TransferFault::Retryable { failures }) => {
                let overhead = model.overhead(self.copy_time(bytes), *failures);
                self.h2d_bytes += model.wasted_bytes(bytes, *failures);
                self.transfers += *failures as u64;
                FaultedTransfer {
                    time: time + overhead,
                    overhead,
                    retries: *failures,
                    stalled: false,
                }
            }
        }
    }

    /// Full memory-IO time for a feature load: host gather followed by the
    /// PCIe copy. Records the transfer.
    pub fn feature_load(&mut self, bytes: u64) -> SimTime {
        self.host_gather_time(bytes) + self.h2d(bytes)
    }

    /// Total host→device bytes moved so far.
    pub fn h2d_total(&self) -> u64 {
        self.h2d_bytes
    }

    /// Total device→host bytes moved so far.
    pub fn d2h_total(&self) -> u64 {
        self.d2h_bytes
    }

    /// Number of individual transfers issued.
    pub fn transfer_count(&self) -> u64 {
        self.transfers
    }

    /// Zeroes the ledger.
    pub fn reset(&mut self) {
        self.h2d_bytes = 0;
        self.d2h_bytes = 0;
        self.transfers = 0;
    }
}

impl Default for PcieEngine {
    fn default() -> Self {
        Self::new(HostSpec::default())
    }
}

/// Ring all-reduce time for gradient synchronization across `n` workers:
/// each worker sends and receives `2 (n-1)/n · bytes` over the peer link.
pub fn ring_allreduce_time(spec: &HostSpec, bytes: u64, n: usize) -> SimTime {
    if n <= 1 {
        return SimTime::ZERO;
    }
    let volume = 2.0 * (n as f64 - 1.0) / n as f64 * bytes as f64;
    // 2(n-1) latency-bound steps plus the bandwidth term.
    SimTime::from_nanos(spec.pcie_latency_ns * 2 * (n as u64 - 1))
        + SimTime::from_secs_f64(volume / spec.p2p_bw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> PcieEngine {
        PcieEngine::new(HostSpec::pcie4())
    }

    #[test]
    fn copy_time_scales_linearly_past_latency() {
        let e = engine();
        let t1 = e.copy_time(1 << 20);
        let t2 = e.copy_time(2 << 20);
        let latency = SimTime::from_nanos(HostSpec::pcie4().pcie_latency_ns);
        let body1 = t1.saturating_sub(latency).as_secs_f64();
        let body2 = t2.saturating_sub(latency).as_secs_f64();
        assert!((body2 / body1 - 2.0).abs() < 0.01, "{body1} {body2}");
    }

    #[test]
    fn small_transfers_pay_latency() {
        let e = engine();
        let t = e.copy_time(1);
        assert!(t >= SimTime::from_nanos(HostSpec::pcie4().pcie_latency_ns));
    }

    #[test]
    fn gigabyte_takes_expected_time() {
        let e = engine();
        // 1 GB at 27.2 GB/s effective ≈ 36.8 ms.
        let t = e.copy_time(1_000_000_000);
        assert!((t.as_secs_f64() - 0.0368).abs() < 0.002, "{t}");
    }

    #[test]
    fn ledger_accumulates() {
        let mut e = engine();
        e.h2d(100);
        e.h2d(200);
        e.d2h(50);
        assert_eq!(e.h2d_total(), 300);
        assert_eq!(e.d2h_total(), 50);
        assert_eq!(e.transfer_count(), 3);
        e.reset();
        assert_eq!(e.h2d_total(), 0);
        assert_eq!(e.transfer_count(), 0);
    }

    #[test]
    fn feature_load_includes_gather() {
        let mut e = engine();
        let bytes = 100_000_000u64;
        let load = e.feature_load(bytes);
        let copy_only = e.copy_time(bytes);
        assert!(load > copy_only);
        assert_eq!(e.h2d_total(), bytes);
    }

    #[test]
    fn clean_faulted_transfer_matches_h2d() {
        let mut a = engine();
        let mut b = engine();
        let t = a.h2d(1 << 20);
        let ft = b.h2d_with_fault(1 << 20, None, &RetryCostModel::default());
        assert_eq!(ft.time, t);
        assert_eq!(ft.overhead, SimTime::ZERO);
        assert_eq!(a.h2d_total(), b.h2d_total());
    }

    #[test]
    fn stall_delays_without_extra_bytes() {
        let mut e = engine();
        let clean = e.copy_time(1 << 20);
        let ft = e.h2d_with_fault(
            1 << 20,
            Some(&TransferFault::Stall { factor: 4.0 }),
            &RetryCostModel::default(),
        );
        assert!(ft.stalled);
        assert_eq!(ft.overhead, clean * 4.0);
        assert_eq!(e.h2d_total(), 1 << 20, "stalls move no extra bytes");
    }

    #[test]
    fn retries_charge_backoff_and_wasted_bytes() {
        let mut e = engine();
        let ft = e.h2d_with_fault(
            1000,
            Some(&TransferFault::Retryable { failures: 2 }),
            &RetryCostModel::default(),
        );
        assert_eq!(ft.retries, 2);
        assert!(ft.overhead > SimTime::ZERO);
        assert_eq!(e.h2d_total(), 2000, "two half-copies wasted");
        assert_eq!(e.transfer_count(), 3, "one success + two failures");
    }

    #[test]
    fn allreduce_zero_for_single_worker() {
        assert_eq!(
            ring_allreduce_time(&HostSpec::pcie4(), 1 << 20, 1),
            SimTime::ZERO
        );
    }

    #[test]
    fn allreduce_grows_sublinearly_with_workers() {
        let spec = HostSpec::pcie4();
        let bytes = 100 << 20;
        let t2 = ring_allreduce_time(&spec, bytes, 2).as_secs_f64();
        let t8 = ring_allreduce_time(&spec, bytes, 8).as_secs_f64();
        // Volume factor goes 1.0 -> 1.75, so under 2x even with latency.
        assert!(t8 < 2.0 * t2, "t2={t2} t8={t8}");
        assert!(t8 > t2);
    }
}
