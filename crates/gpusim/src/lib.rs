//! A deterministic simulator of the GPU subsystem FastGL runs on.
//!
//! The FastGL paper's three techniques are all *memory-system* optimisations:
//! their benefit is fully characterised by how many bytes move across PCIe,
//! how many bytes each GPU memory level serves, how many thread
//! synchronizations a kernel performs, and how much compute overlaps it all.
//! This crate models exactly those quantities:
//!
//! * [`spec`] — hardware parameters of the simulated device (an RTX 3090 by
//!   default, with the numbers from Table 3 of the paper) and host.
//! * [`timeline`] — simulated time ([`SimTime`]) and per-phase accounting
//!   ([`PhaseBreakdown`]): sample / memory IO / computation, the three
//!   phases the paper's breakdowns report.
//! * [`cache`] — a set-associative LRU cache simulator used to obtain the
//!   L1/L2 hit rates of the aggregation phase (Table 2).
//! * [`memory`] — device global-memory accounting (Tables 1 and 9).
//! * [`transfer`] — the PCIe transfer engine (the memory IO phase).
//! * [`fault`] — simulated transfer faults (stalls, retryable errors) and
//!   the deterministic retry cost model that prices their recovery.
//! * [`kernel`] — the kernel cost model: `time = max(memory, compute)` plus
//!   launch, barrier, and atomic-contention charges.
//! * [`aggregate`] — trace-driven cost of the SpMM-like aggregation under
//!   naive and Memory-Aware access patterns (Eq. 3 and 4 of the paper).
//! * [`roofline`] — operational intensity and achievable GFLOP/s (Fig. 12).
//!
//! Simulated time is a pure function of counted events; no wall-clock
//! measurement is involved, so results reproduce bit-for-bit everywhere.

#![deny(missing_docs)]

pub mod aggregate;
pub mod cache;
pub mod fault;
pub mod kernel;
pub mod memory;
pub mod overlap;
pub mod roofline;
pub mod spec;
pub mod timeline;
pub mod transfer;

pub use aggregate::{AggregationCost, AggregationKernel, SubgraphLayerTrace};
pub use cache::{Cache, CacheConfig, CacheStats};
pub use fault::{FaultedTransfer, RetryCostModel, TransferFault};
pub use kernel::{KernelCost, KernelProfile};
pub use memory::{DeviceMemory, MemoryError};
pub use roofline::RooflinePoint;
pub use spec::{CostParams, DeviceSpec, HostSpec, SystemSpec};
pub use timeline::{PhaseBreakdown, SimTime};
pub use transfer::PcieEngine;

#[cfg(test)]
pub(crate) mod test_sync {
    use std::sync::Mutex;

    /// Serializes the crate's tests that toggle the process-global
    /// telemetry state (cargo runs unit tests in parallel threads).
    pub(crate) static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());
}
