//! Trace-driven cost of the aggregation phase (sparse gather-reduce).
//!
//! The aggregation of Eq. 1 (`h_u = Σ w_uv · x_v`) is the irregular kernel
//! whose memory behaviour the paper's Memory-Aware technique redesigns.
//! Two access patterns are modelled:
//!
//! * **Naive** (DGL/PyG): partial sums, weights, and source features all
//!   live in global memory and flow through the L1/L2 caches (paper Eq. 3).
//!   The hit rates are *measured* by replaying the subgraph's actual access
//!   stream — interleaved across the resident thread blocks of an SM the
//!   way a real GPU interleaves warps — through the cache simulator.
//! * **Memory-Aware** (FastGL): each thread block stages its partial sums
//!   and weights in shared memory, and only source features stream from
//!   global memory (paper Eq. 4, thread-block tiling X × Y of §4.2).
//!
//! The returned [`KernelProfile`]s feed the kernel cost model, and the
//! measured hit rates regenerate Table 2.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::kernel::{KernelCost, KernelProfile};
use crate::spec::{CostParams, DeviceSpec};

/// Base address of the traced feature region.
const FEAT_BASE: u64 = 0;

/// A layer of a sampled subgraph, described compactly for tracing.
///
/// `offsets`/`sources` form a local CSR: target (local) node `u` aggregates
/// from `sources[offsets[u] .. offsets[u + 1]]`.
#[derive(Debug, Clone, Copy)]
pub struct SubgraphLayerTrace<'a> {
    /// CSR offsets over target nodes (`len = num_targets + 1`).
    pub offsets: &'a [u64],
    /// Flat local source indices.
    pub sources: &'a [u64],
    /// Number of distinct source nodes whose feature rows are resident.
    pub num_sources: u64,
    /// Feature dimensionality of this layer's input.
    pub feature_dim: usize,
}

impl<'a> SubgraphLayerTrace<'a> {
    /// Number of target nodes.
    pub fn num_targets(&self) -> u64 {
        (self.offsets.len() - 1) as u64
    }

    /// Number of edges (non-zeros).
    pub fn nnz(&self) -> u64 {
        self.sources.len() as u64
    }
}

/// The evaluated cost of one aggregation pass.
#[derive(Debug, Clone, Copy)]
pub struct AggregationCost {
    /// Event counts of the kernel.
    pub profile: KernelProfile,
    /// Evaluated time components.
    pub cost: KernelCost,
    /// Measured L1 statistics (naive pattern only; zero for Memory-Aware).
    pub l1: CacheStats,
    /// Measured L2 statistics (naive pattern only; zero for Memory-Aware).
    pub l2: CacheStats,
}

impl AggregationCost {
    /// Achieved GFLOP/s of the pass.
    pub fn gflops(&self) -> f64 {
        self.cost.achieved_flops(self.profile.flops) / 1e9
    }

    /// Operational intensity in FLOP per DRAM byte (for the roofline).
    pub fn operational_intensity(&self) -> f64 {
        if self.profile.bytes_global == 0 {
            f64::INFINITY
        } else {
            self.profile.flops as f64 / self.profile.bytes_global as f64
        }
    }
}

/// Simulates the aggregation kernel of a GNN layer on a device.
#[derive(Debug, Clone)]
pub struct AggregationKernel {
    device: DeviceSpec,
    params: CostParams,
    /// Targets per thread block (paper: X = 8).
    pub block_targets: usize,
    /// Feature dimensions per thread block (paper: Y = 32).
    pub block_dims: usize,
    /// Thread blocks resident per SM whose access streams interleave.
    pub resident_blocks: usize,
    /// Cap on traced cache accesses; longer streams are cut off and the
    /// measured hit rates extrapolated (they converge far earlier).
    pub max_trace_accesses: u64,
    /// Fraction of the real cache capacities used during trace replay.
    ///
    /// Experiments run on graphs scaled down by ~100x; replaying their
    /// access streams against a full-size L1/L2 would let the caches hold
    /// a far larger share of the working set than at the paper's scale,
    /// inflating hit rates (the paper measures ~4 % L1 / ~20 % L2). Set
    /// this to the dataset's scale factor so cache-to-working-set ratios
    /// match the paper's regime; `1.0` replays against real capacities.
    pub capacity_scale: f64,
}

impl AggregationKernel {
    /// A kernel simulator with the paper's tiling (X = 8, Y = 32).
    pub fn new(device: DeviceSpec, params: CostParams) -> Self {
        Self {
            device,
            params,
            block_targets: 8,
            block_dims: 32,
            resident_blocks: 32,
            max_trace_accesses: 4_000_000,
            capacity_scale: 1.0,
        }
    }

    /// Sets the cache-capacity scale (see [`AggregationKernel::capacity_scale`]).
    pub fn with_capacity_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "capacity scale in (0, 1]");
        self.capacity_scale = scale;
        self
    }

    /// Logical bytes of the naive pattern (paper Eq. 3): partial-sum reads,
    /// source-feature reads, and per-dimension weight reads, all 4-byte FP32.
    fn naive_logical_bytes(trace: &SubgraphLayerTrace<'_>) -> u64 {
        let d = trace.feature_dim as u64;
        let nnz = trace.nnz();
        let t = trace.num_targets();
        let psum_reads = 4 * nnz.saturating_sub(t) * d;
        let feat_reads = 4 * nnz * d;
        let weight_reads = 4 * nnz * d;
        psum_reads + feat_reads + weight_reads
    }

    /// FLOPs of one aggregation pass (one FMA per edge per dimension).
    fn flops(trace: &SubgraphLayerTrace<'_>) -> u64 {
        2 * trace.nnz() * trace.feature_dim as u64
    }

    /// Cost of the naive (DGL-style) aggregation: everything flows through
    /// the L1/L2 caches from global memory, and the hit rates are measured
    /// by replaying the actual interleaved access stream.
    pub fn naive_cost(&self, trace: &SubgraphLayerTrace<'_>) -> AggregationCost {
        let (l1, l2) = self.replay_caches(trace);
        self.naive_cost_inner(trace, l1, l2)
    }

    /// Cost of the naive aggregation under *known* hit rates, skipping the
    /// trace replay. Pipelines trace one representative batch per layer and
    /// reuse its measured rates for the rest of the epoch (subsequent
    /// batches of the same layer have statistically identical streams).
    pub fn naive_cost_with_hit_rates(
        &self,
        trace: &SubgraphLayerTrace<'_>,
        h1: f64,
        h2: f64,
    ) -> AggregationCost {
        let synth = |rate: f64| {
            let accesses = trace.nnz().max(1);
            CacheStats {
                hits: (accesses as f64 * rate) as u64,
                misses: accesses - (accesses as f64 * rate) as u64,
            }
        };
        self.naive_cost_inner(trace, synth(h1), synth(h2))
    }

    fn naive_cost_inner(
        &self,
        trace: &SubgraphLayerTrace<'_>,
        l1: CacheStats,
        l2: CacheStats,
    ) -> AggregationCost {
        let total = Self::naive_logical_bytes(trace);
        let h1 = l1.hit_rate();
        let h2 = l2.hit_rate();
        let bytes_l1 = (total as f64 * h1) as u64;
        let after_l1 = total - bytes_l1;
        let bytes_l2 = (after_l1 as f64 * h2) as u64;
        let bytes_global = after_l1 - bytes_l2;
        let profile = KernelProfile {
            flops: Self::flops(trace),
            bytes_l1,
            bytes_l2,
            bytes_global,
            launches: 1,
            ..Default::default()
        };
        AggregationCost {
            profile,
            cost: profile.cost(&self.device, &self.params),
            l1,
            l2,
        }
    }

    /// Cost of the Memory-Aware aggregation (paper Eq. 4): partial sums and
    /// weights served by shared memory, source features and the first touch
    /// of each weight from global memory.
    ///
    /// # Panics
    ///
    /// Panics if the tiling's shared-memory requirement exceeds the SM's
    /// capacity, which would be a configuration bug (the paper's X = 8,
    /// Y = 32 needs ~1 KB plus weights).
    pub fn memory_aware_cost(&self, trace: &SubgraphLayerTrace<'_>) -> AggregationCost {
        self.memory_aware_cost_with_hit_rates(trace, 0.0, 0.0)
    }

    /// [`AggregationKernel::memory_aware_cost`] with known L1/L2 hit rates
    /// for the source-feature gather stream (measured once on the naive
    /// replay — the stream's addresses are identical in both kernels).
    pub fn memory_aware_cost_with_hit_rates(
        &self,
        trace: &SubgraphLayerTrace<'_>,
        h1: f64,
        h2: f64,
    ) -> AggregationCost {
        let d = trace.feature_dim as u64;
        let nnz = trace.nnz();
        let t = trace.num_targets();
        // Shared-memory requirement per block: 4·X·Y partial sums plus
        // 4·X·avg|N(u)| weights (paper §4.2).
        let avg_deg = if t == 0 { 0 } else { nnz / t.max(1) };
        let shared_per_block = 4 * (self.block_targets * self.block_dims) as u64
            + 4 * self.block_targets as u64 * avg_deg.max(1);
        assert!(
            shared_per_block <= self.device.l1_bytes_per_sm,
            "tiling needs {shared_per_block} B of shared memory, SM has {}",
            self.device.l1_bytes_per_sm
        );
        let bytes_shared = 4 * nnz.saturating_sub(t) * d + 4 * nnz * d.saturating_sub(1);
        // The source-feature stream still flows through L1/L2 exactly as in
        // the naive kernel (same gather addresses), so it receives the same
        // measured hit rates; the per-edge weight first-touch is global.
        let feature_bytes = 4 * nnz * d;
        let f_l1 = (feature_bytes as f64 * h1) as u64;
        let after_l1 = feature_bytes - f_l1;
        let f_l2 = (after_l1 as f64 * h2) as u64;
        let bytes_global = (after_l1 - f_l2) + 4 * nnz;
        // The ⌈d / Y⌉ dimension tiles are thread blocks of a single grid
        // (paper §4.2), so one launch covers the whole aggregation.
        let profile = KernelProfile {
            flops: Self::flops(trace),
            bytes_shared,
            bytes_l1: f_l1,
            bytes_l2: f_l2,
            bytes_global,
            launches: 1,
            ..Default::default()
        };
        AggregationCost {
            profile,
            cost: profile.cost(&self.device, &self.params),
            l1: CacheStats::default(),
            l2: CacheStats::default(),
        }
    }

    /// Replays the naive access stream of a representative SM through the
    /// L1 simulator and its misses through (a fair share of) the L2.
    ///
    /// Blocks are assigned to SMs round-robin; the representative SM keeps
    /// `resident_blocks` of its blocks in flight and their access streams
    /// interleave one edge at a time — the reason irregular aggregation
    /// sees so little locality on a real GPU.
    fn replay_caches(&self, trace: &SubgraphLayerTrace<'_>) -> (CacheStats, CacheStats) {
        let d_bytes = trace.feature_dim as u64 * 4;
        let scaled = |bytes: u64, min_lines: u64| {
            ((bytes as f64 * self.capacity_scale) as u64).max(self.device.line_bytes * min_lines)
        };
        let mut l1 = Cache::new(CacheConfig {
            capacity_bytes: scaled(self.device.l1_bytes_per_sm, 32),
            line_bytes: self.device.line_bytes,
            ways: 8,
        });
        let mut l2 = Cache::new(CacheConfig {
            capacity_bytes: scaled(self.device.l2_bytes, 512),
            line_bytes: self.device.line_bytes,
            ways: 16,
        });

        let num_targets = trace.num_targets() as usize;
        let bt = self.block_targets;
        // All blocks stream through one simulated SM; what shapes the hit
        // rate is the interleaving across `resident_blocks` concurrent
        // blocks, which is the same on every SM.
        let mut my_blocks = 0..num_targets.div_ceil(bt);
        // In-flight blocks: (next_target, end_target, next_edge_index).
        let mut in_flight: Vec<(usize, usize, usize)> = Vec::new();
        let mut refill = |in_flight: &mut Vec<(usize, usize, usize)>| {
            while in_flight.len() < self.resident_blocks {
                match my_blocks.next() {
                    Some(b) => {
                        let start = b * bt;
                        let end = (start + bt).min(num_targets);
                        let e = trace.offsets[start] as usize;
                        in_flight.push((start, end, e));
                    }
                    None => break,
                }
            }
        };
        refill(&mut in_flight);

        let mut accesses: u64 = 0;
        let touch = |l1: &mut Cache, l2: &mut Cache, addr: u64, bytes: u64| {
            // Access line-by-line: L1 first, misses fall through to L2.
            if bytes == 0 {
                return;
            }
            let line = self.device.line_bytes;
            let first = addr / line;
            let last = (addr + bytes - 1) / line;
            for ln in first..=last {
                let a = ln * line;
                if !l1.access(a) {
                    l2.access(a);
                }
            }
        };

        'outer: while !in_flight.is_empty() {
            let mut slot = 0;
            while slot < in_flight.len() {
                let (t, end, e) = in_flight[slot];
                if t >= end {
                    in_flight.swap_remove(slot);
                    refill(&mut in_flight);
                    continue;
                }
                let edge_end = trace.offsets[t + 1] as usize;
                if e >= edge_end {
                    in_flight[slot].0 = t + 1;
                    if t + 1 < end {
                        in_flight[slot].2 = trace.offsets[t + 1] as usize;
                    }
                    continue;
                }
                // One edge of work: gather the source node's feature row.
                // This is the irregular stream that defeats the caches; the
                // partial sums live in registers between edges and the
                // per-edge weight is a warp-broadcast scalar, so neither
                // generates a per-edge global load on real hardware (their
                // traffic is still charged in the Eq. 3 byte census).
                let v = trace.sources[e];
                touch(&mut l1, &mut l2, FEAT_BASE + v * d_bytes, d_bytes);
                in_flight[slot].2 = e + 1;
                slot += 1;
                accesses += 1 + d_bytes / self.device.line_bytes;
                if accesses >= self.max_trace_accesses {
                    break 'outer;
                }
            }
        }
        (l1.stats(), l2.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A random-ish layer: `t` targets with `deg` neighbours drawn from
    /// `s` sources by a deterministic LCG.
    fn layer(t: u64, deg: u64, s: u64) -> (Vec<u64>, Vec<u64>) {
        let mut offsets = Vec::with_capacity(t as usize + 1);
        let mut sources = Vec::new();
        let mut x = 0x1234_5678_9abc_def0u64;
        offsets.push(0);
        for _ in 0..t {
            for _ in 0..deg {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                sources.push((x >> 33) % s);
            }
            offsets.push(sources.len() as u64);
        }
        (offsets, sources)
    }

    fn kernel() -> AggregationKernel {
        AggregationKernel::new(DeviceSpec::rtx3090(), CostParams::default())
    }

    #[test]
    fn memory_aware_beats_naive() {
        let (offsets, sources) = layer(4_000, 10, 40_000);
        let trace = SubgraphLayerTrace {
            offsets: &offsets,
            sources: &sources,
            num_sources: 40_000,
            feature_dim: 256,
        };
        let k = kernel();
        let naive = k.naive_cost(&trace);
        let ma = k.memory_aware_cost(&trace);
        let speedup = naive.cost.time().as_secs_f64() / ma.cost.time().as_secs_f64();
        assert!(speedup > 1.5, "speedup {speedup}");
        assert!(speedup < 50.0, "speedup {speedup} implausibly large");
    }

    #[test]
    fn naive_hit_rates_are_low() {
        // Large random access pattern: the paper reports ~3-5% L1 and
        // 15-25% L2 hit rates (Table 2).
        let (offsets, sources) = layer(8_000, 12, 100_000);
        let trace = SubgraphLayerTrace {
            offsets: &offsets,
            sources: &sources,
            num_sources: 100_000,
            feature_dim: 128,
        };
        let c = kernel().naive_cost(&trace);
        let l1 = c.l1.hit_rate();
        let l2 = c.l2.hit_rate();
        assert!(l1 < 0.20, "L1 hit rate {l1}");
        assert!(l2 < 0.50, "L2 hit rate {l2}");
        assert!(c.l1.accesses() > 10_000);
    }

    #[test]
    fn flops_count_is_two_per_edge_per_dim() {
        let (offsets, sources) = layer(100, 5, 300);
        let trace = SubgraphLayerTrace {
            offsets: &offsets,
            sources: &sources,
            num_sources: 300,
            feature_dim: 64,
        };
        let c = kernel().memory_aware_cost(&trace);
        assert_eq!(c.profile.flops, 2 * 500 * 64);
    }

    #[test]
    fn byte_partition_conserves_total() {
        let (offsets, sources) = layer(1_000, 8, 5_000);
        let trace = SubgraphLayerTrace {
            offsets: &offsets,
            sources: &sources,
            num_sources: 5_000,
            feature_dim: 64,
        };
        let c = kernel().naive_cost(&trace);
        let total = AggregationKernel::naive_logical_bytes(&trace);
        assert_eq!(c.profile.total_bytes(), total);
    }

    #[test]
    fn memory_aware_shared_bytes_match_eq4() {
        let (offsets, sources) = layer(100, 10, 500);
        let trace = SubgraphLayerTrace {
            offsets: &offsets,
            sources: &sources,
            num_sources: 500,
            feature_dim: 32,
        };
        let c = kernel().memory_aware_cost(&trace);
        let nnz = 1_000u64;
        let t = 100u64;
        let d = 32u64;
        assert_eq!(
            c.profile.bytes_shared,
            4 * (nnz - t) * d + 4 * nnz * (d - 1)
        );
        assert_eq!(c.profile.bytes_global, 4 * nnz * d + 4 * nnz);
    }

    #[test]
    fn denser_reuse_raises_hit_rate() {
        // Few sources: feature rows fit in cache, hit rates rise.
        let (offsets, sources) = layer(2_000, 10, 64);
        let trace_small = SubgraphLayerTrace {
            offsets: &offsets,
            sources: &sources,
            num_sources: 64,
            feature_dim: 64,
        };
        let (offsets2, sources2) = layer(2_000, 10, 200_000);
        let trace_big = SubgraphLayerTrace {
            offsets: &offsets2,
            sources: &sources2,
            num_sources: 200_000,
            feature_dim: 64,
        };
        let k = kernel();
        let small = k.naive_cost(&trace_small);
        let big = k.naive_cost(&trace_big);
        assert!(
            small.l1.hit_rate() > big.l1.hit_rate(),
            "small {} big {}",
            small.l1.hit_rate(),
            big.l1.hit_rate()
        );
    }

    #[test]
    fn known_hit_rates_skip_tracing_but_match_byte_census() {
        let (offsets, sources) = layer(1_000, 8, 5_000);
        let trace = SubgraphLayerTrace {
            offsets: &offsets,
            sources: &sources,
            num_sources: 5_000,
            feature_dim: 64,
        };
        let k = kernel();
        let c = k.naive_cost_with_hit_rates(&trace, 0.05, 0.2);
        assert_eq!(
            c.profile.total_bytes(),
            AggregationKernel::naive_logical_bytes(&trace)
        );
        assert!((c.l1.hit_rate() - 0.05).abs() < 1e-3);
        assert!((c.l2.hit_rate() - 0.2).abs() < 1e-3);
        // Higher hit rates must be faster.
        let fast = k.naive_cost_with_hit_rates(&trace, 0.5, 0.8);
        assert!(fast.cost.time() < c.cost.time());
    }

    #[test]
    fn gflops_sane() {
        let (offsets, sources) = layer(4_000, 10, 40_000);
        let trace = SubgraphLayerTrace {
            offsets: &offsets,
            sources: &sources,
            num_sources: 40_000,
            feature_dim: 128,
        };
        let c = kernel().naive_cost(&trace);
        // Paper Table 2: naive aggregation achieves ~340-400 GFLOP/s.
        let g = c.gflops();
        assert!(g > 50.0 && g < 2_000.0, "gflops {g}");
    }

    #[test]
    fn empty_layer_costs_only_overhead() {
        let offsets = vec![0u64];
        let sources: Vec<u64> = vec![];
        let trace = SubgraphLayerTrace {
            offsets: &offsets,
            sources: &sources,
            num_sources: 0,
            feature_dim: 64,
        };
        let k = kernel();
        let naive = k.naive_cost(&trace);
        assert_eq!(naive.profile.flops, 0);
        let ma = k.memory_aware_cost(&trace);
        assert_eq!(ma.profile.bytes_shared, 0);
    }
}
