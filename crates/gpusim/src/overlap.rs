//! Software-pipelining arithmetic: what overlap buys.
//!
//! Several designs in the paper's landscape hide one stage behind another:
//! DGL/PyG prefetch features during compute, GNNLab runs sampling on a
//! dedicated GPU, FastGL prefetches the next subgraph's topology (§6.5).
//! This module provides the standard pipeline bounds those designs obey so
//! experiments can quantify the headroom overlap leaves on the table.

use crate::timeline::SimTime;

/// Total time of a sequence of items through a 2-stage pipeline where
/// stage 1 of item `i + 1` may overlap stage 2 of item `i` (the classic
/// prefetch bound): `t = s1[0] + Σ max(s1[i+1], s2[i]) + s2[last]`.
///
/// Returns zero for an empty sequence.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn two_stage_pipeline(stage1: &[SimTime], stage2: &[SimTime]) -> SimTime {
    assert_eq!(
        stage1.len(),
        stage2.len(),
        "pipeline stages must cover the same items"
    );
    if stage1.is_empty() {
        return SimTime::ZERO;
    }
    let mut total = stage1[0];
    for i in 0..stage1.len() - 1 {
        total += stage1[i + 1].max(stage2[i]);
    }
    total + stage2[stage2.len() - 1]
}

/// Total time of the same items with no overlap (straight sum).
pub fn sequential(stage1: &[SimTime], stage2: &[SimTime]) -> SimTime {
    stage1.iter().copied().sum::<SimTime>() + stage2.iter().copied().sum::<SimTime>()
}

/// The fraction of the sequential time that pipelining saves, in `[0, 1)`.
pub fn overlap_saving(stage1: &[SimTime], stage2: &[SimTime]) -> f64 {
    let seq = sequential(stage1, stage2).as_nanos() as f64;
    if seq == 0.0 {
        return 0.0;
    }
    let piped = two_stage_pipeline(stage1, stage2).as_nanos() as f64;
    1.0 - piped / seq
}

/// Visible (unhidden) time of a producer stage whose item `i + 1` is
/// produced while item `i` is consumed — the prefetch-depth-1 pipeline of
/// the classic bound above. Returns the pipelined makespan minus the
/// consumer's own work: the fill (`producer[0]`) plus every gap where
/// production outruns consumption.
///
/// This is the single overlap model shared by GNNLab's dedicated sampler
/// GPUs (sampling hidden behind training) and FastGL's pipelined window
/// prefetch (Fig. 5): both charge only what the consumer cannot hide.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn hidden_stage_visible(producer: &[SimTime], consumer: &[SimTime]) -> SimTime {
    let consumed: SimTime = consumer.iter().copied().sum();
    two_stage_pipeline(producer, consumer).saturating_sub(consumed)
}

/// Steady-state fully-overlapped bound: with unbounded buffering only the
/// producer's excess over the consumer is ever visible. Lower bound of
/// [`hidden_stage_visible`] for the same totals.
pub fn steady_state_visible(producer_total: SimTime, consumer_total: SimTime) -> SimTime {
    producer_total.saturating_sub(consumer_total)
}

/// Steady-state throughput bound of a multi-stage pipeline: the epoch is
/// limited by its slowest stage, `t ≈ Σ_i max_s stage_s[i]` plus the
/// fill/drain of the other stages (ignored here; exact for long runs).
pub fn bottleneck_bound(stages: &[Vec<SimTime>]) -> SimTime {
    if stages.is_empty() || stages[0].is_empty() {
        return SimTime::ZERO;
    }
    let items = stages[0].len();
    let mut total = SimTime::ZERO;
    for i in 0..items {
        let slowest = stages
            .iter()
            .map(|s| s.get(i).copied().unwrap_or(SimTime::ZERO))
            .fold(SimTime::ZERO, SimTime::max);
        total += slowest;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn balanced_pipeline_halves_time_asymptotically() {
        let s1 = vec![t(100); 50];
        let s2 = vec![t(100); 50];
        let seq = sequential(&s1, &s2);
        let piped = two_stage_pipeline(&s1, &s2);
        assert_eq!(seq.as_nanos(), 10_000);
        assert_eq!(piped.as_nanos(), 100 + 49 * 100 + 100);
        assert!(overlap_saving(&s1, &s2) > 0.45);
    }

    #[test]
    fn dominant_stage_hides_the_other_completely() {
        let s1 = vec![t(10); 20];
        let s2 = vec![t(1_000); 20];
        let piped = two_stage_pipeline(&s1, &s2);
        // 10 (fill) + 19 * 1000 + 1000 (drain).
        assert_eq!(piped.as_nanos(), 10 + 19_000 + 1_000);
    }

    #[test]
    fn single_item_has_no_overlap() {
        let piped = two_stage_pipeline(&[t(50)], &[t(70)]);
        assert_eq!(piped.as_nanos(), 120);
        assert_eq!(overlap_saving(&[t(50)], &[t(70)]), 0.0);
    }

    #[test]
    fn empty_sequences() {
        assert_eq!(two_stage_pipeline(&[], &[]), SimTime::ZERO);
        assert_eq!(sequential(&[], &[]), SimTime::ZERO);
        assert_eq!(overlap_saving(&[], &[]), 0.0);
        assert_eq!(bottleneck_bound(&[]), SimTime::ZERO);
    }

    #[test]
    fn pipeline_never_beats_bottleneck_bound_or_loses_to_sequential() {
        let s1: Vec<SimTime> = (0..30).map(|i| t(50 + i * 7)).collect();
        let s2: Vec<SimTime> = (0..30).map(|i| t(200 - i * 3)).collect();
        let piped = two_stage_pipeline(&s1, &s2);
        let seq = sequential(&s1, &s2);
        let bound = bottleneck_bound(&[s1.clone(), s2.clone()]);
        assert!(piped <= seq);
        assert!(piped >= bound);
    }

    #[test]
    fn bottleneck_bound_takes_per_item_max() {
        let stages = vec![vec![t(10), t(300)], vec![t(200), t(20)]];
        assert_eq!(bottleneck_bound(&stages).as_nanos(), 200 + 300);
    }

    #[test]
    #[should_panic(expected = "same items")]
    fn mismatched_lengths_panic() {
        let _ = two_stage_pipeline(&[t(1)], &[]);
    }
}
