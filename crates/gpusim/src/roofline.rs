//! Roofline analysis (paper Fig. 12).
//!
//! The roofline model bounds a kernel's achievable FLOP rate by
//! `min(peak, operational_intensity × DRAM bandwidth)`. Fig. 12 of the
//! paper places the forward and backward aggregation of each framework on
//! the 3090's roofline; this module computes those points from the
//! simulator's kernel profiles.

use crate::kernel::KernelProfile;
use crate::spec::DeviceSpec;
use crate::timeline::SimTime;
use serde::{Deserialize, Serialize};

/// One kernel's position on the roofline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// FLOPs per byte of DRAM (global-memory) traffic.
    pub operational_intensity: f64,
    /// Achieved GFLOP/s.
    pub achieved_gflops: f64,
    /// The bound at this intensity (memory or compute roof), GFLOP/s.
    pub roof_gflops: f64,
}

impl RooflinePoint {
    /// Places a kernel (profile + its simulated execution time) on the
    /// device's roofline.
    pub fn from_profile(device: &DeviceSpec, profile: &KernelProfile, time: SimTime) -> Self {
        let oi = if profile.bytes_global == 0 {
            f64::INFINITY
        } else {
            profile.flops as f64 / profile.bytes_global as f64
        };
        let achieved = if time == SimTime::ZERO {
            0.0
        } else {
            profile.flops as f64 / time.as_secs_f64() / 1e9
        };
        Self {
            operational_intensity: oi,
            achieved_gflops: achieved,
            roof_gflops: roof(device, oi),
        }
    }

    /// Fraction of the roof the kernel achieves, in `[0, 1]`-ish (small
    /// model error can nudge it slightly above 1).
    pub fn efficiency(&self) -> f64 {
        if self.roof_gflops == 0.0 {
            0.0
        } else {
            self.achieved_gflops / self.roof_gflops
        }
    }
}

/// The roofline bound at a given operational intensity, in GFLOP/s.
pub fn roof(device: &DeviceSpec, operational_intensity: f64) -> f64 {
    let mem_roof = operational_intensity * device.bw_global / 1e9;
    let compute_roof = device.peak_flops / 1e9;
    mem_roof.min(compute_roof)
}

/// The intensity at which the memory roof meets the compute roof
/// (the "ridge point"), in FLOP/byte.
pub fn ridge_point(device: &DeviceSpec) -> f64 {
    device.peak_flops / device.bw_global
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::rtx3090()
    }

    #[test]
    fn ridge_point_for_3090() {
        // 29.15 TFLOP/s over 938 GB/s ≈ 31 FLOP/byte.
        let r = ridge_point(&dev());
        assert!((r - 31.08).abs() < 0.5, "{r}");
    }

    #[test]
    fn roof_is_memory_bound_below_ridge() {
        let d = dev();
        let low = roof(&d, 1.0);
        assert!((low - 938.0).abs() < 1.0, "{low}");
        let high = roof(&d, 1000.0);
        assert!((high - 29_150.0).abs() < 1.0, "{high}");
    }

    #[test]
    fn point_from_profile() {
        let d = dev();
        let p = KernelProfile {
            flops: 2_000_000,
            bytes_global: 1_000_000,
            ..Default::default()
        };
        let pt = RooflinePoint::from_profile(&d, &p, SimTime::from_micros(10));
        assert!((pt.operational_intensity - 2.0).abs() < 1e-9);
        // 2 MFLOP in 10 us = 200 GFLOP/s.
        assert!((pt.achieved_gflops - 200.0).abs() < 1.0);
        assert!(pt.roof_gflops > pt.achieved_gflops);
        assert!(pt.efficiency() > 0.0 && pt.efficiency() < 1.0);
    }

    #[test]
    fn zero_time_and_zero_bytes_edge_cases() {
        let d = dev();
        let p = KernelProfile {
            flops: 100,
            bytes_global: 0,
            ..Default::default()
        };
        let pt = RooflinePoint::from_profile(&d, &p, SimTime::ZERO);
        assert!(pt.operational_intensity.is_infinite());
        assert_eq!(pt.achieved_gflops, 0.0);
    }
}
