//! The kernel cost model.
//!
//! A simulated kernel is summarised by *what it moves and computes*: bytes
//! served by each memory level, FLOPs executed, and the overheads that the
//! paper's techniques target (kernel launches, device-wide barriers, atomic
//! contention). Its time is `max(memory time, compute time) + overheads` —
//! the standard bound for a throughput machine that overlaps memory and
//! arithmetic.

use crate::spec::{CostParams, DeviceSpec};
use crate::timeline::SimTime;
use std::ops::{Add, AddAssign};

/// Event counts of one (or several fused) simulated kernels.
///
/// # Example
///
/// ```
/// use fastgl_gpusim::{CostParams, DeviceSpec, KernelProfile};
///
/// // A memory-bound kernel: 1 GB from DRAM dwarfs 1 MFLOP of math.
/// let profile = KernelProfile {
///     flops: 1_000_000,
///     bytes_global: 1 << 30,
///     launches: 1,
///     ..Default::default()
/// };
/// let cost = profile.cost(&DeviceSpec::rtx3090(), &CostParams::default());
/// assert!(cost.mem_time > cost.compute_time);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelProfile {
    /// Floating-point operations executed.
    pub flops: u64,
    /// Bytes served from shared memory (software-managed, ~12 TB/s).
    pub bytes_shared: u64,
    /// Bytes served from the L1 cache (~12 TB/s).
    pub bytes_l1: u64,
    /// Bytes served from the L2 cache (3–5 TB/s).
    pub bytes_l2: u64,
    /// Bytes served from global memory (938 GB/s).
    pub bytes_global: u64,
    /// Device-wide synchronizations (kernel boundaries used as barriers).
    pub barriers: u64,
    /// Atomic operations that lost a contention race and retried.
    pub atomic_conflicts: u64,
    /// Kernel launches.
    pub launches: u64,
}

impl KernelProfile {
    /// Total bytes served from any level.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_shared + self.bytes_l1 + self.bytes_l2 + self.bytes_global
    }

    /// Reports the profile's per-level byte taxonomy into the process
    /// telemetry as `gpusim.*` counters (a no-op when telemetry is
    /// disabled). Increments are pure event counts from the simulated
    /// workload, so the totals stay bit-identical at any thread count —
    /// `fastgl-insight` folds them into the paper-style memory-hierarchy
    /// attribution.
    pub fn emit_telemetry(&self) {
        use fastgl_telemetry::{counter_add, names};
        counter_add(names::GPUSIM_FLOPS, self.flops);
        counter_add(names::GPUSIM_BYTES_SHARED, self.bytes_shared);
        counter_add(names::GPUSIM_BYTES_L1, self.bytes_l1);
        counter_add(names::GPUSIM_BYTES_L2, self.bytes_l2);
        counter_add(names::GPUSIM_BYTES_GLOBAL, self.bytes_global);
        counter_add(names::GPUSIM_KERNEL_LAUNCHES, self.launches);
    }

    /// Evaluates the profile against a device and calibration constants.
    pub fn cost(&self, device: &DeviceSpec, params: &CostParams) -> KernelCost {
        let mem = self.bytes_shared as f64 / device.bw_shared
            + self.bytes_l1 as f64 / device.bw_shared
            + self.bytes_l2 as f64 / device.bw_l2
            + self.bytes_global as f64 / device.bw_global;
        let compute = self.flops as f64 / device.peak_flops;
        let overhead_ns = (self.launches + self.barriers) * params.kernel_launch_ns
            + (self.atomic_conflicts as f64 * params.gpu_cas_conflict_ns) as u64;
        let mem_time = SimTime::from_secs_f64(mem);
        let compute_time = SimTime::from_secs_f64(compute);
        KernelCost {
            mem_time,
            compute_time,
            overhead: SimTime::from_nanos(overhead_ns),
        }
    }
}

impl Add for KernelProfile {
    type Output = KernelProfile;
    fn add(self, rhs: KernelProfile) -> KernelProfile {
        KernelProfile {
            flops: self.flops + rhs.flops,
            bytes_shared: self.bytes_shared + rhs.bytes_shared,
            bytes_l1: self.bytes_l1 + rhs.bytes_l1,
            bytes_l2: self.bytes_l2 + rhs.bytes_l2,
            bytes_global: self.bytes_global + rhs.bytes_global,
            barriers: self.barriers + rhs.barriers,
            atomic_conflicts: self.atomic_conflicts + rhs.atomic_conflicts,
            launches: self.launches + rhs.launches,
        }
    }
}

impl AddAssign for KernelProfile {
    fn add_assign(&mut self, rhs: KernelProfile) {
        *self = *self + rhs;
    }
}

/// The evaluated cost of a [`KernelProfile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCost {
    /// Time to serve all bytes from their levels.
    pub mem_time: SimTime,
    /// Time to execute all FLOPs at peak throughput.
    pub compute_time: SimTime,
    /// Launch, barrier, and atomic-contention charges.
    pub overhead: SimTime,
}

impl KernelCost {
    /// Kernel execution time: memory and compute overlap, overheads do not.
    pub fn time(&self) -> SimTime {
        self.mem_time.max(self.compute_time) + self.overhead
    }

    /// Achieved FLOP rate given the executed `flops`.
    pub fn achieved_flops(&self, flops: u64) -> f64 {
        let t = self.time().as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            flops as f64 / t
        }
    }
}

impl Add for KernelCost {
    type Output = KernelCost;
    fn add(self, rhs: KernelCost) -> KernelCost {
        KernelCost {
            mem_time: self.mem_time + rhs.mem_time,
            compute_time: self.compute_time + rhs.compute_time,
            overhead: self.overhead + rhs.overhead,
        }
    }
}

/// SM occupancy of a kernel configuration: the fraction of the SM's
/// maximum resident threads that a grid of `threads_per_block`-sized
/// blocks using `shared_bytes_per_block` of shared memory can keep in
/// flight. The paper's §4.2 chooses X = 8, Y = 32 precisely to "keep the
/// maximum occupancy of the SM".
///
/// Returns a value in `(0, 1]`; zero only for degenerate inputs.
pub fn sm_occupancy(
    device: &DeviceSpec,
    threads_per_block: u32,
    shared_bytes_per_block: u64,
) -> f64 {
    if threads_per_block == 0 || threads_per_block > device.max_threads_per_block {
        return 0.0;
    }
    // Ampere-class limits: 1536 resident threads and 16 resident blocks
    // per SM; shared memory bounds resident blocks too.
    const MAX_RESIDENT_THREADS: u32 = 1536;
    const MAX_RESIDENT_BLOCKS: u32 = 16;
    let by_threads = MAX_RESIDENT_THREADS / threads_per_block;
    let by_shared = device
        .l1_bytes_per_sm
        .checked_div(shared_bytes_per_block)
        .map_or(MAX_RESIDENT_BLOCKS, |b| {
            b.min(MAX_RESIDENT_BLOCKS as u64) as u32
        });
    let resident_blocks = by_threads.min(by_shared).min(MAX_RESIDENT_BLOCKS);
    (resident_blocks * threads_per_block) as f64 / MAX_RESIDENT_THREADS as f64
}

/// Cost of a dense GEMM of `m × k × n` (the *update* phase of a GNN layer)
/// at the device's calibrated GEMM efficiency.
pub fn gemm_time(device: &DeviceSpec, params: &CostParams, m: u64, k: u64, n: u64) -> SimTime {
    let flops = 2 * m * k * n;
    let compute = flops as f64 / (device.peak_flops * params.gemm_efficiency);
    // Stream A, B once and write C once from global memory.
    let bytes = 4 * (m * k + k * n + m * n);
    let mem = bytes as f64 / device.bw_global;
    SimTime::from_secs_f64(compute.max(mem)) + SimTime::from_nanos(params.kernel_launch_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::rtx3090()
    }

    fn params() -> CostParams {
        CostParams::default()
    }

    #[test]
    fn memory_bound_kernel_ignores_flops_overlap() {
        let p = KernelProfile {
            flops: 1_000,
            bytes_global: 1_000_000_000, // ~1.07 ms at 938 GB/s
            launches: 1,
            ..Default::default()
        };
        let c = p.cost(&dev(), &params());
        assert!(c.mem_time > c.compute_time);
        assert!(c.time() >= c.mem_time);
        let slack = c.time().saturating_sub(c.mem_time + c.overhead);
        assert_eq!(slack, SimTime::ZERO);
    }

    #[test]
    fn compute_bound_kernel_hides_memory() {
        let p = KernelProfile {
            flops: 29_150_000_000, // 1 s at peak... scaled: ~1 ms worth
            bytes_global: 1_000,
            ..Default::default()
        };
        let c = p.cost(&dev(), &params());
        assert!(c.compute_time > c.mem_time);
    }

    #[test]
    fn shared_memory_is_much_faster_than_global() {
        let from_global = KernelProfile {
            bytes_global: 100_000_000,
            ..Default::default()
        };
        let from_shared = KernelProfile {
            bytes_shared: 100_000_000,
            ..Default::default()
        };
        let tg = from_global.cost(&dev(), &params()).time();
        let ts = from_shared.cost(&dev(), &params()).time();
        assert!(
            tg.as_secs_f64() / ts.as_secs_f64() > 10.0,
            "global {tg} shared {ts}"
        );
    }

    #[test]
    fn overheads_accumulate() {
        let p = KernelProfile {
            launches: 3,
            barriers: 2,
            atomic_conflicts: 1_000,
            ..Default::default()
        };
        let c = p.cost(&dev(), &params());
        let expected =
            5 * params().kernel_launch_ns + (1_000.0 * params().gpu_cas_conflict_ns) as u64;
        assert_eq!(c.overhead.as_nanos(), expected);
    }

    #[test]
    fn profile_addition() {
        let a = KernelProfile {
            flops: 10,
            bytes_global: 5,
            launches: 1,
            ..Default::default()
        };
        let b = KernelProfile {
            flops: 20,
            bytes_l2: 7,
            barriers: 2,
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.flops, 30);
        assert_eq!(c.total_bytes(), 12);
        assert_eq!(c.launches, 1);
        assert_eq!(c.barriers, 2);
    }

    #[test]
    fn achieved_flops_below_peak() {
        let p = KernelProfile {
            flops: 1_000_000_000,
            bytes_global: 1_000_000_000,
            launches: 1,
            ..Default::default()
        };
        let c = p.cost(&dev(), &params());
        let achieved = c.achieved_flops(p.flops);
        assert!(achieved < dev().peak_flops);
        assert!(achieved > 0.0);
    }

    #[test]
    fn paper_tiling_keeps_high_occupancy() {
        // X = 8 targets x Y = 32 dims = 256 threads; shared usage
        // 4XY + 4X|N| with |N| = 15 is ~1.5 KB per block.
        let d = dev();
        let shared = 4 * 8 * 32 + 4 * 8 * 15;
        let occ = sm_occupancy(&d, 256, shared as u64);
        assert!(occ >= 0.99, "paper tiling occupancy {occ}");
        // A shared-memory hog cannot keep the SM full.
        let hog = sm_occupancy(&d, 256, 64 * 1024);
        assert!(hog < 0.5, "hog occupancy {hog}");
        // Degenerate configs report zero.
        assert_eq!(sm_occupancy(&d, 0, 0), 0.0);
        assert_eq!(sm_occupancy(&d, 2048, 0), 0.0);
    }

    #[test]
    fn occupancy_monotone_in_shared_usage() {
        let d = dev();
        let a = sm_occupancy(&d, 128, 1 << 10);
        let b = sm_occupancy(&d, 128, 1 << 14);
        let c = sm_occupancy(&d, 128, 1 << 16);
        assert!(a >= b && b >= c, "{a} {b} {c}");
    }

    #[test]
    fn emit_telemetry_accumulates_the_byte_taxonomy() {
        let _guard = crate::test_sync::TELEMETRY_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        fastgl_telemetry::set_enabled(true);
        fastgl_telemetry::reset();
        let p = KernelProfile {
            flops: 100,
            bytes_shared: 10,
            bytes_l1: 20,
            bytes_l2: 30,
            bytes_global: 40,
            launches: 1,
            ..Default::default()
        };
        p.emit_telemetry();
        p.emit_telemetry();
        let snap = fastgl_telemetry::drain();
        fastgl_telemetry::set_enabled(false);
        use fastgl_telemetry::names;
        assert_eq!(snap.counters[names::GPUSIM_FLOPS], 200);
        assert_eq!(snap.counters[names::GPUSIM_BYTES_SHARED], 20);
        assert_eq!(snap.counters[names::GPUSIM_BYTES_L1], 40);
        assert_eq!(snap.counters[names::GPUSIM_BYTES_L2], 60);
        assert_eq!(snap.counters[names::GPUSIM_BYTES_GLOBAL], 80);
        assert_eq!(snap.counters[names::GPUSIM_KERNEL_LAUNCHES], 2);
    }

    #[test]
    fn gemm_time_scales_with_size() {
        let d = dev();
        let p = params();
        let small = gemm_time(&d, &p, 1_000, 64, 64);
        let large = gemm_time(&d, &p, 8_000, 64, 64);
        assert!(large > small);
        // 2*8000*64*64 = 65.5 MFLOP at ~16 TFLOP/s ≈ 4.1 us + launch.
        assert!(large < SimTime::from_millis(1), "{large}");
    }
}
