//! Simulated time and per-phase accounting.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of simulated time, stored in nanoseconds.
///
/// All simulator components express cost as `SimTime`; no wall-clock
/// measurement ever enters the model, so runs reproduce exactly.
///
/// # Example
///
/// ```
/// use fastgl_gpusim::SimTime;
///
/// let t = SimTime::from_micros(3) + SimTime::from_nanos(500);
/// assert_eq!(t.as_nanos(), 3_500);
/// assert!(t < SimTime::from_millis(1));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// Zero duration.
    pub const ZERO: SimTime = SimTime(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// From fractional seconds (rounds to nanoseconds, saturating at zero).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime((secs.max(0.0) * 1e9).round() as u64)
    }

    /// Nanoseconds as an integer.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two times.
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }

    /// The smaller of two times.
    pub fn min(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.min(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// Time attributed to the three phases of sampling-based GNN training
/// (paper Fig. 2): subgraph sample, memory IO, and computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Sample phase: subgraph sampling plus the ID-map process.
    pub sample: SimTime,
    /// Memory IO phase: host-side gather plus PCIe transfer.
    pub io: SimTime,
    /// Computation phase: forward and backward passes.
    pub compute: SimTime,
}

impl PhaseBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total time across phases.
    pub fn total(&self) -> SimTime {
        self.sample + self.io + self.compute
    }

    /// Fraction of total time spent in each phase `(sample, io, compute)`.
    ///
    /// Returns zeros when the total is zero.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total().as_nanos() as f64;
        if t == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.sample.as_nanos() as f64 / t,
            self.io.as_nanos() as f64 / t,
            self.compute.as_nanos() as f64 / t,
        )
    }

    /// Scales every phase by `factor` (e.g. to average over epochs).
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            sample: self.sample * factor,
            io: self.io * factor,
            compute: self.compute * factor,
        }
    }

    /// Records this breakdown on the telemetry subsystem's simulated-time
    /// track: one enclosing span named `label` with the three phases laid
    /// out back-to-back inside it. No-op while telemetry is disabled.
    pub fn emit_telemetry(&self, label: &'static str) {
        fastgl_telemetry::record_sim_phases(
            label,
            &[
                ("sample", self.sample.as_nanos()),
                ("io", self.io.as_nanos()),
                ("compute", self.compute.as_nanos()),
            ],
        );
    }
}

impl Add for PhaseBreakdown {
    type Output = PhaseBreakdown;
    fn add(self, rhs: PhaseBreakdown) -> PhaseBreakdown {
        PhaseBreakdown {
            sample: self.sample + rhs.sample,
            io: self.io + rhs.io,
            compute: self.compute + rhs.compute,
        }
    }
}

impl AddAssign for PhaseBreakdown {
    fn add_assign(&mut self, rhs: PhaseBreakdown) {
        *self = *self + rhs;
    }
}

impl Sum for PhaseBreakdown {
    fn sum<I: Iterator<Item = PhaseBreakdown>>(iter: I) -> PhaseBreakdown {
        iter.fold(PhaseBreakdown::default(), Add::add)
    }
}

impl fmt::Display for PhaseBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sample {} | io {} | compute {} | total {}",
            self.sample,
            self.io,
            self.compute,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(SimTime::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimTime::from_secs_f64(-2.0), SimTime::ZERO);
        assert!((SimTime::from_millis(250).as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(50);
        assert_eq!((a + b).as_nanos(), 150);
        assert_eq!((a - b).as_nanos(), 50);
        assert_eq!((a * 3).as_nanos(), 300);
        assert_eq!((a * 0.5).as_nanos(), 50);
        assert_eq!((a / 4).as_nanos(), 25);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        let total: SimTime = [a, b, b].into_iter().sum();
        assert_eq!(total.as_nanos(), 200);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_nanos(1_200).to_string(), "1.200us");
        assert_eq!(SimTime::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimTime::from_secs_f64(2.0).to_string(), "2.000s");
    }

    #[test]
    fn breakdown_total_and_fractions() {
        let b = PhaseBreakdown {
            sample: SimTime::from_nanos(100),
            io: SimTime::from_nanos(300),
            compute: SimTime::from_nanos(600),
        };
        assert_eq!(b.total().as_nanos(), 1_000);
        let (s, i, c) = b.fractions();
        assert!((s - 0.1).abs() < 1e-12);
        assert!((i - 0.3).abs() < 1e-12);
        assert!((c - 0.6).abs() < 1e-12);
    }

    #[test]
    fn zero_breakdown_fractions_are_zero() {
        assert_eq!(PhaseBreakdown::default().fractions(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn emit_telemetry_reproduces_phase_totals() {
        let _guard = crate::test_sync::TELEMETRY_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        fastgl_telemetry::set_enabled(true);
        fastgl_telemetry::reset();
        let b = PhaseBreakdown {
            sample: SimTime::from_nanos(111),
            io: SimTime::from_nanos(222),
            compute: SimTime::from_nanos(333),
        };
        b.emit_telemetry("epoch");
        b.emit_telemetry("epoch");
        let snap = fastgl_telemetry::drain();
        fastgl_telemetry::set_enabled(false);
        let totals = snap.sim_phase_totals();
        assert_eq!(totals.get("sample").copied(), Some(222));
        assert_eq!(totals.get("io").copied(), Some(444));
        assert_eq!(totals.get("compute").copied(), Some(666));
    }

    #[test]
    fn breakdown_addition_and_scaling() {
        let b = PhaseBreakdown {
            sample: SimTime::from_nanos(10),
            io: SimTime::from_nanos(20),
            compute: SimTime::from_nanos(30),
        };
        let sum: PhaseBreakdown = [b, b].into_iter().sum();
        assert_eq!(sum.total().as_nanos(), 120);
        let half = sum.scaled(0.5);
        assert_eq!(half.total().as_nanos(), 60);
    }
}
