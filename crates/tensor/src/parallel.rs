//! The shared CPU execution backend: deterministic fork-join parallelism.
//!
//! Every numeric hot path in the workspace (dense matmul, sparse
//! aggregation, neighbour sampling, feature gather) routes its loops
//! through this module. The design goals, in order:
//!
//! 1. **Bit-identical results at any thread count.** Work is split into
//!    contiguous chunks whose *contents* are computed exactly as the serial
//!    loop would compute them — every floating-point reduction keeps its
//!    fixed per-row accumulation order, and no reduction ever crosses a
//!    chunk boundary. `FASTGL_THREADS=1` therefore reproduces the parallel
//!    output exactly, and training curves and figure outputs do not depend
//!    on the machine's core count.
//! 2. **No dependencies.** The backend is built on [`std::thread::scope`];
//!    the build environment has no crates.io access, so `rayon` is not an
//!    option (see `DESIGN.md` § Execution backend).
//! 3. **Serial below a cutoff.** Callers pass a per-chunk grain; inputs
//!    smaller than one grain run inline on the calling thread so tiny test
//!    fixtures never pay thread spawn/join overhead.
//!
//! The thread count resolves, in priority order: a programmatic override
//! from [`set_num_threads`] (used by `FastGlConfig::threads`), the
//! `FASTGL_THREADS` environment variable, then all available cores.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Programmatic thread-count override; `0` means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `FASTGL_THREADS` parsed once; `0` means "not set".
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

/// Sets the backend's thread count for the whole process.
///
/// `0` clears the override, falling back to `FASTGL_THREADS` and then the
/// core count; `1` forces the exact serial execution path.
pub fn set_num_threads(threads: usize) {
    OVERRIDE.store(threads, Ordering::SeqCst);
}

/// The thread count the backend would use for a large enough input.
pub fn num_threads() -> usize {
    let o = OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    let env = *ENV_THREADS.get_or_init(|| {
        std::env::var("FASTGL_THREADS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    });
    if env > 0 {
        return env;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Threads actually used for `items` work items at the given `grain`
/// (minimum items per thread): 1 when the input is below the cutoff.
pub fn plan_threads(items: usize, grain: usize) -> usize {
    let max_useful = items / grain.max(1);
    num_threads().min(max_useful.max(1))
}

/// Splits `0..n` into `t` near-equal contiguous ranges.
fn split_ranges(n: usize, t: usize) -> Vec<Range<usize>> {
    let base = n / t;
    let extra = n % t;
    let mut out = Vec::with_capacity(t);
    let mut start = 0;
    for i in 0..t {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `f` over disjoint contiguous row chunks of `data` in parallel.
///
/// `data` is treated as rows of `row_len` elements; `f(first_row, chunk)`
/// receives the index of its first row and a mutable slice of whole rows.
/// Chunks partition the buffer, so any per-row computation is race-free by
/// construction and byte-identical to the serial pass. Inputs smaller than
/// `grain_rows` rows (or a 1-thread plan) run inline.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `row_len`. Panics from `f`
/// propagate to the caller.
pub fn par_row_chunks_mut<T, F>(data: &mut [T], row_len: usize, grain_rows: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if row_len == 0 || data.is_empty() {
        if !data.is_empty() {
            f(0, data);
        }
        return;
    }
    assert_eq!(data.len() % row_len, 0, "buffer is not whole rows");
    let rows = data.len() / row_len;
    let t = plan_threads(rows, grain_rows);
    if t <= 1 {
        f(0, data);
        return;
    }
    let ranges = split_ranges(rows, t);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = data;
        for range in ranges {
            let take = range.len() * row_len;
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
            rest = tail;
            if head.is_empty() {
                continue;
            }
            scope.spawn(move || {
                let _span = fastgl_telemetry::span("parallel.chunk")
                    .with_u64("first", range.start as u64)
                    .with_u64("rows", range.len() as u64);
                f(range.start, head)
            });
        }
    });
}

/// Runs `f` over disjoint contiguous ranges of `0..n` in parallel and
/// returns the per-range results **in range order**.
///
/// The caller's merge of the returned values is sequential, so any
/// order-sensitive combination (concatenation, ordered reduction) is
/// deterministic regardless of thread count.
///
/// # Panics
///
/// Panics from `f` propagate to the caller.
pub fn par_chunk_results<O, F>(n: usize, grain: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(Range<usize>) -> O + Sync,
{
    let t = plan_threads(n, grain);
    if t <= 1 {
        return vec![f(0..n)];
    }
    let ranges = split_ranges(n, t);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                scope.spawn(move || {
                    let _span = fastgl_telemetry::span("parallel.chunk")
                        .with_u64("first", range.start as u64)
                        .with_u64("items", range.len() as u64);
                    f(range)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// Maps `f` over `items` in parallel, preserving order.
///
/// Each worker maps a contiguous sub-slice; results are concatenated in
/// item order, so the output equals the serial `items.iter().map(..)`.
///
/// # Panics
///
/// Panics from `f` propagate to the caller.
pub fn par_map_collect<T, O, F>(items: &[T], grain: usize, f: F) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(usize, &T) -> O + Sync,
{
    let chunks = par_chunk_results(items.len(), grain, |range| {
        range.clone().map(|i| f(i, &items[i])).collect::<Vec<O>>()
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// Default grain for cheap elementwise kernels (elements per thread).
pub const ELEMWISE_GRAIN: usize = 16 * 1024;

/// Default grain for row-copy kernels such as feature gather (rows).
pub const GATHER_GRAIN_ROWS: usize = 256;

/// Default grain for per-seed sampling work (seeds per thread).
pub const SAMPLE_GRAIN_SEEDS: usize = 64;

/// Approximate multiply-add budget per thread used to derive matmul grains.
pub const MATMUL_GRAIN_FLOPS: usize = 64 * 1024;

#[cfg(test)]
pub(crate) mod test_util {
    use std::sync::Mutex;

    /// Serializes tests that mutate the global thread override.
    static LOCK: Mutex<()> = Mutex::new(());

    /// Runs `f` with the process-wide thread count pinned to `n`.
    pub(crate) fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        super::set_num_threads(n);
        let r = f();
        super::set_num_threads(0);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::with_threads;
    use super::*;

    #[test]
    fn split_ranges_partition() {
        for n in [0usize, 1, 7, 100] {
            for t in [1usize, 2, 3, 8] {
                let ranges = split_ranges(n, t);
                assert_eq!(ranges.len(), t);
                assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), n);
                let mut cursor = 0;
                for r in &ranges {
                    assert_eq!(r.start, cursor);
                    cursor = r.end;
                }
                assert_eq!(cursor, n);
            }
        }
    }

    #[test]
    fn row_chunks_cover_all_rows_once() {
        for threads in [1usize, 2, 8] {
            with_threads(threads, || {
                let mut data = vec![0u64; 40 * 3];
                par_row_chunks_mut(&mut data, 3, 1, |first_row, chunk| {
                    for (i, row) in chunk.chunks_mut(3).enumerate() {
                        for x in row.iter_mut() {
                            *x += (first_row + i) as u64 + 1;
                        }
                    }
                });
                for (r, row) in data.chunks(3).enumerate() {
                    assert!(row.iter().all(|&x| x == r as u64 + 1), "row {r}: {row:?}");
                }
            });
        }
    }

    #[test]
    fn small_inputs_run_inline() {
        with_threads(8, || {
            let mut data = vec![1.0f32; 8];
            // grain 1000 rows >> 8 rows: must not spawn (observable only
            // through correctness here, but exercises the serial path).
            par_row_chunks_mut(&mut data, 1, 1000, |_, chunk| {
                for x in chunk {
                    *x *= 2.0;
                }
            });
            assert!(data.iter().all(|&x| x == 2.0));
        });
    }

    #[test]
    fn chunk_results_arrive_in_order() {
        for threads in [1usize, 3, 8] {
            with_threads(threads, || {
                let parts = par_chunk_results(100, 1, |r| r.clone());
                let flat: Vec<usize> = parts.into_iter().flatten().collect();
                assert_eq!(flat, (0..100).collect::<Vec<_>>());
            });
        }
    }

    #[test]
    fn map_collect_matches_serial_map() {
        let items: Vec<u64> = (0..500).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1usize, 2, 8] {
            let got = with_threads(threads, || par_map_collect(&items, 16, |_, &x| x * 3 + 1));
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn zero_row_len_and_empty_are_noops() {
        let mut empty: Vec<f32> = vec![];
        par_row_chunks_mut(&mut empty, 4, 1, |_, _| panic!("must not run"));
        let got = par_chunk_results(0, 1, |r| r.len());
        assert_eq!(got, vec![0]);
    }

    #[test]
    fn plan_threads_respects_cutoff() {
        with_threads(8, || {
            assert_eq!(plan_threads(10, 100), 1);
            assert_eq!(plan_threads(100, 100), 1);
            assert_eq!(plan_threads(800, 100), 8);
            assert_eq!(plan_threads(300, 100), 3);
        });
        with_threads(1, || {
            assert_eq!(plan_threads(1_000_000, 1), 1);
        });
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = with_threads(4, || {
            std::panic::catch_unwind(|| {
                par_chunk_results(100, 1, |r| {
                    if r.start > 0 {
                        panic!("boom");
                    }
                    0usize
                })
            })
        });
        assert!(caught.is_err());
    }
}
