//! Row-major dense `f32` matrices.
//!
//! The compute kernels (`matmul` and its transposed variants, the
//! elementwise ops) run on the workspace's deterministic fork-join backend
//! ([`crate::parallel`]): output rows are partitioned into contiguous
//! chunks, each chunk is computed with the exact serial loop, and every
//! per-element reduction keeps its fixed k-ascending accumulation order —
//! so results are bit-identical at any thread count, and inputs below the
//! per-kernel cutoffs never leave the calling thread.

use crate::parallel;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// Output-column stripe width of the matmul inner kernel. A 128-element
/// stripe of the output row plus the matching stripe of one `rhs` row is
/// 1 KiB — both stay L1-resident while the k loop streams over `rhs` rows.
const MATMUL_J_BLOCK: usize = 128;

/// Rows of output each matmul worker claims at minimum, sized so a chunk
/// amortises spawn/join over [`parallel::MATMUL_GRAIN_FLOPS`] multiply-adds.
fn matmul_grain_rows(flops_per_row: usize) -> usize {
    (parallel::MATMUL_GRAIN_FLOPS / flops_per_row.max(1)).max(1)
}

/// A dense row-major `f32` matrix.
///
/// # Example
///
/// ```
/// use fastgl_tensor::Matrix;
///
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Wraps a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer of {} elements cannot form a {rows}x{cols} matrix",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The flat row-major buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self · rhs` using an ikj loop order (streams rows of
    /// `rhs`, cache-friendly for row-major data), parallelised over
    /// contiguous output-row chunks with the j loop blocked to L1-sized
    /// stripes. Every output element accumulates in k-ascending order, so
    /// the result is bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let _span = fastgl_telemetry::span("tensor.matmul")
            .with_u64("m", self.rows as u64)
            .with_u64("k", self.cols as u64)
            .with_u64("n", rhs.cols as u64);
        fastgl_telemetry::counter_add(
            "tensor.matmul_flops",
            2 * (self.rows * self.cols * rhs.cols) as u64,
        );
        let n = rhs.cols;
        let mut out = Matrix::zeros(self.rows, n);
        if n == 0 {
            return out;
        }
        let grain = matmul_grain_rows(self.cols * n);
        parallel::par_row_chunks_mut(&mut out.data, n, grain, |first_row, chunk| {
            for (di, out_row) in chunk.chunks_mut(n).enumerate() {
                let a_row = self.row(first_row + di);
                let mut j0 = 0;
                while j0 < n {
                    let j1 = (j0 + MATMUL_J_BLOCK).min(n);
                    let out_stripe = &mut out_row[j0..j1];
                    for (k, &a) in a_row.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let b_stripe = &rhs.row(k)[j0..j1];
                        for (o, &b) in out_stripe.iter_mut().zip(b_stripe) {
                            *o += a * b;
                        }
                    }
                    j0 = j1;
                }
            }
        });
        out
    }

    /// `selfᵀ · rhs`, without materialising the transpose (backward pass
    /// weight gradient: `dW = Xᵀ · dY`).
    ///
    /// Parallelised over contiguous chunks of *output* rows (= columns `k`
    /// of `self`): each worker owns a disjoint `k` range and scans all rows
    /// `i` of the inputs in ascending order, so every output element keeps
    /// the serial i-ascending accumulation order with no write conflicts.
    /// The tradeoff is that each worker re-reads the inputs, which is cheap
    /// relative to the multiply-adds it owns.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != rhs.rows`.
    pub fn matmul_transpose_a(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_transpose_a dimension mismatch: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let _span = fastgl_telemetry::span("tensor.matmul_t_a")
            .with_u64("m", self.cols as u64)
            .with_u64("k", self.rows as u64)
            .with_u64("n", rhs.cols as u64);
        fastgl_telemetry::counter_add(
            "tensor.matmul_flops",
            2 * (self.rows * self.cols * rhs.cols) as u64,
        );
        let n = rhs.cols;
        let mut out = Matrix::zeros(self.cols, n);
        if n == 0 {
            return out;
        }
        let grain = matmul_grain_rows(self.rows * n);
        parallel::par_row_chunks_mut(&mut out.data, n, grain, |first_k, chunk| {
            let k_range = first_k..first_k + chunk.len() / n;
            for i in 0..self.rows {
                let a_row = &self.row(i)[k_range.clone()];
                let b_row = rhs.row(i);
                for (dk, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let out_row = &mut chunk[dk * n..(dk + 1) * n];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        });
        out
    }

    /// `self · rhsᵀ`, without materialising the transpose (backward pass
    /// input gradient: `dX = dY · Wᵀ`).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_transpose_b(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_transpose_b dimension mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let _span = fastgl_telemetry::span("tensor.matmul_t_b")
            .with_u64("m", self.rows as u64)
            .with_u64("k", self.cols as u64)
            .with_u64("n", rhs.rows as u64);
        fastgl_telemetry::counter_add(
            "tensor.matmul_flops",
            2 * (self.rows * self.cols * rhs.rows) as u64,
        );
        let n = rhs.rows;
        let mut out = Matrix::zeros(self.rows, n);
        if n == 0 {
            return out;
        }
        let grain = matmul_grain_rows(self.cols.max(1) * n);
        parallel::par_row_chunks_mut(&mut out.data, n, grain, |first_row, chunk| {
            for (di, out_row) in chunk.chunks_mut(n).enumerate() {
                let a_row = self.row(first_row + di);
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = rhs.row(j);
                    let mut acc = 0.0;
                    for (&a, &b) in a_row.iter().zip(b_row) {
                        acc += a * b;
                    }
                    *o = acc;
                }
            }
        });
        out
    }

    /// The transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Applies `f` elementwise, returning a new matrix. Runs in parallel
    /// chunks above the elementwise cutoff (each element is independent, so
    /// any partition is bit-identical to the serial pass).
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        parallel::par_row_chunks_mut(
            &mut out.data,
            1,
            parallel::ELEMWISE_GRAIN,
            |first, chunk| {
                let src = &self.data[first..first + chunk.len()];
                for (o, &x) in chunk.iter_mut().zip(src) {
                    *o = f(x);
                }
            },
        );
        out
    }

    /// Multiplies every element in place.
    pub fn scale(&mut self, s: f32) {
        parallel::par_row_chunks_mut(&mut self.data, 1, parallel::ELEMWISE_GRAIN, |_, chunk| {
            for x in chunk {
                *x *= s;
            }
        });
    }

    /// Adds `rhs` scaled by `alpha` in place (`self += alpha * rhs`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "axpy shape mismatch"
        );
        parallel::par_row_chunks_mut(
            &mut self.data,
            1,
            parallel::ELEMWISE_GRAIN,
            |first, chunk| {
                let src = &rhs.data[first..first + chunk.len()];
                for (a, &b) in chunk.iter_mut().zip(src) {
                    *a += alpha * b;
                }
            },
        );
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "hadamard shape mismatch"
        );
        let mut out = Matrix::zeros(self.rows, self.cols);
        parallel::par_row_chunks_mut(
            &mut out.data,
            1,
            parallel::ELEMWISE_GRAIN,
            |first, chunk| {
                let a = &self.data[first..first + chunk.len()];
                let b = &rhs.data[first..first + chunk.len()];
                for ((o, &x), &y) in chunk.iter_mut().zip(a).zip(b) {
                    *o = x * y;
                }
            },
        );
        out
    }

    /// Selects rows by index into a new matrix (feature gather).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        Self::gather_flat(&self.data, self.cols, self.rows, indices)
    }

    /// Gathers rows out of a flat row-major feature buffer of `dim`-wide
    /// rows (the mini-batch feature load: `out[i] = src[indices[i]]`).
    /// Row copies are independent, so the gather parallelises over
    /// contiguous output-row chunks with no ordering concerns.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() < num_rows * dim` or any index is `>= num_rows`.
    pub fn gather_flat(src: &[f32], dim: usize, num_rows: usize, indices: &[usize]) -> Matrix {
        assert!(
            src.len() >= num_rows * dim,
            "flat buffer of {} elements is smaller than {num_rows} rows of {dim}",
            src.len()
        );
        let _span = fastgl_telemetry::span("tensor.gather")
            .with_u64("rows", indices.len() as u64)
            .with_u64("dim", dim as u64);
        fastgl_telemetry::counter_add("tensor.gather_rows", indices.len() as u64);
        fastgl_telemetry::counter_add("tensor.gather_bytes", (indices.len() * dim * 4) as u64);
        let mut out = Matrix::zeros(indices.len(), dim);
        if dim == 0 {
            for &idx in indices {
                assert!(idx < num_rows, "row index {idx} out of bounds");
            }
            return out;
        }
        parallel::par_row_chunks_mut(
            &mut out.data,
            dim,
            parallel::GATHER_GRAIN_ROWS,
            |first_row, chunk| {
                for (i, row) in chunk.chunks_mut(dim).enumerate() {
                    let idx = indices[first_row + i];
                    assert!(idx < num_rows, "row index {idx} out of bounds");
                    row.copy_from_slice(&src[idx * dim..(idx + 1) * dim]);
                }
            },
        );
        out
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.axpy(1.0, rhs);
        out
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.axpy(-1.0, rhs);
        out
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.axpy(1.0, rhs);
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f32) -> Matrix {
        let mut out = self.clone();
        out.scale(s);
        out
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>9.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 6 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &Matrix, b: &Matrix, eps: f32) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() < eps)
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_vec(2, 2, vec![1.0, -2.0, 0.5, 3.0]);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn transpose_variants_agree_with_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 4, (0..12).map(|x| x as f32).collect());
        let t1 = a.matmul_transpose_a(&b);
        let t2 = a.transpose().matmul(&b);
        assert!(approx(&t1, &t2, 1e-6));

        let c = Matrix::from_vec(5, 2, (0..10).map(|x| x as f32 * 0.3).collect());
        let d = Matrix::from_vec(4, 2, (0..8).map(|x| x as f32 - 3.0).collect());
        let t3 = c.matmul_transpose_b(&d);
        let t4 = c.matmul(&d.transpose());
        assert!(approx(&t3, &t4, 1e-6));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn axpy_add_sub() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![10.0, 20.0, 30.0]);
        assert_eq!((&a + &b).as_slice(), &[11.0, 22.0, 33.0]);
        assert_eq!((&b - &a).as_slice(), &[9.0, 18.0, 27.0]);
        let mut c = a.clone();
        c.axpy(0.5, &b);
        assert_eq!(c.as_slice(), &[6.0, 12.0, 18.0]);
        c += &a;
        assert_eq!(c.as_slice(), &[7.0, 14.0, 21.0]);
    }

    #[test]
    fn scale_and_mul() {
        let a = Matrix::from_vec(1, 2, vec![2.0, -4.0]);
        assert_eq!((&a * 0.5).as_slice(), &[1.0, -2.0]);
    }

    #[test]
    fn hadamard_elementwise() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn gather_rows_selects() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gather_rows(&[2, 0]);
        assert_eq!(g.as_slice(), &[5.0, 6.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_rows_bounds_checked() {
        let a = Matrix::zeros(2, 2);
        let _ = a.gather_rows(&[5]);
    }

    #[test]
    fn norm_is_frobenius() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn map_applies_elementwise() {
        let a = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]);
        let r = a.map(|x| x.max(0.0));
        assert_eq!(r.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn display_does_not_panic() {
        let a = Matrix::zeros(10, 10);
        let s = a.to_string();
        assert!(s.contains("Matrix 10x10"));
    }

    #[test]
    #[should_panic(expected = "cannot form")]
    fn from_vec_validates_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn gather_flat_matches_gather_rows() {
        let a = Matrix::from_vec(4, 3, (0..12).map(|x| x as f32).collect());
        let idx = [3, 1, 1, 0];
        let g1 = a.gather_rows(&idx);
        let g2 = Matrix::gather_flat(a.as_slice(), 3, 4, &idx);
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_flat_bounds_checked() {
        let src = vec![0.0f32; 6];
        let _ = Matrix::gather_flat(&src, 3, 2, &[2]);
    }

    /// Pseudo-random but deterministic fill that exercises the zero-skip.
    fn fill(rows: usize, cols: usize, salt: u64) -> Matrix {
        let data = (0..rows * cols)
            .map(|i| {
                let mut x = i as u64 ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                x ^= x >> 31;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                if x.is_multiple_of(7) {
                    0.0
                } else {
                    ((x >> 40) as f32 / 8_388_608.0) - 1.0
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn kernels_bit_identical_across_thread_counts() {
        use crate::parallel::test_util::with_threads;
        // Sizes above every grain so the parallel path actually engages.
        let a = fill(97, 193, 1);
        let b = fill(193, 131, 2);
        let c = fill(97, 131, 3);
        let idx: Vec<usize> = (0..500).map(|i| (i * 37) % 97).collect();
        let baseline = with_threads(1, || {
            (
                a.matmul(&b),
                a.matmul_transpose_a(&c),
                c.matmul_transpose_b(&b),
                a.map(|x| x.max(0.0)),
                a.hadamard(&a),
                a.gather_rows(&idx),
            )
        });
        for threads in [2usize, 3, 8] {
            let got = with_threads(threads, || {
                (
                    a.matmul(&b),
                    a.matmul_transpose_a(&c),
                    c.matmul_transpose_b(&b),
                    a.map(|x| x.max(0.0)),
                    a.hadamard(&a),
                    a.gather_rows(&idx),
                )
            });
            assert_eq!(
                got.0.as_slice(),
                baseline.0.as_slice(),
                "matmul t={threads}"
            );
            assert_eq!(got.1.as_slice(), baseline.1.as_slice(), "t_a t={threads}");
            assert_eq!(got.2.as_slice(), baseline.2.as_slice(), "t_b t={threads}");
            assert_eq!(got.3.as_slice(), baseline.3.as_slice(), "map t={threads}");
            assert_eq!(
                got.4.as_slice(),
                baseline.4.as_slice(),
                "hadamard t={threads}"
            );
            assert_eq!(
                got.5.as_slice(),
                baseline.5.as_slice(),
                "gather t={threads}"
            );
        }
    }

    #[test]
    fn inplace_kernels_bit_identical_across_thread_counts() {
        use crate::parallel::test_util::with_threads;
        let base = fill(211, 97, 4);
        let delta = fill(211, 97, 5);
        let baseline = with_threads(1, || {
            let mut m = base.clone();
            m.scale(0.37);
            m.axpy(-1.25, &delta);
            m
        });
        for threads in [2usize, 8] {
            let got = with_threads(threads, || {
                let mut m = base.clone();
                m.scale(0.37);
                m.axpy(-1.25, &delta);
                m
            });
            assert_eq!(got.as_slice(), baseline.as_slice(), "t={threads}");
        }
    }
}
