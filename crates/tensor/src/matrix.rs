//! Row-major dense `f32` matrices.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A dense row-major `f32` matrix.
///
/// # Example
///
/// ```
/// use fastgl_tensor::Matrix;
///
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Wraps a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer of {} elements cannot form a {rows}x{cols} matrix",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The flat row-major buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self · rhs` using an ikj loop order (streams rows of
    /// `rhs`, cache-friendly for row-major data).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · rhs`, without materialising the transpose (backward pass
    /// weight gradient: `dW = Xᵀ · dY`).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != rhs.rows`.
    pub fn matmul_transpose_a(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_transpose_a dimension mismatch: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let b_row = rhs.row(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · rhsᵀ`, without materialising the transpose (backward pass
    /// input gradient: `dX = dY · Wᵀ`).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_transpose_b(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_transpose_b dimension mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// The transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Applies `f` elementwise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Multiplies every element in place.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Adds `rhs` scaled by `alpha` in place (`self += alpha * rhs`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "axpy shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "hadamard shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a * b)
                .collect(),
        }
    }

    /// Selects rows by index into a new matrix (feature gather).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < self.rows, "row index {idx} out of bounds");
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.axpy(1.0, rhs);
        out
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.axpy(-1.0, rhs);
        out
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.axpy(1.0, rhs);
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f32) -> Matrix {
        let mut out = self.clone();
        out.scale(s);
        out
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>9.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 6 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &Matrix, b: &Matrix, eps: f32) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() < eps)
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_vec(2, 2, vec![1.0, -2.0, 0.5, 3.0]);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn transpose_variants_agree_with_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 4, (0..12).map(|x| x as f32).collect());
        let t1 = a.matmul_transpose_a(&b);
        let t2 = a.transpose().matmul(&b);
        assert!(approx(&t1, &t2, 1e-6));

        let c = Matrix::from_vec(5, 2, (0..10).map(|x| x as f32 * 0.3).collect());
        let d = Matrix::from_vec(4, 2, (0..8).map(|x| x as f32 - 3.0).collect());
        let t3 = c.matmul_transpose_b(&d);
        let t4 = c.matmul(&d.transpose());
        assert!(approx(&t3, &t4, 1e-6));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn axpy_add_sub() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![10.0, 20.0, 30.0]);
        assert_eq!((&a + &b).as_slice(), &[11.0, 22.0, 33.0]);
        assert_eq!((&b - &a).as_slice(), &[9.0, 18.0, 27.0]);
        let mut c = a.clone();
        c.axpy(0.5, &b);
        assert_eq!(c.as_slice(), &[6.0, 12.0, 18.0]);
        c += &a;
        assert_eq!(c.as_slice(), &[7.0, 14.0, 21.0]);
    }

    #[test]
    fn scale_and_mul() {
        let a = Matrix::from_vec(1, 2, vec![2.0, -4.0]);
        assert_eq!((&a * 0.5).as_slice(), &[1.0, -2.0]);
    }

    #[test]
    fn hadamard_elementwise() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn gather_rows_selects() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gather_rows(&[2, 0]);
        assert_eq!(g.as_slice(), &[5.0, 6.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_rows_bounds_checked() {
        let a = Matrix::zeros(2, 2);
        let _ = a.gather_rows(&[5]);
    }

    #[test]
    fn norm_is_frobenius() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn map_applies_elementwise() {
        let a = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]);
        let r = a.map(|x| x.max(0.0));
        assert_eq!(r.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn display_does_not_panic() {
        let a = Matrix::zeros(10, 10);
        let s = a.to_string();
        assert!(s.contains("Matrix 10x10"));
    }

    #[test]
    #[should_panic(expected = "cannot form")]
    fn from_vec_validates_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }
}
