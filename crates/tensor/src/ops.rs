//! Activations and row-wise softmax utilities.

use crate::matrix::Matrix;

/// ReLU, elementwise.
pub fn relu(x: &Matrix) -> Matrix {
    x.map(|v| v.max(0.0))
}

/// Backward of ReLU: passes `grad` where the forward input was positive.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn relu_backward(input: &Matrix, grad: &Matrix) -> Matrix {
    assert_eq!(
        (input.rows(), input.cols()),
        (grad.rows(), grad.cols()),
        "relu_backward shape mismatch"
    );
    let mask = input.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
    mask.hadamard(grad)
}

/// Leaky ReLU with slope `alpha` for negative inputs (GAT uses 0.2).
pub fn leaky_relu(x: &Matrix, alpha: f32) -> Matrix {
    x.map(|v| if v > 0.0 { v } else { alpha * v })
}

/// Backward of leaky ReLU.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn leaky_relu_backward(input: &Matrix, grad: &Matrix, alpha: f32) -> Matrix {
    assert_eq!(
        (input.rows(), input.cols()),
        (grad.rows(), grad.cols()),
        "leaky_relu_backward shape mismatch"
    );
    let mask = input.map(|v| if v > 0.0 { 1.0 } else { alpha });
    mask.hadamard(grad)
}

/// Numerically-stable row-wise softmax.
pub fn softmax_rows(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Numerically-stable row-wise log-softmax.
pub fn log_softmax_rows(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let log_sum = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
        for v in row.iter_mut() {
            *v -= log_sum;
        }
    }
    out
}

/// Exponential over a slice normalised to sum 1 (softmax of a vector),
/// written in place. Used for per-node attention coefficients in GAT.
pub fn softmax_slice(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in xs.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in xs.iter_mut() {
        *v /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Matrix::from_vec(1, 4, vec![-2.0, -0.5, 0.0, 3.0]);
        assert_eq!(relu(&x).as_slice(), &[0.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let x = Matrix::from_vec(1, 3, vec![-1.0, 2.0, 0.0]);
        let g = Matrix::from_vec(1, 3, vec![5.0, 5.0, 5.0]);
        assert_eq!(relu_backward(&x, &g).as_slice(), &[0.0, 5.0, 0.0]);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let x = Matrix::from_vec(1, 2, vec![-10.0, 10.0]);
        assert_eq!(leaky_relu(&x, 0.2).as_slice(), &[-2.0, 10.0]);
        let g = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        assert_eq!(leaky_relu_backward(&x, &g, 0.2).as_slice(), &[0.2, 1.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        let s = softmax_rows(&x);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
        }
        // Monotone in the input.
        assert!(s.get(0, 2) > s.get(0, 1));
        // Large inputs do not overflow.
        assert!((s.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let x = Matrix::from_vec(1, 4, vec![0.1, -2.0, 3.0, 0.7]);
        let ls = log_softmax_rows(&x);
        let s = softmax_rows(&x);
        for c in 0..4 {
            assert!((ls.get(0, c) - s.get(0, c).ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_slice_normalises() {
        let mut xs = vec![1.0, 2.0, 3.0];
        softmax_slice(&mut xs);
        assert!((xs.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
        let mut empty: Vec<f32> = vec![];
        softmax_slice(&mut empty); // must not panic
    }
}
