//! First-order optimisers: SGD with momentum, and Adam.
//!
//! Optimisers address parameters by a caller-chosen `slot` index, so a
//! model registers each weight matrix once and then calls
//! [`Optimizer::step`] with the same slot every iteration; per-slot state
//! (momentum buffers, Adam moments) is allocated lazily.

use std::collections::HashMap;

/// A first-order optimiser over flat parameter slices.
pub trait Optimizer {
    /// Applies one update of `grad` to `param` under slot `slot`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `param.len() != grad.len()` or if a slot is
    /// reused with a different length.
    fn step(&mut self, slot: usize, param: &mut [f32], grad: &[f32]);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (e.g. for decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: HashMap<usize, Vec<f32>>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with momentum coefficient `momentum`.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, slot: usize, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len(), "param/grad length mismatch");
        if self.momentum == 0.0 {
            for (p, &g) in param.iter_mut().zip(grad) {
                *p -= self.lr * g;
            }
            return;
        }
        let v = self
            .velocity
            .entry(slot)
            .or_insert_with(|| vec![0.0; param.len()]);
        assert_eq!(v.len(), param.len(), "slot {slot} reused with new length");
        for ((p, &g), vi) in param.iter_mut().zip(grad).zip(v.iter_mut()) {
            *vi = self.momentum * *vi + g;
            *p -= self.lr * *vi;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// The Adam optimiser (Kingma & Ba), the optimiser the paper's training
/// runs use via PyTorch.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    moments: HashMap<usize, (Vec<f32>, Vec<f32>)>,
}

impl Adam {
    /// Adam with the standard betas (0.9, 0.999) and `eps = 1e-8`.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            moments: HashMap::new(),
        }
    }

    /// Advances the shared timestep; call once per training iteration
    /// *before* the slot updates of that iteration.
    pub fn next_iteration(&mut self) {
        self.t += 1;
    }

    /// The shared timestep (number of `next_iteration` calls so far).
    pub fn timestep(&self) -> u64 {
        self.t
    }

    /// Snapshots the optimiser's full state (timestep and per-slot
    /// moments) in a canonical slot order, for checkpointing.
    pub fn state(&self) -> AdamState {
        let mut slots: Vec<AdamSlotState> = self
            .moments
            .iter()
            .map(|(&slot, (m, v))| AdamSlotState {
                slot: slot as u64,
                m: m.clone(),
                v: v.clone(),
            })
            .collect();
        slots.sort_by_key(|s| s.slot);
        AdamState {
            lr: self.lr,
            t: self.t,
            slots,
        }
    }

    /// Restores a snapshot taken by [`state`](Self::state), replacing the
    /// timestep, learning rate, and every slot's moment buffers — the
    /// restored optimiser continues bit-identically to the original.
    pub fn restore(&mut self, state: &AdamState) {
        self.lr = state.lr;
        self.t = state.t;
        self.moments = state
            .slots
            .iter()
            .map(|s| (s.slot as usize, (s.m.clone(), s.v.clone())))
            .collect();
    }
}

/// The checkpointable state of one [`Adam`] parameter slot.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamSlotState {
    /// The slot index the model registered the parameter under.
    pub slot: u64,
    /// First-moment (mean) buffer.
    pub m: Vec<f32>,
    /// Second-moment (uncentred variance) buffer.
    pub v: Vec<f32>,
}

/// A snapshot of an [`Adam`] optimiser, slot state in ascending slot
/// order; produced by [`Adam::state`] and consumed by [`Adam::restore`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// Learning rate at snapshot time.
    pub lr: f32,
    /// Shared timestep.
    pub t: u64,
    /// Per-slot moment buffers, sorted by slot.
    pub slots: Vec<AdamSlotState>,
}

impl Optimizer for Adam {
    fn step(&mut self, slot: usize, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len(), "param/grad length mismatch");
        if self.t == 0 {
            self.t = 1;
        }
        let (m, v) = self
            .moments
            .entry(slot)
            .or_insert_with(|| (vec![0.0; param.len()], vec![0.0; param.len()]));
        assert_eq!(m.len(), param.len(), "slot {slot} reused with new length");
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..param.len() {
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad[i];
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let m_hat = m[i] / b1t;
            let v_hat = v[i] / b2t;
            param[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Decorates an optimiser with global gradient-norm clipping: when a
/// slot's gradient L2 norm exceeds `max_norm`, the gradient is scaled down
/// to that norm before the inner update (the standard stabiliser for GNN
/// training on skewed graphs, where hub nodes can produce huge gradients).
#[derive(Debug, Clone)]
pub struct ClipNorm<O> {
    inner: O,
    max_norm: f32,
}

impl<O: Optimizer> ClipNorm<O> {
    /// Wraps `inner`, clipping each slot's gradient to `max_norm`.
    ///
    /// # Panics
    ///
    /// Panics if `max_norm` is not positive.
    pub fn new(inner: O, max_norm: f32) -> Self {
        assert!(max_norm > 0.0, "max_norm must be positive");
        Self { inner, max_norm }
    }

    /// The wrapped optimiser.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: Optimizer> Optimizer for ClipNorm<O> {
    fn step(&mut self, slot: usize, param: &mut [f32], grad: &[f32]) {
        let norm = grad.iter().map(|g| g * g).sum::<f32>().sqrt();
        if norm > self.max_norm {
            let scale = self.max_norm / norm;
            let clipped: Vec<f32> = grad.iter().map(|g| g * scale).collect();
            self.inner.step(slot, param, &clipped);
        } else {
            self.inner.step(slot, param, grad);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.inner.learning_rate()
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.inner.set_learning_rate(lr);
    }
}

/// A step-decay learning-rate schedule: multiplies the rate by `gamma`
/// every `period` epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepDecay {
    initial_lr: f32,
    gamma: f32,
    period: u64,
}

impl StepDecay {
    /// A schedule starting at `initial_lr`, scaled by `gamma` every
    /// `period` epochs.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` or `gamma` is not in `(0, 1]`.
    pub fn new(initial_lr: f32, gamma: f32, period: u64) -> Self {
        assert!(period > 0, "period must be positive");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        Self {
            initial_lr,
            gamma,
            period,
        }
    }

    /// The learning rate at `epoch`.
    pub fn rate_at(&self, epoch: u64) -> f32 {
        self.initial_lr * self.gamma.powi((epoch / self.period) as i32)
    }

    /// Applies the schedule to an optimiser for `epoch`.
    pub fn apply(&self, opt: &mut dyn Optimizer, epoch: u64) {
        opt.set_learning_rate(self.rate_at(epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimises f(x) = (x - 3)^2 whose gradient is 2(x - 3).
    fn run_quadratic(opt: &mut dyn Optimizer, steps: usize, adam: Option<&mut bool>) -> f32 {
        let _ = adam;
        let mut x = [0.0f32];
        for _ in 0..steps {
            let g = [2.0 * (x[0] - 3.0)];
            opt.step(0, &mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = run_quadratic(&mut opt, 100, None);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let x = run_quadratic(&mut opt, 200, None);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let mut x = [0.0f32];
        for _ in 0..500 {
            opt.next_iteration();
            let g = [2.0 * (x[0] - 3.0)];
            opt.step(0, &mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-2, "x = {}", x[0]);
    }

    #[test]
    fn slots_keep_independent_state() {
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        let mut a = [0.0f32];
        let mut b = [0.0f32];
        opt.step(0, &mut a, &[1.0]);
        opt.step(0, &mut a, &[1.0]);
        opt.step(1, &mut b, &[1.0]);
        // Slot 0 has accumulated momentum, slot 1 has not.
        let a_step2 = a[0];
        assert!((a_step2 - (-0.1 - 0.19)).abs() < 1e-6, "{a_step2}");
        assert!((b[0] - (-0.1)).abs() < 1e-6);
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Adam::new(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }

    #[test]
    fn clipping_bounds_the_applied_gradient() {
        let mut clipped = ClipNorm::new(Sgd::new(1.0), 1.0);
        let mut plain = Sgd::new(1.0);
        let mut p1 = [0.0f32];
        let mut p2 = [0.0f32];
        let huge = [100.0f32];
        clipped.step(0, &mut p1, &huge);
        plain.step(0, &mut p2, &huge);
        assert_eq!(p1[0], -1.0, "clipped to unit norm");
        assert_eq!(p2[0], -100.0);
        // Small gradients pass through unchanged.
        let mut p3 = [0.0f32];
        clipped.step(1, &mut p3, &[0.5]);
        assert_eq!(p3[0], -0.5);
        assert_eq!(clipped.learning_rate(), 1.0);
    }

    #[test]
    fn clipped_training_still_converges() {
        let mut opt = ClipNorm::new(Adam::new(0.1), 0.5);
        let mut x = [10.0f32];
        for _ in 0..300 {
            let g = [2.0 * (x[0] - 3.0)];
            opt.step(0, &mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 0.05, "x = {}", x[0]);
    }

    #[test]
    fn step_decay_schedule() {
        let s = StepDecay::new(0.1, 0.5, 2);
        assert_eq!(s.rate_at(0), 0.1);
        assert_eq!(s.rate_at(1), 0.1);
        assert_eq!(s.rate_at(2), 0.05);
        assert_eq!(s.rate_at(5), 0.025);
        let mut opt = Sgd::new(0.1);
        s.apply(&mut opt, 4);
        assert_eq!(opt.learning_rate(), 0.025);
    }

    #[test]
    #[should_panic(expected = "gamma must be in")]
    fn step_decay_rejects_bad_gamma() {
        let _ = StepDecay::new(0.1, 1.5, 2);
    }

    #[test]
    #[should_panic(expected = "max_norm must be positive")]
    fn clip_rejects_non_positive_norm() {
        let _ = ClipNorm::new(Sgd::new(0.1), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut opt = Sgd::new(0.1);
        let mut p = [0.0f32; 2];
        opt.step(0, &mut p, &[1.0]);
    }

    #[test]
    fn adam_state_round_trip_is_bit_identical() {
        let mut a = Adam::new(0.01);
        let mut x = [1.0f32, -2.0];
        let mut y = [0.5f32];
        for i in 0..7 {
            a.next_iteration();
            a.step(0, &mut x, &[0.1 * i as f32, -0.2]);
            a.step(3, &mut y, &[0.05]);
        }
        let snap = a.state();
        assert_eq!(snap.t, 7);
        assert_eq!(snap.slots.len(), 2);
        assert_eq!(snap.slots[0].slot, 0, "slots sorted");
        // A fresh optimiser restored from the snapshot must continue
        // exactly like the original.
        let mut b = Adam::new(0.999); // wrong lr, will be overwritten
        b.restore(&snap);
        assert_eq!(b.timestep(), 7);
        let (mut xa, mut xb) = (x, x);
        for _ in 0..5 {
            a.next_iteration();
            b.next_iteration();
            a.step(0, &mut xa, &[0.3, 0.3]);
            b.step(0, &mut xb, &[0.3, 0.3]);
        }
        assert_eq!(xa, xb);
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn adam_without_explicit_iteration_still_works() {
        let mut opt = Adam::new(0.1);
        let mut x = [1.0f32];
        opt.step(0, &mut x, &[1.0]);
        assert!(x[0] < 1.0);
    }
}
