//! Weight initialisation.

use crate::matrix::Matrix;
use rand::RngCore;

/// Xavier/Glorot uniform initialisation: entries drawn uniformly from
/// `[-a, a]` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// Works with any [`RngCore`], including the workspace's deterministic RNG.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl RngCore) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    let data = (0..rows * cols)
        .map(|_| {
            let u = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32; // [0,1)
            (2.0 * u - 1.0) * a
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Zero-initialised bias row.
pub fn zeros_bias(cols: usize) -> Matrix {
    Matrix::zeros(1, cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    #[test]
    fn xavier_bounds_hold() {
        let mut rng = Lcg(42);
        let w = xavier_uniform(64, 32, &mut rng);
        let a = (6.0f32 / 96.0).sqrt();
        for &v in w.as_slice() {
            assert!(v.abs() <= a, "|{v}| > {a}");
        }
        // Not all zero, roughly centred.
        let mean: f32 = w.as_slice().iter().sum::<f32>() / 2048.0;
        assert!(mean.abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn deterministic_given_rng() {
        let w1 = xavier_uniform(4, 4, &mut Lcg(7));
        let w2 = xavier_uniform(4, 4, &mut Lcg(7));
        assert_eq!(w1, w2);
    }

    #[test]
    fn bias_is_zero_row() {
        let b = zeros_bias(5);
        assert_eq!(b.rows(), 1);
        assert_eq!(b.cols(), 5);
        assert!(b.as_slice().iter().all(|&x| x == 0.0));
    }
}
