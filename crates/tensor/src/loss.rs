//! Softmax cross-entropy loss and classification accuracy.

use crate::matrix::Matrix;
use crate::ops::{log_softmax_rows, softmax_rows};

/// The value and gradient of a mean softmax cross-entropy loss.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean negative log-likelihood over the batch.
    pub loss: f32,
    /// Gradient with respect to the logits, already divided by batch size.
    pub grad: Matrix,
}

/// Mean softmax cross-entropy of `logits` (`batch × classes`) against
/// integer `labels`.
///
/// # Example
///
/// ```
/// use fastgl_tensor::loss::softmax_cross_entropy;
/// use fastgl_tensor::Matrix;
///
/// let confident = Matrix::from_vec(1, 3, vec![9.0, 0.0, 0.0]);
/// let out = softmax_cross_entropy(&confident, &[0]);
/// assert!(out.loss < 0.01);
/// // The gradient pushes towards the label and sums to zero.
/// assert!(out.grad.get(0, 0) < 0.0);
/// assert!(out.grad.row(0).iter().sum::<f32>().abs() < 1e-6);
/// ```
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()`, the batch is empty, or any
/// label is out of range.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[u32]) -> LossOutput {
    assert_eq!(
        labels.len(),
        logits.rows(),
        "labels ({}) must match batch size ({})",
        labels.len(),
        logits.rows()
    );
    assert!(!labels.is_empty(), "empty batch");
    let n = logits.rows();
    let classes = logits.cols();
    let log_probs = log_softmax_rows(logits);
    let mut loss = 0.0;
    for (r, &label) in labels.iter().enumerate() {
        assert!(
            (label as usize) < classes,
            "label {label} out of range for {classes} classes"
        );
        loss -= log_probs.get(r, label as usize);
    }
    loss /= n as f32;

    // d loss / d logits = (softmax - onehot) / n
    let mut grad = softmax_rows(logits);
    for (r, &label) in labels.iter().enumerate() {
        let v = grad.get(r, label as usize);
        grad.set(r, label as usize, v - 1.0);
    }
    grad.scale(1.0 / n as f32);
    LossOutput { loss, grad }
}

/// Fraction of rows whose argmax equals the label.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()`.
pub fn accuracy(logits: &Matrix, labels: &[u32]) -> f64 {
    assert_eq!(labels.len(), logits.rows(), "labels must match batch size");
    if labels.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for (r, &label) in labels.iter().enumerate() {
        let row = logits.row(r);
        let mut best = 0usize;
        for (c, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = c;
            }
        }
        if best == label as usize {
            correct += 1;
        }
    }
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_low_loss() {
        let logits = Matrix::from_vec(2, 3, vec![10.0, 0.0, 0.0, 0.0, 10.0, 0.0]);
        let out = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(out.loss < 0.01, "loss {}", out.loss);
    }

    #[test]
    fn uniform_prediction_loss_is_log_classes() {
        let logits = Matrix::zeros(4, 5);
        let out = softmax_cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((out.loss - (5.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let base = vec![0.3, -0.7, 1.2, 0.1, 0.9, -0.2];
        let labels = [2u32, 0u32];
        let logits = Matrix::from_vec(2, 3, base.clone());
        let out = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for i in 0..base.len() {
            let mut plus = base.clone();
            plus[i] += eps;
            let mut minus = base.clone();
            minus[i] -= eps;
            let lp = softmax_cross_entropy(&Matrix::from_vec(2, 3, plus), &labels).loss;
            let lm = softmax_cross_entropy(&Matrix::from_vec(2, 3, minus), &labels).loss;
            let fd = (lp - lm) / (2.0 * eps);
            let an = out.grad.as_slice()[i];
            assert!(
                (fd - an).abs() < 1e-3,
                "grad[{i}]: finite-diff {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Matrix::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, -1.0, 0.0, 1.0, 2.0]);
        let out = softmax_cross_entropy(&logits, &[3, 0]);
        for r in 0..2 {
            let sum: f32 = out.grad.row(r).iter().sum();
            assert!(sum.abs() < 1e-6, "row {r} grad sums to {sum}");
        }
    }

    #[test]
    fn accuracy_counts_argmax() {
        let logits = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(accuracy(&Matrix::zeros(0, 2), &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_out_of_range_panics() {
        let _ = softmax_cross_entropy(&Matrix::zeros(1, 2), &[5]);
    }
}
