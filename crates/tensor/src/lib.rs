//! Dense `f32` linear algebra backing FastGL's GNN models.
//!
//! The convergence experiments of the paper (Fig. 16) train real models to
//! a real loss, so the workspace needs actual numerics, not just cost
//! modelling. This crate supplies the dense half of a GNN layer — the
//! *update* phase of Eq. 2 — plus losses and optimisers:
//!
//! * [`Matrix`] — row-major `f32` matrices with blocked matmul and the
//!   transposed variants backward passes need.
//! * [`ops`] — activations and row-wise softmax utilities.
//! * [`loss`] — softmax cross-entropy with gradient, and accuracy.
//! * [`optim`] — SGD (with momentum) and Adam.
//! * [`init`] — Xavier/Glorot initialisation over a deterministic RNG.
//! * [`parallel`] — the workspace-wide deterministic fork-join execution
//!   backend (`FASTGL_THREADS` knob, serial cutoffs).
//!
//! The sparse half (aggregation over subgraph edges) lives in `fastgl-gnn`,
//! where it follows the graph structure.

#![warn(missing_docs)]

pub mod init;
pub mod loss;
pub mod matrix;
pub mod ops;
pub mod optim;
pub mod parallel;

pub use matrix::Matrix;
pub use optim::{Adam, AdamSlotState, AdamState, ClipNorm, Optimizer, Sgd, StepDecay};
