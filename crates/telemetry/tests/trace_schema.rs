//! Schema validation of the chrome-trace exporter, replacing the old CI
//! shell step: generate a trace through the public API, parse it with a
//! real (if small) JSON parser, and assert the conventions downstream
//! tooling relies on — event phases, pid/tid assignment, metadata, and
//! proper span nesting per thread.

use fastgl_telemetry as telemetry;
use telemetry::export::{chrome_trace, SIM_PID, WALL_PID};

// -------------------------------------------------------------------
// Minimal JSON parser (the crate is dependency-free by design, so the
// test brings its own). Parses into a Value tree; panics on malformed
// input, which is itself a schema failure.
// -------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }

    fn as_num(&self) -> f64 {
        match self {
            Value::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    fn as_arr(&self) -> &[Value] {
        match self {
            Value::Arr(items) => items,
            other => panic!("expected array, got {other:?}"),
        }
    }
}

fn parse(input: &str) -> Value {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos);
    skip_ws(bytes, &mut pos);
    assert_eq!(pos, bytes.len(), "trailing content after JSON value");
    v
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Value {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Value::Obj(fields);
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos) {
                    Value::Str(s) => s,
                    other => panic!("object key must be a string, got {other:?}"),
                };
                skip_ws(b, pos);
                assert_eq!(b.get(*pos), Some(&b':'), "expected ':'");
                *pos += 1;
                let val = parse_value(b, pos);
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Value::Obj(fields);
                    }
                    other => panic!("expected ',' or '}}', got {other:?}"),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Value::Arr(items);
            }
            loop {
                items.push(parse_value(b, pos));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Value::Arr(items);
                    }
                    other => panic!("expected ',' or ']', got {other:?}"),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    Some(b'"') => {
                        *pos += 1;
                        return Value::Str(s);
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'u') => {
                                let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5]).unwrap();
                                let code = u32::from_str_radix(hex, 16).expect("bad \\u escape");
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            other => panic!("bad escape {other:?}"),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        // Multi-byte UTF-8 sequences pass through verbatim.
                        let len = match c {
                            0x00..=0x7f => 1,
                            0xc0..=0xdf => 2,
                            0xe0..=0xef => 3,
                            _ => 4,
                        };
                        s.push_str(std::str::from_utf8(&b[*pos..*pos + len]).unwrap());
                        *pos += len;
                    }
                    None => panic!("unterminated string"),
                }
            }
        }
        Some(b't') => {
            assert_eq!(&b[*pos..*pos + 4], b"true");
            *pos += 4;
            Value::Bool(true)
        }
        Some(b'f') => {
            assert_eq!(&b[*pos..*pos + 5], b"false");
            *pos += 5;
            Value::Bool(false)
        }
        Some(b'n') => {
            assert_eq!(&b[*pos..*pos + 4], b"null");
            *pos += 4;
            Value::Null
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len() && (b[*pos].is_ascii_digit() || b"+-.eE".contains(&b[*pos])) {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).unwrap();
            Value::Num(text.parse().expect("bad number"))
        }
        None => panic!("unexpected end of JSON"),
    }
}

// -------------------------------------------------------------------
// Trace generation: a deterministic span structure over several threads
// plus a bridged simulated breakdown, exactly the shape a pipelined run
// produces.
// -------------------------------------------------------------------

/// One complete X event as parsed from the trace.
struct Span {
    name: String,
    pid: u64,
    tid: u64,
    ts: f64,
    dur: f64,
}

fn generate_trace() -> String {
    telemetry::set_enabled(true);
    telemetry::reset();
    {
        let _epoch = telemetry::span("epoch").with_u64("epoch", 0);
        std::thread::scope(|scope| {
            for w in 0..3u64 {
                scope.spawn(move || {
                    let _outer = telemetry::span("pipeline.stage.sample").with_u64("window", w);
                    let _inner = telemetry::span("sample.hop");
                });
            }
        });
        let _exec = telemetry::span("pipeline.stage.execute").with_u64("window", 0);
    }
    telemetry::record_sim_phases(
        "epoch 0",
        &[("sample", 1_000), ("io", 2_000), ("compute", 500)],
    );
    let trace = chrome_trace(&telemetry::snapshot());
    telemetry::reset();
    telemetry::set_enabled(false);
    trace
}

#[test]
fn chrome_trace_schema_holds() {
    let trace = generate_trace();
    let root = parse(&trace);

    let events = root
        .get("traceEvents")
        .expect("top-level traceEvents array")
        .as_arr();
    assert!(!events.is_empty());

    let mut spans: Vec<Span> = Vec::new();
    let mut process_names: Vec<(u64, String)> = Vec::new();
    let mut thread_names: Vec<(u64, u64, String)> = Vec::new();

    for e in events {
        let ph = e.get("ph").expect("every event has ph").as_str();
        let pid = e.get("pid").expect("every event has pid").as_num() as u64;
        let tid = e.get("tid").expect("every event has tid").as_num() as u64;
        match ph {
            "M" => {
                let what = e.get("name").unwrap().as_str();
                let arg = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .expect("metadata args.name")
                    .as_str()
                    .to_string();
                match what {
                    "process_name" => process_names.push((pid, arg)),
                    "thread_name" => thread_names.push((pid, tid, arg)),
                    other => panic!("unexpected metadata record {other}"),
                }
            }
            "X" => {
                let cat = e.get("cat").expect("X events carry a category").as_str();
                assert_eq!(
                    cat,
                    if pid == WALL_PID { "wall" } else { "sim" },
                    "category matches the track"
                );
                spans.push(Span {
                    name: e.get("name").unwrap().as_str().to_string(),
                    pid,
                    tid,
                    ts: e.get("ts").unwrap().as_num(),
                    dur: e.get("dur").unwrap().as_num(),
                });
            }
            other => panic!("unexpected event phase {other:?} (only X and M are emitted)"),
        }
    }

    // Process naming convention: wall pid and sim pid, both labelled.
    assert!(process_names
        .iter()
        .any(|(pid, n)| *pid == WALL_PID && n == "fastgl (wall clock)"));
    assert!(process_names
        .iter()
        .any(|(pid, n)| *pid == SIM_PID && n == "fastgl (simulated gpu)"));

    // Tid conventions: sim events all on tid 0 of SIM_PID; every wall tid
    // that carries events has a "worker N" thread_name record matching its
    // ordinal.
    for s in &spans {
        assert!(
            s.pid == WALL_PID || s.pid == SIM_PID,
            "unknown pid {}",
            s.pid
        );
        if s.pid == SIM_PID {
            assert_eq!(s.tid, 0, "sim events share the single sim timeline");
        } else {
            assert!(s.tid >= 1, "wall thread ordinals are 1-based");
            assert!(
                thread_names.iter().any(|(pid, tid, n)| *pid == WALL_PID
                    && *tid == s.tid
                    && *n == format!("worker {}", s.tid)),
                "wall tid {} lacks its worker thread_name",
                s.tid
            );
        }
    }

    // The recorded structure survived: 3 sampler threads, each with a
    // nested hop, plus execute and the enclosing epoch on the main thread.
    let count = |name: &str| spans.iter().filter(|s| s.name == name).count();
    assert_eq!(count("pipeline.stage.sample"), 3);
    assert_eq!(count("sample.hop"), 3);
    assert_eq!(count("pipeline.stage.execute"), 1);
    assert_eq!(count("epoch"), 1);
    let sampler_tids: std::collections::BTreeSet<u64> = spans
        .iter()
        .filter(|s| s.name == "pipeline.stage.sample")
        .map(|s| s.tid)
        .collect();
    assert_eq!(sampler_tids.len(), 3, "each sampler ran on its own thread");

    // Span nesting: on any single (pid, tid) timeline, two spans either
    // nest or are disjoint — RAII guards cannot partially overlap.
    for a in &spans {
        for b in &spans {
            if std::ptr::eq(a, b) || a.pid != b.pid || a.tid != b.tid {
                continue;
            }
            let (a0, a1) = (a.ts, a.ts + a.dur);
            let (b0, b1) = (b.ts, b.ts + b.dur);
            let disjoint = a1 <= b0 || b1 <= a0;
            let nested = (a0 <= b0 && b1 <= a1) || (b0 <= a0 && a1 <= b1);
            assert!(
                disjoint || nested,
                "spans {} and {} partially overlap on pid {} tid {}",
                a.name,
                b.name,
                a.pid,
                a.tid
            );
        }
    }

    // Specific nesting: each hop sits inside its thread's sample span, and
    // every wall span sits inside [epoch start, epoch end].
    let epoch = spans.iter().find(|s| s.name == "epoch").unwrap();
    for s in spans.iter().filter(|s| s.pid == WALL_PID) {
        if s.tid == epoch.tid && !std::ptr::eq(s, epoch) {
            assert!(
                s.ts >= epoch.ts && s.ts + s.dur <= epoch.ts + epoch.dur,
                "{} escapes the enclosing epoch span",
                s.name
            );
        }
    }
    for hop in spans.iter().filter(|s| s.name == "sample.hop") {
        let parent = spans
            .iter()
            .find(|s| s.name == "pipeline.stage.sample" && s.tid == hop.tid)
            .expect("hop has a sampler parent on its thread");
        assert!(
            hop.ts >= parent.ts && hop.ts + hop.dur <= parent.ts + parent.dur,
            "hop escapes its sampler span"
        );
    }

    // The simulated breakdown bridged onto the sim track: phases lie back
    // to back inside the enclosing label.
    let label = spans
        .iter()
        .find(|s| s.pid == SIM_PID && s.name == "epoch 0")
        .expect("sim label span");
    assert_eq!(label.dur, 3.5, "3500 ns = 3.5 us");
    let mut phases: Vec<&Span> = spans
        .iter()
        .filter(|s| s.pid == SIM_PID && s.name != "epoch 0")
        .collect();
    phases.sort_by(|a, b| a.ts.partial_cmp(&b.ts).unwrap());
    let names: Vec<&str> = phases.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["sample", "io", "compute"]);
    let mut cursor = label.ts;
    for p in &phases {
        assert_eq!(p.ts, cursor, "sim phases are gap-free");
        cursor += p.dur;
    }
    assert_eq!(cursor, label.ts + label.dur);
}
