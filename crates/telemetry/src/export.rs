//! Exporters: Chrome `trace_event` JSON, a stable machine-readable
//! `telemetry.json`, and a human-readable summary table.
//!
//! The chrome trace loads directly in `chrome://tracing` or
//! <https://ui.perfetto.dev>: wall-clock spans appear under process 1
//! (one row per worker thread of the fork-join backend) and the bridged
//! simulated-GPU phases under process 2. All JSON is hand-rolled — the
//! crate is dependency-free — and escapes strings per RFC 8259.

use crate::span::{AttrValue, Snapshot, Track};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Escapes a string for a JSON string literal (without the quotes).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an f64 as a JSON number (no NaN/Inf — clamped to 0).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn attrs_json(attrs: &[(&'static str, AttrValue)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = match v {
            AttrValue::U64(x) => write!(out, "\"{}\":{x}", esc(k)),
            AttrValue::F64(x) => write!(out, "\"{}\":{}", esc(k), num(*x)),
            AttrValue::Str(s) => write!(out, "\"{}\":\"{}\"", esc(k), esc(s)),
        };
    }
    out.push('}');
    out
}

/// Process id used for wall-clock events in the chrome trace.
pub const WALL_PID: u64 = 1;
/// Process id used for simulated-time events in the chrome trace.
pub const SIM_PID: u64 = 2;

/// Renders the snapshot as Chrome `trace_event` JSON (object format, with
/// `traceEvents` plus process/thread name metadata). Timestamps are in
/// microseconds as the format requires.
pub fn chrome_trace(snapshot: &Snapshot) -> String {
    let mut events: Vec<String> = Vec::with_capacity(snapshot.events.len() + 8);
    let meta = |pid: u64, tid: u64, what: &str, name: &str| {
        format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{what}\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        )
    };
    events.push(meta(WALL_PID, 0, "process_name", "fastgl (wall clock)"));
    events.push(meta(SIM_PID, 0, "process_name", "fastgl (simulated gpu)"));
    events.push(meta(SIM_PID, 0, "thread_name", "sim timeline"));
    for t in snapshot.threads() {
        events.push(meta(WALL_PID, t, "thread_name", &format!("worker {t}")));
    }
    for e in &snapshot.events {
        let (pid, tid) = match e.track {
            Track::Wall { thread } => (WALL_PID, thread),
            Track::Sim => (SIM_PID, 0),
        };
        let cat = if pid == WALL_PID { "wall" } else { "sim" };
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\
             \"ts\":{},\"dur\":{},\"args\":{}}}",
            esc(e.name),
            num(e.start_ns as f64 / 1e3),
            num(e.dur_ns as f64 / 1e3),
            attrs_json(&e.attrs),
        ));
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Renders the snapshot as the stable machine-readable `telemetry.json`
/// perf artifact: per-span aggregates, counters, histograms, and the
/// simulated per-phase totals.
pub fn to_json(snapshot: &Snapshot) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"version\": 1,");
    let _ = writeln!(out, "  \"dropped_events\": {},", snapshot.dropped_events);

    out.push_str("  \"spans\": {");
    for (i, (name, agg)) in snapshot.span_totals().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
            esc(name),
            agg.count,
            agg.total_ns,
            agg.min_ns,
            agg.max_ns
        );
    }
    out.push_str("\n  },\n");

    out.push_str("  \"counters\": {");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", esc(name), value);
    }
    out.push_str("\n  },\n");

    out.push_str("  \"histograms\": {");
    for (i, (name, h)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| {
                let (lo, _) = crate::Histogram::bucket_range(b);
                format!("[{lo}, {c}]")
            })
            .collect();
        let _ = write!(
            out,
            "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
             \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [{}]}}",
            esc(name),
            h.count,
            h.sum,
            if h.count == 0 { 0 } else { h.min },
            h.max,
            num(h.mean()),
            h.quantile(0.50),
            h.quantile(0.95),
            h.quantile(0.99),
            buckets.join(", ")
        );
    }
    out.push_str("\n  },\n");

    out.push_str("  \"sim_phases_ns\": {");
    for (i, (name, ns)) in snapshot.sim_phase_totals().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", esc(name), ns);
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Formats nanoseconds with a sensible unit.
fn fmt_ns(ns: u64) -> String {
    let v = ns as f64;
    if v >= 1e9 {
        format!("{:.3}s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.3}ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.3}us", v / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders one aligned text table (local helper mirroring the bench
/// harness's table style; `fastgl-bench` cannot be a dependency here
/// because every crate it depends on depends on this one).
fn text_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "## {title}");
    let line = |cells: &[String]| -> String {
        let mut s = String::from("| ");
        for (cell, w) in cells.iter().zip(&widths) {
            let _ = write!(s, "{cell:<w$} | ");
        }
        s.trim_end().to_string()
    };
    let headers: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&line(&headers));
    out.push('\n');
    let mut sep = String::from("|");
    for w in &widths {
        let _ = write!(sep, "{}|", "-".repeat(w + 2));
    }
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&line(row));
        out.push('\n');
    }
    out
}

/// Renders a human-readable per-phase / per-span / counter summary.
pub fn summary(snapshot: &Snapshot) -> String {
    let mut out = String::new();

    let sim = snapshot.sim_phase_totals();
    if !sim.is_empty() {
        let total: u64 = sim.values().sum();
        let rows: Vec<Vec<String>> = sim
            .iter()
            .map(|(name, &ns)| {
                vec![
                    name.to_string(),
                    fmt_ns(ns),
                    format!("{:.1}%", 100.0 * ns as f64 / total.max(1) as f64),
                ]
            })
            .collect();
        out.push_str(&text_table(
            "Simulated phases",
            &["phase", "total", "share"],
            &rows,
        ));
        out.push('\n');
    }

    let spans = snapshot.span_totals();
    if !spans.is_empty() {
        let rows: Vec<Vec<String>> = spans
            .iter()
            .map(|(name, agg)| {
                vec![
                    name.to_string(),
                    agg.count.to_string(),
                    fmt_ns(agg.total_ns),
                    fmt_ns(agg.total_ns / agg.count.max(1)),
                ]
            })
            .collect();
        out.push_str(&text_table(
            "Wall-clock spans",
            &["span", "count", "total", "mean"],
            &rows,
        ));
        out.push('\n');
    }

    if !snapshot.counters.is_empty() {
        let rows: Vec<Vec<String>> = snapshot
            .counters
            .iter()
            .map(|(name, value)| vec![name.to_string(), value.to_string()])
            .collect();
        out.push_str(&text_table("Counters", &["counter", "value"], &rows));
        out.push('\n');
    }

    if !snapshot.histograms.is_empty() {
        let rows: Vec<Vec<String>> = snapshot
            .histograms
            .iter()
            .map(|(name, h)| {
                vec![
                    name.to_string(),
                    h.count.to_string(),
                    format!("{:.1}", h.mean()),
                    if h.count == 0 { 0 } else { h.min }.to_string(),
                    h.quantile(0.50).to_string(),
                    h.quantile(0.95).to_string(),
                    h.quantile(0.99).to_string(),
                    h.max.to_string(),
                ]
            })
            .collect();
        out.push_str(&text_table(
            "Histograms",
            &[
                "histogram",
                "count",
                "mean",
                "min",
                "p50",
                "p95",
                "p99",
                "max",
            ],
            &rows,
        ));
        out.push('\n');
    }

    if snapshot.dropped_events > 0 {
        let _ = writeln!(
            out,
            "warning: {} events dropped (buffer cap)",
            snapshot.dropped_events
        );
    }
    if out.is_empty() {
        out.push_str("(telemetry: nothing recorded)\n");
    }
    out
}

/// Writes `<dir>/<stem>.trace.json` (chrome trace) and
/// `<dir>/<stem>.telemetry.json` (perf artifact) for the snapshot,
/// creating `dir`. Returns the two paths.
///
/// # Errors
///
/// Returns any filesystem error encountered.
pub fn write_to_dir(
    snapshot: &Snapshot,
    dir: &Path,
    stem: &str,
) -> std::io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let trace = dir.join(format!("{stem}.trace.json"));
    let perf = dir.join(format!("{stem}.telemetry.json"));
    std::fs::write(&trace, chrome_trace(snapshot))?;
    std::fs::write(&perf, to_json(snapshot))?;
    Ok((trace, perf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::with_telemetry;
    use crate::{counter_add, observe, record_sim_phases, span};

    /// A minimal recursive-descent JSON syntax checker: returns the rest of
    /// the input after one value, or panics with a description. Enough to
    /// prove the hand-rolled exporters emit well-formed JSON.
    fn check_value(s: &str) -> &str {
        let s = s.trim_start();
        let Some(c) = s.chars().next() else {
            panic!("unexpected end of JSON");
        };
        match c {
            '{' => {
                let mut s = s[1..].trim_start();
                if let Some(rest) = s.strip_prefix('}') {
                    return rest;
                }
                loop {
                    s = check_string(s).trim_start();
                    s = s.strip_prefix(':').expect("expected ':'");
                    s = check_value(s).trim_start();
                    if let Some(rest) = s.strip_prefix(',') {
                        s = rest.trim_start();
                    } else {
                        return s.strip_prefix('}').expect("expected '}'");
                    }
                }
            }
            '[' => {
                let mut s = s[1..].trim_start();
                if let Some(rest) = s.strip_prefix(']') {
                    return rest;
                }
                loop {
                    s = check_value(s).trim_start();
                    if let Some(rest) = s.strip_prefix(',') {
                        s = rest.trim_start();
                    } else {
                        return s.strip_prefix(']').expect("expected ']'");
                    }
                }
            }
            '"' => check_string(s),
            't' => s.strip_prefix("true").expect("bad literal"),
            'f' => s.strip_prefix("false").expect("bad literal"),
            'n' => s.strip_prefix("null").expect("bad literal"),
            _ => {
                let end = s
                    .find(|c: char| !"+-0123456789.eE".contains(c))
                    .unwrap_or(s.len());
                assert!(end > 0, "expected a JSON value at {s:.20}");
                s[..end].parse::<f64>().expect("bad number");
                &s[end..]
            }
        }
    }

    fn check_string(s: &str) -> &str {
        let mut chars = s.strip_prefix('"').expect("expected string").char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    chars.next().expect("dangling escape");
                }
                '"' => return &s[1..][i + 1..],
                _ => {}
            }
        }
        panic!("unterminated string");
    }

    fn assert_valid_json(s: &str) {
        let rest = check_value(s);
        assert!(rest.trim().is_empty(), "trailing JSON content: {rest:.40}");
    }

    fn populated() -> crate::Snapshot {
        {
            let _a = span("alpha").with_u64("rows", 10).with_str("q", "a\"b\\c");
            let _b = span("beta").with_f64("ratio", 0.5);
        }
        counter_add("bytes", 4096);
        observe("latency_ns", 1234);
        record_sim_phases("epoch", &[("sample", 100), ("io", 200), ("compute", 300)]);
        crate::snapshot()
    }

    #[test]
    fn chrome_trace_is_valid_json_with_both_tracks() {
        with_telemetry(|| {
            let trace = chrome_trace(&populated());
            assert_valid_json(&trace);
            assert!(trace.contains("\"traceEvents\""));
            assert!(trace.contains("\"ph\":\"X\""));
            assert!(trace.contains("fastgl (wall clock)"));
            assert!(trace.contains("fastgl (simulated gpu)"));
            assert!(trace.contains("\"name\":\"alpha\""));
            assert!(trace.contains("\"name\":\"sample\""));
            // The escaped attribute survives as valid JSON.
            assert!(trace.contains("a\\\"b\\\\c"));
        });
    }

    #[test]
    fn telemetry_json_is_valid_and_complete() {
        with_telemetry(|| {
            let json = to_json(&populated());
            assert_valid_json(&json);
            assert!(json.contains("\"version\": 1"));
            assert!(json.contains("\"alpha\""));
            assert!(json.contains("\"bytes\": 4096"));
            assert!(json.contains("\"latency_ns\""));
            // Quantile summaries ride along with the aggregate stats; a
            // single observation pins all three to the exact value.
            assert!(json.contains("\"p50\": 1234"));
            assert!(json.contains("\"p95\": 1234"));
            assert!(json.contains("\"p99\": 1234"));
            assert!(json.contains("\"sample\": 100"));
            assert!(json.contains("\"io\": 200"));
            assert!(json.contains("\"compute\": 300"));
        });
    }

    #[test]
    fn empty_snapshot_exports_are_valid() {
        with_telemetry(|| {
            let snap = crate::snapshot();
            assert_valid_json(&chrome_trace(&snap));
            assert_valid_json(&to_json(&snap));
            assert!(summary(&snap).contains("nothing recorded"));
        });
    }

    #[test]
    fn summary_renders_all_sections() {
        with_telemetry(|| {
            let s = summary(&populated());
            assert!(s.contains("## Simulated phases"));
            assert!(s.contains("## Wall-clock spans"));
            assert!(s.contains("## Counters"));
            assert!(s.contains("## Histograms"));
            assert!(s.contains("alpha"));
            assert!(s.contains("sample"));
            assert!(s.contains("50.0%"), "compute is 300/600: {s}");
        });
    }

    #[test]
    fn write_to_dir_creates_both_files() {
        with_telemetry(|| {
            let snap = populated();
            let dir = std::env::temp_dir().join("fastgl_telemetry_export_test");
            let (trace, perf) = write_to_dir(&snap, &dir, "unit").unwrap();
            let t = std::fs::read_to_string(&trace).unwrap();
            let p = std::fs::read_to_string(&perf).unwrap();
            assert_valid_json(&t);
            assert_valid_json(&p);
            let _ = std::fs::remove_dir_all(&dir);
        });
    }

    #[test]
    fn json_escaping() {
        assert_eq!(esc("plain"), "plain");
        assert_eq!(esc("a\"b"), "a\\\"b");
        assert_eq!(esc("a\\b"), "a\\\\b");
        assert_eq!(esc("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(esc("\u{1}"), "\\u0001");
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(1.5), "1.5");
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_200), "1.200us");
        assert_eq!(fmt_ns(3_000_000), "3.000ms");
        assert_eq!(fmt_ns(2_000_000_000), "2.000s");
    }
}
