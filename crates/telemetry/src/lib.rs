//! Structured observability for the FastGL workspace: spans, counters,
//! log-bucketed histograms, and perf export (chrome-trace + JSON).
//!
//! Every hot path in the workspace (dense kernels, samplers, the training
//! pipeline, the GPU simulator's phase accounting) reports into this crate,
//! which makes the sample → memory-IO → compute breakdown the paper's
//! evaluation is built on (§6, Figs. 1/3/9–15) observable on *real*
//! host-side execution, not just inside the simulator.
//!
//! # Design goals
//!
//! 1. **Near-zero cost when disabled.** Telemetry is off by default; every
//!    entry point starts with one relaxed atomic load and returns
//!    immediately, allocating nothing. Enable it with `FASTGL_TELEMETRY=1`,
//!    [`set_enabled`], or `FastGlConfig::with_telemetry(true)`.
//! 2. **Safe under the fork-join backend.** The event buffer is sharded by
//!    thread (each worker of `fastgl_tensor::parallel` records into its own
//!    shard under an uncontended lock), and counter/histogram merges are
//!    associative and commutative, so totals are identical at any
//!    `FASTGL_THREADS` setting.
//! 3. **No dependencies.** Like the rest of the workspace, the crate builds
//!    offline; the exporters hand-roll their JSON.
//!
//! # Two timelines
//!
//! Wall-clock spans ([`span()`]) measure real host execution. Simulated-time
//! spans ([`record_sim_phases`]) bridge the simulator's `SimTime` /
//! `PhaseBreakdown` accounting onto a second track of the same trace, so a
//! chrome-trace export shows host work and the simulated GPU's phase
//! breakdown side by side (`pid 1` = wall, `pid 2` = simulated).
//!
//! # Example
//!
//! ```
//! use fastgl_telemetry as telemetry;
//!
//! telemetry::set_enabled(true);
//! telemetry::reset();
//! {
//!     let _outer = telemetry::span("epoch").with_u64("epoch", 0);
//!     let _inner = telemetry::span("gather");
//!     telemetry::counter_add("rows_loaded", 128);
//! }
//! let snap = telemetry::snapshot();
//! assert_eq!(snap.counters["rows_loaded"], 128);
//! assert_eq!(snap.span_totals()["gather"].count, 1);
//! let trace = telemetry::export::chrome_trace(&snap);
//! assert!(trace.contains("\"traceEvents\""));
//! telemetry::set_enabled(false);
//! ```

#![deny(missing_docs)]

pub mod export;
pub mod metrics;
pub mod names;
pub mod span;

pub use metrics::{counter_add, observe, Histogram};
pub use span::{
    record_sim_phases, record_sim_span, span, AttrValue, Event, Snapshot, SpanAgg, SpanGuard, Track,
};

use std::sync::atomic::{AtomicU8, Ordering};

/// Tri-state enablement: 0 = uninitialised (read the environment on first
/// query), 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether telemetry is recording.
///
/// Resolution order: the last [`set_enabled`] call, then the
/// `FASTGL_TELEMETRY` environment variable (`1`/`true`/`on` enable), then
/// off. The fast path is a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("FASTGL_TELEMETRY")
        .map(|v| {
            let v = v.trim().to_ascii_lowercase();
            v == "1" || v == "true" || v == "on"
        })
        .unwrap_or(false);
    // A concurrent set_enabled wins: only replace the uninitialised state.
    let _ = STATE.compare_exchange(
        0,
        if on { 2 } else { 1 },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    STATE.load(Ordering::Relaxed) == 2
}

/// Turns recording on or off for the whole process, overriding
/// `FASTGL_TELEMETRY`.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Collects everything recorded so far (events, counters, histograms)
/// without clearing the buffers.
pub fn snapshot() -> Snapshot {
    span::collect()
}

/// Clears every event buffer, counter, and histogram, and rewinds the
/// simulated-time cursor to zero.
pub fn reset() {
    span::clear();
}

/// [`snapshot`] followed by [`reset`]: take ownership of the recorded data.
pub fn drain() -> Snapshot {
    let s = snapshot();
    reset();
    s
}

#[cfg(test)]
pub(crate) mod test_util {
    use std::sync::Mutex;

    /// Serializes tests that mutate the global telemetry state.
    static LOCK: Mutex<()> = Mutex::new(());

    /// Runs `f` with telemetry enabled and a clean buffer, restoring the
    /// disabled state afterwards.
    pub(crate) fn with_telemetry<R>(f: impl FnOnce() -> R) -> R {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        super::set_enabled(true);
        super::reset();
        let r = f();
        super::reset();
        super::set_enabled(false);
        r
    }

    /// Runs `f` with telemetry explicitly disabled and a clean buffer.
    pub(crate) fn without_telemetry<R>(f: impl FnOnce() -> R) -> R {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        super::set_enabled(false);
        super::reset();
        let r = f();
        super::reset();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::{with_telemetry, without_telemetry};
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        without_telemetry(|| {
            {
                let _s = span("never").with_u64("x", 1);
                counter_add("never_counter", 5);
                observe("never_hist", 10);
            }
            let snap = snapshot();
            assert!(snap.events.is_empty(), "no events when disabled");
            assert!(snap.counters.is_empty(), "no counters when disabled");
            assert!(snap.histograms.is_empty(), "no histograms when disabled");
        });
    }

    #[test]
    fn disabled_guard_is_allocation_free() {
        without_telemetry(|| {
            // Attributes on an inactive guard must not allocate: the vec
            // stays at capacity 0 because with_* early-outs.
            let g = span("noop")
                .with_u64("a", 1)
                .with_f64("b", 2.0)
                .with_str("c", "xyz");
            assert!(!g.is_active());
            assert_eq!(g.attr_capacity(), 0);
        });
    }

    #[test]
    fn set_enabled_overrides_env() {
        without_telemetry(|| {
            assert!(!enabled());
            set_enabled(true);
            assert!(enabled());
            set_enabled(false);
            assert!(!enabled());
        });
    }

    #[test]
    fn drain_empties_the_buffer() {
        with_telemetry(|| {
            {
                let _s = span("once");
            }
            counter_add("c", 1);
            let first = drain();
            assert_eq!(first.events.len(), 1);
            assert_eq!(first.counters["c"], 1);
            let second = snapshot();
            assert!(second.events.is_empty());
            assert!(second.counters.is_empty());
        });
    }
}
