//! The span API and the lock-sharded, thread-aware event buffer.
//!
//! A [`SpanGuard`] is an RAII measurement: it captures a start timestamp on
//! creation and records one [`Event`] on drop. Spans nest naturally — each
//! thread keeps a depth counter, so the recorded events reconstruct the
//! call tree without any parent pointers.
//!
//! Events land in one of [`NUM_SHARDS`] buffers selected by the recording
//! thread's ordinal, so fork-join workers (`fastgl_tensor::parallel`) never
//! contend on a single lock. The buffer is bounded: past
//! [`MAX_EVENTS_PER_SHARD`] events a shard drops new events and counts the
//! drops, which the exporters surface rather than silently truncating.

use crate::metrics::{self, Histogram};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Number of independent event-buffer shards; a small power of two well
/// above the backend's typical worker count.
pub const NUM_SHARDS: usize = 16;

/// Per-shard event cap (see module docs); 2^20 events ≈ 100 MB of trace
/// JSON, far beyond any useful single-run profile.
pub const MAX_EVENTS_PER_SHARD: usize = 1 << 20;

/// Which timeline an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Track {
    /// Real host execution, on the worker thread with this ordinal.
    Wall {
        /// Stable per-process thread ordinal (1-based, assignment order).
        thread: u64,
    },
    /// Simulated GPU time bridged from `fastgl-gpusim`'s accounting.
    Sim,
}

/// A typed span/event attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
}

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Span name (static in the instrumentation, owned here).
    pub name: &'static str,
    /// Timeline and thread.
    pub track: Track,
    /// Start, nanoseconds since the process telemetry epoch (wall) or the
    /// simulated-time origin (sim).
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth on the recording thread at the time the span opened
    /// (0 = top level).
    pub depth: u32,
    /// Global record sequence number (buffer insertion order).
    pub seq: u64,
    /// Key-value attributes.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

struct Shard {
    events: Mutex<Vec<Event>>,
    dropped: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SHARD: Shard = Shard {
    events: Mutex::new(Vec::new()),
    dropped: AtomicU64::new(0),
};

static SHARDS: [Shard; NUM_SHARDS] = [EMPTY_SHARD; NUM_SHARDS];
static SEQ: AtomicU64 = AtomicU64::new(0);
static SIM_CURSOR: AtomicU64 = AtomicU64::new(0);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static THREAD_ORDINAL: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Nanoseconds since the process telemetry epoch (first use).
fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// The calling thread's stable ordinal (also the shard selector).
pub(crate) fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|t| *t)
}

pub(crate) fn shard_index() -> usize {
    (thread_ordinal() as usize) % NUM_SHARDS
}

fn record(event: Event) {
    let shard = &SHARDS[shard_index()];
    let mut events = shard.events.lock().unwrap_or_else(|e| e.into_inner());
    if events.len() >= MAX_EVENTS_PER_SHARD {
        shard.dropped.fetch_add(1, Ordering::Relaxed);
        return;
    }
    events.push(event);
}

/// An RAII span: measures from creation to drop and records one [`Event`].
///
/// Created inactive (a no-op) when telemetry is disabled; the attribute
/// builders early-out in that case, so a disabled span costs one atomic
/// load and allocates nothing.
#[must_use = "a span measures until it is dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start_ns: u64,
    depth: u32,
    attrs: Vec<(&'static str, AttrValue)>,
    active: bool,
}

/// Opens a wall-clock span on the calling thread.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            name,
            start_ns: 0,
            depth: 0,
            attrs: Vec::new(),
            active: false,
        };
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    SpanGuard {
        name,
        start_ns: now_ns(),
        depth,
        attrs: Vec::new(),
        active: true,
    }
}

impl SpanGuard {
    /// Attaches an unsigned-integer attribute.
    #[inline]
    pub fn with_u64(mut self, key: &'static str, value: u64) -> Self {
        if self.active {
            self.attrs.push((key, AttrValue::U64(value)));
        }
        self
    }

    /// Attaches a float attribute.
    #[inline]
    pub fn with_f64(mut self, key: &'static str, value: f64) -> Self {
        if self.active {
            self.attrs.push((key, AttrValue::F64(value)));
        }
        self
    }

    /// Attaches a string attribute.
    #[inline]
    pub fn with_str(mut self, key: &'static str, value: impl Into<String>) -> Self {
        if self.active {
            self.attrs.push((key, AttrValue::Str(value.into())));
        }
        self
    }

    /// Whether this guard is recording.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Capacity of the attribute buffer (observable no-allocation check).
    pub fn attr_capacity(&self) -> usize {
        self.attrs.capacity()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let end = now_ns();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        record(Event {
            name: self.name,
            track: Track::Wall {
                thread: thread_ordinal(),
            },
            start_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns),
            depth: self.depth,
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

/// Appends one span of `dur_ns` simulated nanoseconds to the simulated
/// timeline (the track advances monotonically; successive calls lay spans
/// back to back).
pub fn record_sim_span(name: &'static str, dur_ns: u64, attrs: Vec<(&'static str, AttrValue)>) {
    if !crate::enabled() {
        return;
    }
    let start = SIM_CURSOR.fetch_add(dur_ns, Ordering::Relaxed);
    record(Event {
        name,
        track: Track::Sim,
        start_ns: start,
        dur_ns,
        depth: 0,
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        attrs,
    });
}

/// Bridges one phase breakdown onto the simulated timeline: an enclosing
/// span named `label` covering the whole breakdown, with one nested span
/// per `(phase name, duration ns)` laid back to back inside it.
///
/// This is how `fastgl-gpusim`'s `PhaseBreakdown` lands in the same trace
/// as the wall-clock spans.
pub fn record_sim_phases(label: &'static str, phases: &[(&'static str, u64)]) {
    if !crate::enabled() {
        return;
    }
    let total: u64 = phases.iter().map(|&(_, ns)| ns).sum();
    let start = SIM_CURSOR.fetch_add(total, Ordering::Relaxed);
    record(Event {
        name: label,
        track: Track::Sim,
        start_ns: start,
        dur_ns: total,
        depth: 0,
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        attrs: Vec::new(),
    });
    let mut cursor = start;
    for &(name, ns) in phases {
        record(Event {
            name,
            track: Track::Sim,
            start_ns: cursor,
            dur_ns: ns,
            depth: 1,
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
            attrs: Vec::new(),
        });
        cursor += ns;
    }
}

/// Aggregated statistics of one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanAgg {
    /// Number of completed spans.
    pub count: u64,
    /// Summed duration, nanoseconds.
    pub total_ns: u64,
    /// Shortest span, nanoseconds.
    pub min_ns: u64,
    /// Longest span, nanoseconds.
    pub max_ns: u64,
}

/// Everything recorded up to a point in time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Completed spans, in buffer-insertion (`seq`) order.
    pub events: Vec<Event>,
    /// Merged monotonic counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Merged log-bucketed histograms.
    pub histograms: BTreeMap<&'static str, Histogram>,
    /// Events discarded because a shard hit [`MAX_EVENTS_PER_SHARD`].
    pub dropped_events: u64,
}

impl Snapshot {
    /// Per-name aggregates over the **wall-clock** events.
    pub fn span_totals(&self) -> BTreeMap<&'static str, SpanAgg> {
        let mut out: BTreeMap<&'static str, SpanAgg> = BTreeMap::new();
        for e in self.events.iter().filter(|e| e.track != Track::Sim) {
            let agg = out.entry(e.name).or_insert(SpanAgg {
                min_ns: u64::MAX,
                ..SpanAgg::default()
            });
            agg.count += 1;
            agg.total_ns += e.dur_ns;
            agg.min_ns = agg.min_ns.min(e.dur_ns);
            agg.max_ns = agg.max_ns.max(e.dur_ns);
        }
        out
    }

    /// Summed simulated nanoseconds per name over **top-level phase spans**
    /// of the simulated track (depth 1 = the phases inside each bridged
    /// breakdown; the depth-0 enclosing labels are excluded so phases are
    /// not double-counted).
    pub fn sim_phase_totals(&self) -> BTreeMap<&'static str, u64> {
        let mut out: BTreeMap<&'static str, u64> = BTreeMap::new();
        for e in self
            .events
            .iter()
            .filter(|e| e.track == Track::Sim && e.depth == 1)
        {
            *out.entry(e.name).or_insert(0) += e.dur_ns;
        }
        out
    }

    /// Distinct wall-clock thread ordinals that recorded events, sorted.
    pub fn threads(&self) -> Vec<u64> {
        let mut t: Vec<u64> = self
            .events
            .iter()
            .filter_map(|e| match e.track {
                Track::Wall { thread } => Some(thread),
                Track::Sim => None,
            })
            .collect();
        t.sort_unstable();
        t.dedup();
        t
    }
}

/// Gathers all shards into a [`Snapshot`] (events sorted by `seq`).
pub(crate) fn collect() -> Snapshot {
    let mut events = Vec::new();
    let mut dropped = 0;
    for shard in &SHARDS {
        events.extend(
            shard
                .events
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .cloned(),
        );
        dropped += shard.dropped.load(Ordering::Relaxed);
    }
    events.sort_by_key(|e| e.seq);
    let (counters, histograms) = metrics::collect();
    Snapshot {
        events,
        counters,
        histograms,
        dropped_events: dropped,
    }
}

/// Clears all shards, metrics, and the simulated-time cursor.
pub(crate) fn clear() {
    for shard in &SHARDS {
        shard
            .events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        shard.dropped.store(0, Ordering::Relaxed);
    }
    metrics::clear();
    SIM_CURSOR.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use crate::test_util::with_telemetry;
    use crate::{snapshot, span};

    use super::*;

    #[test]
    fn spans_nest_and_order() {
        with_telemetry(|| {
            {
                let _a = span("outer").with_u64("epoch", 3);
                {
                    let _b = span("inner.first");
                }
                {
                    let _c = span("inner.second").with_str("kind", "io");
                }
            }
            let snap = snapshot();
            assert_eq!(snap.events.len(), 3);
            // Spans record on *close*, so children precede the parent.
            assert_eq!(snap.events[0].name, "inner.first");
            assert_eq!(snap.events[1].name, "inner.second");
            assert_eq!(snap.events[2].name, "outer");
            assert_eq!(snap.events[0].depth, 1);
            assert_eq!(snap.events[1].depth, 1);
            assert_eq!(snap.events[2].depth, 0);
            // The parent encloses both children in time.
            let outer = &snap.events[2];
            for child in &snap.events[..2] {
                assert!(child.start_ns >= outer.start_ns);
                assert!(child.start_ns + child.dur_ns <= outer.start_ns + outer.dur_ns);
            }
            // Siblings are ordered.
            assert!(snap.events[0].start_ns + snap.events[0].dur_ns <= snap.events[1].start_ns);
            assert_eq!(
                outer.attrs,
                vec![("epoch", AttrValue::U64(3))],
                "attributes survive"
            );
        });
    }

    #[test]
    fn span_totals_aggregate_by_name() {
        with_telemetry(|| {
            for _ in 0..4 {
                let _s = span("repeated");
            }
            {
                let _s = span("once");
            }
            let totals = snapshot().span_totals();
            assert_eq!(totals["repeated"].count, 4);
            assert_eq!(totals["once"].count, 1);
            assert!(totals["repeated"].min_ns <= totals["repeated"].max_ns);
            assert!(totals["repeated"].total_ns >= totals["repeated"].max_ns);
        });
    }

    #[test]
    fn sim_phases_lay_out_back_to_back() {
        with_telemetry(|| {
            record_sim_phases("epoch0", &[("sample", 100), ("io", 300), ("compute", 600)]);
            record_sim_phases("epoch1", &[("sample", 50), ("io", 150), ("compute", 300)]);
            let snap = snapshot();
            let sim: Vec<&Event> = snap
                .events
                .iter()
                .filter(|e| e.track == Track::Sim)
                .collect();
            assert_eq!(sim.len(), 8, "2 labels + 6 phases");
            // The second breakdown starts exactly where the first ended.
            let e1 = sim.iter().find(|e| e.name == "epoch1").unwrap();
            assert_eq!(e1.start_ns, 1000);
            assert_eq!(e1.dur_ns, 500);
            let totals = snap.sim_phase_totals();
            assert_eq!(totals["sample"], 150);
            assert_eq!(totals["io"], 450);
            assert_eq!(totals["compute"], 900);
            // Labels are depth 0 and not double-counted into phase totals.
            assert!(!totals.contains_key("epoch0"));
        });
    }

    #[test]
    fn cross_thread_events_carry_distinct_ordinals() {
        with_telemetry(|| {
            std::thread::scope(|scope| {
                for _ in 0..3 {
                    scope.spawn(|| {
                        let _s = span("worker");
                    });
                }
            });
            let snap = snapshot();
            assert_eq!(snap.events.len(), 3);
            let threads = snap.threads();
            assert_eq!(threads.len(), 3, "each worker has its own ordinal");
        });
    }

    #[test]
    fn buffer_cap_counts_drops() {
        // Use the sim track to hit one specific shard deterministically is
        // not possible (shard = thread ordinal), so just verify the cap
        // logic via the recording path on this thread.
        with_telemetry(|| {
            let over = 50;
            for _ in 0..over {
                record_sim_span("tick", 1, Vec::new());
            }
            let snap = snapshot();
            assert_eq!(snap.events.len(), over);
            assert_eq!(snap.dropped_events, 0);
        });
    }
}
