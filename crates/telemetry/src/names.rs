//! Stable metric names shared between the emitting crates and consumers
//! of the exported `telemetry.json` / chrome trace.
//!
//! Fault-injection and recovery events are operational signals: CI and
//! dashboards grep for them by name, so the names live here as constants
//! instead of string literals scattered through `fastgl-core`. All of
//! them are **counters** whose totals are deterministic — faults are
//! injected by a deterministic plan, so the same run produces the same
//! counts at any `FASTGL_THREADS` / `FASTGL_PREFETCH` setting.

/// Injected PCIe stalls ridden out by the memory-IO engine.
pub const FAULT_PCIE_STALLS: &str = "resilience.pcie_stalls";

/// Failed transfer attempts that were retried with simulated backoff.
pub const FAULT_TRANSFER_RETRIES: &str = "resilience.transfer_retries";

/// Simulated nanoseconds of fault-recovery overhead (stall time plus
/// retry backoff and wasted partial copies).
pub const FAULT_OVERHEAD_NS: &str = "resilience.fault_overhead_ns";

/// Feature-cache rows evicted under injected device-memory pressure.
pub const CACHE_EVICTED_ROWS: &str = "resilience.cache_evicted_rows";

/// Injected stage-worker panics recovered by replaying the window.
pub const WORKER_PANICS: &str = "resilience.worker_panics";

/// Pipeline stage restarts (each replays the in-flight window).
pub const STAGE_REPLAYS: &str = "pipeline.stage.replays";

/// Checkpoints written by `Checkpoint::save`.
pub const CHECKPOINT_SAVES: &str = "resilience.checkpoint_saves";

/// Checkpoints read back by `Checkpoint::load`.
pub const CHECKPOINT_LOADS: &str = "resilience.checkpoint_loads";
