//! Stable metric names shared between the emitting crates and consumers
//! of the exported `telemetry.json` / chrome trace.
//!
//! Every counter and histogram the workspace emits at runtime is named
//! here; `fastgl-core`'s `registered_names` lint-test snapshots a real
//! run and asserts each emitted name appears in [`all()`], so a typo'd
//! metric string fails `cargo test` instead of silently forking a new
//! time series. Consumers (`fastgl-insight`, CI greps, dashboards) match
//! on these constants rather than re-typing the strings.
//!
//! All counters are deterministic: increments are driven by the simulated
//! workload, so totals are identical at any `FASTGL_THREADS` /
//! `FASTGL_PREFETCH` setting. Wall-clock *histograms* (the
//! `pipeline.*_ns` family) are the one timing-dependent family — their
//! bucket shapes vary run to run, which is why `fastgl-insight` keys its
//! deterministic analyses off counters and simulated time only.

// ---------------------------------------------------------------------
// Sampling and training counters.
// ---------------------------------------------------------------------

/// Nodes drawn by the neighbour sampler across all layers.
pub const SAMPLE_NODES: &str = "sample.nodes_sampled";

/// Edges materialised into sampled subgraph CSRs.
pub const SAMPLE_EDGES: &str = "sample.edges_sampled";

/// Feature rows fetched host→device by the memory-IO engine.
pub const IO_ROWS_LOADED: &str = "io.rows_loaded";

/// Feature bytes copied host→device (PCIe traffic).
pub const IO_BYTES_H2D: &str = "io.bytes_h2d";

/// GPU feature-cache hits (rows served without a PCIe fetch).
pub const CACHE_HITS: &str = "cache.hits";

/// GPU feature-cache misses (rows that had to cross PCIe).
pub const CACHE_MISSES: &str = "cache.misses";

/// Dense-kernel floating-point operations (matmul).
pub const TENSOR_MATMUL_FLOPS: &str = "tensor.matmul_flops";

/// Rows gathered by feature-gather kernels.
pub const TENSOR_GATHER_ROWS: &str = "tensor.gather_rows";

/// Bytes moved by feature-gather kernels.
pub const TENSOR_GATHER_BYTES: &str = "tensor.gather_bytes";

// ---------------------------------------------------------------------
// Pipeline counters.
// ---------------------------------------------------------------------

/// Mini-batch windows retired by the pipelined executor.
pub const PIPELINE_WINDOWS: &str = "pipeline.windows";

/// Training iterations (mini-batches) completed.
pub const PIPELINE_ITERATIONS: &str = "pipeline.iterations";

/// Feature rows served from the Match-Reorder overlap window.
pub const PIPELINE_ROWS_REUSED: &str = "pipeline.rows_reused";

/// Feature rows served from the device-resident cache.
pub const PIPELINE_ROWS_CACHED: &str = "pipeline.rows_cached";

/// PCIe bytes avoided by Match-Reorder row reuse
/// (`rows_reused × row_bytes`).
pub const PIPELINE_BYTES_REUSE_SAVED: &str = "pipeline.bytes_reuse_saved";

/// PCIe bytes avoided by the device feature cache
/// (`rows_cached × row_bytes`).
pub const PIPELINE_BYTES_CACHE_SAVED: &str = "pipeline.bytes_cache_saved";

// ---------------------------------------------------------------------
// Simulated GPU memory-hierarchy counters (fastgl-gpusim).
// ---------------------------------------------------------------------

/// Floating-point operations executed by simulated kernels.
pub const GPUSIM_FLOPS: &str = "gpusim.flops";

/// Bytes served from simulated shared memory.
pub const GPUSIM_BYTES_SHARED: &str = "gpusim.bytes_shared";

/// Bytes served from the simulated L1 cache.
pub const GPUSIM_BYTES_L1: &str = "gpusim.bytes_l1";

/// Bytes served from the simulated L2 cache.
pub const GPUSIM_BYTES_L2: &str = "gpusim.bytes_l2";

/// Bytes served from simulated global memory (HBM/GDDR).
pub const GPUSIM_BYTES_GLOBAL: &str = "gpusim.bytes_global";

/// Simulated kernel launches.
pub const GPUSIM_KERNEL_LAUNCHES: &str = "gpusim.kernel_launches";

// ---------------------------------------------------------------------
// Resilience / fault-injection counters.
// ---------------------------------------------------------------------

/// Injected PCIe stalls ridden out by the memory-IO engine.
pub const FAULT_PCIE_STALLS: &str = "resilience.pcie_stalls";

/// Failed transfer attempts that were retried with simulated backoff.
pub const FAULT_TRANSFER_RETRIES: &str = "resilience.transfer_retries";

/// Simulated nanoseconds of fault-recovery overhead (stall time plus
/// retry backoff and wasted partial copies).
pub const FAULT_OVERHEAD_NS: &str = "resilience.fault_overhead_ns";

/// Feature-cache rows evicted under injected device-memory pressure.
pub const CACHE_EVICTED_ROWS: &str = "resilience.cache_evicted_rows";

/// Injected stage-worker panics recovered by replaying the window.
pub const WORKER_PANICS: &str = "resilience.worker_panics";

/// Pipeline stage restarts (each replays the in-flight window).
pub const STAGE_REPLAYS: &str = "pipeline.stage.replays";

/// Checkpoints written by `Checkpoint::save`.
pub const CHECKPOINT_SAVES: &str = "resilience.checkpoint_saves";

/// Checkpoints read back by `Checkpoint::load`.
pub const CHECKPOINT_LOADS: &str = "resilience.checkpoint_loads";

// ---------------------------------------------------------------------
// Wall-clock histograms.
// ---------------------------------------------------------------------

/// Nodes per training batch (input + neighbourhood).
pub const TRAINER_BATCH_NODES: &str = "trainer.batch_nodes";

/// Sample-stage wall time doing work, nanoseconds per epoch.
pub const PIPELINE_SAMPLE_BUSY_NS: &str = "pipeline.sample.busy_ns";

/// Sample-stage wall time blocked on downstream backpressure.
pub const PIPELINE_SAMPLE_STALL_OUT_NS: &str = "pipeline.sample.stall_out_ns";

/// Sample-stage wall time starved waiting for upstream input.
pub const PIPELINE_SAMPLE_STALL_IN_NS: &str = "pipeline.sample.stall_in_ns";

/// Prepare-stage wall time doing work, nanoseconds per epoch.
pub const PIPELINE_PREPARE_BUSY_NS: &str = "pipeline.prepare.busy_ns";

/// Prepare-stage wall time blocked on downstream backpressure.
pub const PIPELINE_PREPARE_STALL_OUT_NS: &str = "pipeline.prepare.stall_out_ns";

/// Prepare-stage wall time starved waiting for sampled windows.
pub const PIPELINE_PREPARE_STALL_IN_NS: &str = "pipeline.prepare.stall_in_ns";

/// Execute-stage wall time doing work, nanoseconds per epoch.
pub const PIPELINE_EXECUTE_BUSY_NS: &str = "pipeline.execute.busy_ns";

/// Execute-stage wall time blocked on downstream backpressure (always
/// zero today — execute is the terminal stage — but registered so the
/// taxonomy is uniform across stages).
pub const PIPELINE_EXECUTE_STALL_OUT_NS: &str = "pipeline.execute.stall_out_ns";

/// Execute-stage wall time starved waiting for prepared windows.
pub const PIPELINE_EXECUTE_STALL_IN_NS: &str = "pipeline.execute.stall_in_ns";

/// Every registered metric name: the authoritative list the
/// `registered_names` lint-test checks runtime emissions against.
pub fn all() -> &'static [&'static str] {
    &[
        SAMPLE_NODES,
        SAMPLE_EDGES,
        IO_ROWS_LOADED,
        IO_BYTES_H2D,
        CACHE_HITS,
        CACHE_MISSES,
        TENSOR_MATMUL_FLOPS,
        TENSOR_GATHER_ROWS,
        TENSOR_GATHER_BYTES,
        PIPELINE_WINDOWS,
        PIPELINE_ITERATIONS,
        PIPELINE_ROWS_REUSED,
        PIPELINE_ROWS_CACHED,
        PIPELINE_BYTES_REUSE_SAVED,
        PIPELINE_BYTES_CACHE_SAVED,
        GPUSIM_FLOPS,
        GPUSIM_BYTES_SHARED,
        GPUSIM_BYTES_L1,
        GPUSIM_BYTES_L2,
        GPUSIM_BYTES_GLOBAL,
        GPUSIM_KERNEL_LAUNCHES,
        FAULT_PCIE_STALLS,
        FAULT_TRANSFER_RETRIES,
        FAULT_OVERHEAD_NS,
        CACHE_EVICTED_ROWS,
        WORKER_PANICS,
        STAGE_REPLAYS,
        CHECKPOINT_SAVES,
        CHECKPOINT_LOADS,
        TRAINER_BATCH_NODES,
        PIPELINE_SAMPLE_BUSY_NS,
        PIPELINE_SAMPLE_STALL_OUT_NS,
        PIPELINE_SAMPLE_STALL_IN_NS,
        PIPELINE_PREPARE_BUSY_NS,
        PIPELINE_PREPARE_STALL_OUT_NS,
        PIPELINE_PREPARE_STALL_IN_NS,
        PIPELINE_EXECUTE_BUSY_NS,
        PIPELINE_EXECUTE_STALL_OUT_NS,
        PIPELINE_EXECUTE_STALL_IN_NS,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_no_duplicates() {
        let names = all();
        let mut sorted: Vec<&str> = names.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate name in registry");
    }

    #[test]
    fn names_follow_the_dotted_convention() {
        for name in all() {
            assert!(
                name.contains('.'),
                "{name}: names are namespaced as subsystem.metric"
            );
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "{name}: lowercase snake-case with dots only"
            );
        }
    }
}
