//! Metrics: monotonically-merged counters and log2-bucketed histograms.
//!
//! Like the event buffer, metrics are sharded by recording thread; a
//! snapshot merges the shards. Both merges — summing counters, adding
//! histogram buckets — are associative and commutative, so the totals do
//! not depend on which worker thread recorded which increment and are
//! identical at any `FASTGL_THREADS` setting.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::span::{shard_index, NUM_SHARDS};

/// Number of histogram buckets: bucket 0 holds zero values, bucket `i > 0`
/// holds values with `floor(log2(v)) == i - 1`, i.e. `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` observations (latencies in ns, bytes
/// moved, nodes per batch, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Per-bucket counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// The bucket a value falls into.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive-exclusive value range `[lo, hi)` of bucket `i` (bucket 0
    /// is the exact value zero, returned as `(0, 1)`).
    pub fn bucket_range(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 1)
        } else {
            (1u64 << (i - 1), (1u64 << (i - 1)).saturating_mul(2))
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Merges another histogram into this one (associative, commutative).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) of the recorded distribution.
    ///
    /// Returns the lower bound of the log2 bucket holding the
    /// `ceil(q * count)`-th smallest observation, clamped into
    /// `[min, max]`. The log2 buckets bound the estimate's error to one
    /// octave; the clamp makes single-bucket histograms exact. Returns 0
    /// when the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, _) = Self::bucket_range(i);
                return lo.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[derive(Default)]
struct MetricShard {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY: Mutex<Option<MetricShard>> = Mutex::new(None);
static SHARDS: [Mutex<Option<MetricShard>>; NUM_SHARDS] = [EMPTY; NUM_SHARDS];

fn with_shard(f: impl FnOnce(&mut MetricShard)) {
    let mut guard = SHARDS[shard_index()]
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(MetricShard::default));
}

/// Adds `delta` to the named monotonic counter. A no-op when telemetry is
/// disabled.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    with_shard(|s| *s.counters.entry(name).or_insert(0) += delta);
}

/// Records one observation into the named histogram. A no-op when
/// telemetry is disabled.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !crate::enabled() {
        return;
    }
    with_shard(|s| s.histograms.entry(name).or_default().record(value));
}

/// Merges every shard into `(counters, histograms)`.
pub(crate) fn collect() -> (
    BTreeMap<&'static str, u64>,
    BTreeMap<&'static str, Histogram>,
) {
    let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut histograms: BTreeMap<&'static str, Histogram> = BTreeMap::new();
    for shard in &SHARDS {
        let guard = shard.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(s) = guard.as_ref() {
            for (&k, &v) in &s.counters {
                *counters.entry(k).or_insert(0) += v;
            }
            for (&k, h) in &s.histograms {
                histograms.entry(k).or_default().merge(h);
            }
        }
    }
    (counters, histograms)
}

/// Clears every shard.
pub(crate) fn clear() {
    for shard in &SHARDS {
        *shard.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::with_telemetry;

    #[test]
    fn counters_merge_across_threads() {
        with_telemetry(|| {
            counter_add("total", 5);
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| counter_add("total", 10));
                }
            });
            let snap = crate::snapshot();
            assert_eq!(snap.counters["total"], 45);
        });
    }

    #[test]
    fn counter_merge_is_associative() {
        // Summing per-shard partials in any grouping gives the same total:
        // record the same increments under different thread partitions and
        // compare the merged result.
        let runs: Vec<u64> = (0..3)
            .map(|threads| {
                with_telemetry(|| {
                    let deltas: Vec<u64> = (1..=12).collect();
                    if threads == 0 {
                        for &d in &deltas {
                            counter_add("assoc", d);
                        }
                    } else {
                        let per = deltas.len() / (threads + 1);
                        std::thread::scope(|scope| {
                            for chunk in deltas.chunks(per.max(1)) {
                                scope.spawn(move || {
                                    for &d in chunk {
                                        counter_add("assoc", d);
                                    }
                                });
                            }
                        });
                    }
                    crate::snapshot().counters["assoc"]
                })
            })
            .collect();
        assert!(
            runs.iter().all(|&v| v == 78),
            "partition-invariant: {runs:?}"
        );
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_range(0), (0, 1));
        assert_eq!(Histogram::bucket_range(1), (1, 2));
        assert_eq!(Histogram::bucket_range(11), (1024, 2048));
        for v in [0u64, 1, 7, 1000, 1 << 40] {
            let (lo, hi) = Histogram::bucket_range(Histogram::bucket_of(v));
            assert!(lo <= v && (v < hi || v == 0), "{v} in [{lo},{hi})");
        }
    }

    #[test]
    fn histogram_records_and_merges() {
        with_telemetry(|| {
            for v in [0u64, 1, 5, 1000] {
                observe("lat", v);
            }
            std::thread::scope(|scope| {
                scope.spawn(|| observe("lat", 2000));
            });
            let snap = crate::snapshot();
            let h = &snap.histograms["lat"];
            assert_eq!(h.count, 5);
            assert_eq!(h.sum, 3006);
            assert_eq!(h.min, 0);
            assert_eq!(h.max, 2000);
            assert!((h.mean() - 601.2).abs() < 1e-9);
            assert_eq!(h.buckets[0], 1, "zero bucket");
            assert_eq!(h.buckets[1], 1, "value 1");
            assert_eq!(h.buckets[3], 1, "value 5");
            assert_eq!(h.buckets[10], 1, "value 1000");
            assert_eq!(h.buckets[11], 1, "value 2000");
        });
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        assert_eq!(Histogram::default().mean(), 0.0);
    }

    #[test]
    fn quantiles_on_a_known_distribution() {
        // 100 observations: 50 × 4, 40 × 64, 10 × 4096. Powers of two sit
        // exactly on their bucket's lower bound, so the estimates are exact.
        let mut h = Histogram::default();
        for _ in 0..50 {
            h.record(4);
        }
        for _ in 0..40 {
            h.record(64);
        }
        for _ in 0..10 {
            h.record(4096);
        }
        assert_eq!(h.quantile(0.50), 4, "rank 50 is the last 4");
        assert_eq!(h.quantile(0.51), 64, "rank 51 is the first 64");
        assert_eq!(h.quantile(0.90), 64, "rank 90 is the last 64");
        assert_eq!(h.quantile(0.95), 4096);
        assert_eq!(h.quantile(0.99), 4096);
        assert_eq!(h.quantile(0.0), 4, "rank clamps to the first value");
        assert_eq!(h.quantile(1.0), 4096);
    }

    #[test]
    fn quantile_clamps_into_observed_range() {
        // A single observation that is not a power of two: the bucket
        // lower bound (512) is below min, so the clamp recovers the exact
        // value.
        let mut h = Histogram::default();
        h.record(1000);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 1000);
        }
        // Monotonicity over a mixed distribution.
        let mut m = Histogram::default();
        for v in [0u64, 1, 5, 9, 17, 200, 3000, 70_000] {
            m.record(v);
        }
        let qs: Vec<u64> = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
            .iter()
            .map(|&q| m.quantile(q))
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "monotone: {qs:?}");
        assert!(qs.iter().all(|&v| v <= m.max));
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::default().quantile(0.5), 0);
    }
}
