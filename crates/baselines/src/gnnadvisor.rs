//! A GNNAdvisor-like system: 2D workload-managed computation behind a
//! per-iteration preprocessing pass.
//!
//! GNNAdvisor (OSDI'21) is a full-graph system: it preprocesses the graph
//! (neighbour grouping, renumbering) once, then runs a locality-optimised
//! kernel. Grafted onto sampling-based training — the comparison the paper
//! makes — the preprocessing must re-run for *every sampled subgraph*, so
//! its cost lands on the critical path of each iteration (up to 75 % of
//! the computation phase, paper Fig. 11).

use fastgl_core::hotness::CacheRankPolicy;
use fastgl_core::pipeline::{CachePolicy, Pipeline, PipelinePolicy};
use fastgl_core::{ComputeMode, EpochStats, FastGlConfig, IdMapKind, SampleDevice, TrainingSystem};
use fastgl_graph::DatasetBundle;

/// The GNNAdvisor-like baseline (DGL's sampler + Advisor's compute).
#[derive(Debug)]
pub struct GnnAdvisorSystem {
    inner: Pipeline,
}

impl GnnAdvisorSystem {
    /// Builds GNNAdvisor over the shared base configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(mut config: FastGlConfig) -> Self {
        config.sample_device = SampleDevice::Gpu;
        config.id_map = IdMapKind::Baseline;
        config.compute_mode = ComputeMode::Advisor;
        config.enable_match = false;
        config.enable_reorder = false;
        config.cache_ratio = Some(0.0);
        let policy = PipelinePolicy {
            use_match: false,
            use_reorder: false,
            cache: CachePolicy::None,
            sampler_gpus: 0,
            overlap_sample: false,
            cache_rank: CacheRankPolicy::Degree,
        };
        Self {
            inner: Pipeline::new("GNNAdvisor", config, policy),
        }
    }
}

impl TrainingSystem for GnnAdvisorSystem {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn run_epoch(&mut self, data: &DatasetBundle, epoch: u64) -> EpochStats {
        self.inner.run_epoch(data, epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgl_graph::Dataset;

    fn cfg() -> FastGlConfig {
        FastGlConfig::default()
            .with_batch_size(128)
            .with_fanouts(vec![5, 10])
    }

    #[test]
    fn preprocessing_slows_compute_below_dgl() {
        // Paper Fig. 11: GNNAdvisor's per-iteration preprocessing makes its
        // computation phase *slower* than DGL's in the sampling scenario.
        let data = Dataset::Products.generate_scaled(1.0 / 512.0, 10);
        let mut adv = GnnAdvisorSystem::new(cfg());
        let mut dgl = crate::DglSystem::new(cfg());
        let s_adv = adv.run_epoch(&data, 0);
        let s_dgl = dgl.run_epoch(&data, 0);
        assert!(
            s_adv.breakdown.compute > s_dgl.breakdown.compute,
            "advisor {} must exceed dgl {}",
            s_adv.breakdown.compute,
            s_dgl.breakdown.compute
        );
    }

    #[test]
    fn no_cache_no_reuse() {
        let data = Dataset::Reddit.generate_scaled(1.0 / 1024.0, 11);
        let mut adv = GnnAdvisorSystem::new(cfg());
        let s = adv.run_epoch(&data, 0);
        assert_eq!(s.rows_cached, 0);
        assert_eq!(s.rows_reused, 0);
    }
}
