//! A GNNLab-like system: factored design with dedicated sampling GPUs and
//! a pre-sampling-based static feature cache.
//!
//! GNNLab (EuroSys'22) splits the GPUs of a machine into samplers and
//! trainers, overlapping the two roles, and fills leftover trainer memory
//! with a hotness-ordered static cache. It needs at least 2 GPUs (paper
//! §6.2) and its cache loses effectiveness exactly when large subgraphs
//! leave no spare memory — the regime FastGL targets.

use fastgl_core::hotness::CacheRankPolicy;
use fastgl_core::pipeline::{CachePolicy, Pipeline, PipelinePolicy};
use fastgl_core::{ComputeMode, EpochStats, FastGlConfig, IdMapKind, SampleDevice, TrainingSystem};
use fastgl_graph::DatasetBundle;

/// The GNNLab-like baseline.
#[derive(Debug)]
pub struct GnnLabSystem {
    inner: Pipeline,
}

impl GnnLabSystem {
    /// Builds GNNLab over the shared base configuration. Following the
    /// paper's setup, one GPU samples when the machine has ≤ 4 GPUs and
    /// two sample when it has more.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or has fewer than 2 GPUs
    /// (GNNLab cannot run on 1 GPU, paper §6.4).
    pub fn new(mut config: FastGlConfig) -> Self {
        assert!(
            config.system.num_gpus >= 2,
            "GNNLab needs at least 2 GPUs (one sampler, one trainer)"
        );
        config.sample_device = SampleDevice::Gpu;
        config.id_map = IdMapKind::Baseline;
        config.compute_mode = ComputeMode::Naive;
        config.enable_match = false;
        config.enable_reorder = false;
        config.cache_ratio = None; // auto-size to leftover memory
        let sampler_gpus = if config.system.num_gpus <= 4 { 1 } else { 2 };
        let policy = PipelinePolicy {
            use_match: false,
            use_reorder: false,
            cache: CachePolicy::Auto,
            sampler_gpus,
            overlap_sample: true,
            cache_rank: CacheRankPolicy::PreSampledHotness,
        };
        Self {
            inner: Pipeline::new("GNNLab", config, policy),
        }
    }

    /// Builds GNNLab with an explicit cache ratio (the Fig. 10a sweep).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`GnnLabSystem::new`].
    pub fn with_cache_ratio(mut config: FastGlConfig, ratio: f64) -> Self {
        assert!(config.system.num_gpus >= 2, "GNNLab needs at least 2 GPUs");
        config.sample_device = SampleDevice::Gpu;
        config.id_map = IdMapKind::Baseline;
        config.compute_mode = ComputeMode::Naive;
        config.enable_match = false;
        config.enable_reorder = false;
        let policy = PipelinePolicy {
            use_match: false,
            use_reorder: false,
            cache: CachePolicy::Ratio(ratio),
            sampler_gpus: 1,
            overlap_sample: true,
            cache_rank: CacheRankPolicy::PreSampledHotness,
        };
        Self {
            inner: Pipeline::new("GNNLab", config, policy),
        }
    }
}

impl TrainingSystem for GnnLabSystem {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn run_epoch(&mut self, data: &DatasetBundle, epoch: u64) -> EpochStats {
        self.inner.run_epoch(data, epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgl_graph::Dataset;

    fn cfg() -> FastGlConfig {
        FastGlConfig::default()
            .with_batch_size(128)
            .with_fanouts(vec![5, 10])
    }

    #[test]
    #[should_panic(expected = "at least 2 GPUs")]
    fn rejects_single_gpu() {
        let _ = GnnLabSystem::new(cfg().with_gpus(1));
    }

    #[test]
    fn cache_reduces_io_versus_dgl() {
        let data = Dataset::Reddit.generate_scaled(1.0 / 256.0, 7);
        let mut lab = GnnLabSystem::new(cfg());
        let mut dgl = crate::DglSystem::new(cfg());
        let s_lab = lab.run_epoch(&data, 0);
        let s_dgl = dgl.run_epoch(&data, 0);
        assert!(s_lab.rows_cached > 0, "GNNLab cached nothing");
        assert!(
            s_lab.breakdown.io < s_dgl.breakdown.io,
            "cache must cut IO: {} vs {}",
            s_lab.breakdown.io,
            s_dgl.breakdown.io
        );
    }

    #[test]
    fn overlap_hides_part_of_the_sampling() {
        // GNNLab's dedicated sampler GPU overlaps sampling with training;
        // its visible sample time must be below the same pipeline run
        // without overlap (paper Fig. 14d: hiding works until the sampled
        // subgraph outgrows the training time).
        use fastgl_core::hotness::CacheRankPolicy;
        use fastgl_core::pipeline::{CachePolicy, Pipeline, PipelinePolicy};
        let data = Dataset::Reddit.generate_scaled(1.0 / 256.0, 8);
        let heavy = cfg().with_batch_size(256);
        let mut lab = GnnLabSystem::new(heavy.clone());
        let mut unhidden_cfg = heavy;
        unhidden_cfg.sample_device = fastgl_core::SampleDevice::Gpu;
        unhidden_cfg.id_map = fastgl_core::IdMapKind::Baseline;
        unhidden_cfg.compute_mode = fastgl_core::ComputeMode::Naive;
        let mut unhidden = Pipeline::new(
            "GNNLab-noorverlap",
            unhidden_cfg,
            PipelinePolicy {
                use_match: false,
                use_reorder: false,
                cache: CachePolicy::Auto,
                sampler_gpus: 1,
                overlap_sample: false,
                cache_rank: CacheRankPolicy::PreSampledHotness,
            },
        );
        let s_lab = lab.run_epoch(&data, 0);
        let s_plain = unhidden.run_epoch(&data, 0);
        assert!(
            s_lab.breakdown.sample < s_plain.breakdown.sample,
            "overlap must hide sampling: {} vs {}",
            s_lab.breakdown.sample,
            s_plain.breakdown.sample
        );
        assert!(s_lab.total() < s_plain.total());
    }

    #[test]
    fn explicit_ratio_controls_cache() {
        let data = Dataset::Products.generate_scaled(1.0 / 1024.0, 9);
        let mut zero = GnnLabSystem::with_cache_ratio(cfg(), 0.0);
        let mut half = GnnLabSystem::with_cache_ratio(cfg(), 0.5);
        let s0 = zero.run_epoch(&data, 0);
        let s5 = half.run_epoch(&data, 0);
        assert_eq!(s0.rows_cached, 0);
        assert!(s5.rows_cached > 0);
        assert!(s5.breakdown.io < s0.breakdown.io);
    }
}
