//! A DGL-like system: GPU sampling with the synchronization-heavy ID map,
//! prefetch IO, naive computation.
//!
//! DGL moves sampling to the GPU (a large win over PyG) but its ID map
//! still assigns local IDs through synchronized atomics (paper §3.3), its
//! memory IO transfers every sampled node's features each iteration, and
//! its aggregation kernels access memory naively. DGL is the baseline of
//! the paper's breakdown figures ('Naive') and ablations.

use fastgl_core::hotness::CacheRankPolicy;
use fastgl_core::pipeline::{CachePolicy, Pipeline, PipelinePolicy};
use fastgl_core::{ComputeMode, EpochStats, FastGlConfig, IdMapKind, SampleDevice, TrainingSystem};
use fastgl_graph::DatasetBundle;

/// The DGL-like baseline.
#[derive(Debug)]
pub struct DglSystem {
    inner: Pipeline,
}

impl DglSystem {
    /// Builds DGL over the shared base configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(mut config: FastGlConfig) -> Self {
        config.sample_device = SampleDevice::Gpu;
        config.id_map = IdMapKind::Baseline;
        config.compute_mode = ComputeMode::Naive;
        config.enable_match = false;
        config.enable_reorder = false;
        config.cache_ratio = Some(0.0);
        let policy = PipelinePolicy {
            use_match: false,
            use_reorder: false,
            cache: CachePolicy::None,
            sampler_gpus: 0,
            overlap_sample: false,
            cache_rank: CacheRankPolicy::Degree,
        };
        Self {
            inner: Pipeline::new("DGL", config, policy),
        }
    }
}

impl TrainingSystem for DglSystem {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn run_epoch(&mut self, data: &DatasetBundle, epoch: u64) -> EpochStats {
        self.inner.run_epoch(data, epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgl_graph::Dataset;

    #[test]
    fn memory_io_dominates_dgl_epochs() {
        // Paper §3.1: memory IO consumes up to 77% of a DGL epoch.
        let data = Dataset::Products.generate_scaled(1.0 / 512.0, 3);
        let cfg = FastGlConfig::default()
            .with_batch_size(256)
            .with_fanouts(vec![5, 10, 15]);
        let mut sys = DglSystem::new(cfg);
        let s = sys.run_epoch(&data, 0);
        let (_, io_frac, _) = s.breakdown.fractions();
        assert!(io_frac > 0.35, "DGL IO fraction only {io_frac:.2}");
    }

    #[test]
    fn dgl_much_faster_than_pyg_sampling() {
        // Needs enough per-batch work that fixed per-batch overheads do not
        // mask the device difference.
        let data = Dataset::Products.generate_scaled(1.0 / 256.0, 4);
        let cfg = FastGlConfig::default()
            .with_batch_size(512)
            .with_fanouts(vec![5, 10, 15]);
        let mut dgl = DglSystem::new(cfg.clone());
        let mut pyg = crate::PygSystem::new(cfg);
        let s_dgl = dgl.run_epoch(&data, 0);
        let s_pyg = pyg.run_epoch(&data, 0);
        let ratio = s_pyg.breakdown.sample.as_secs_f64() / s_dgl.breakdown.sample.as_secs_f64();
        // Paper Fig. 13: FastGL samples up to 80x faster than PyG; DGL's
        // GPU sampler gets most of that win.
        assert!(ratio > 5.0, "PyG/DGL sample ratio {ratio}");
    }
}
