//! A PyG-like system: CPU sampling, prefetch IO, naive computation.
//!
//! PyTorch Geometric samples on the CPU through Python-level data loaders;
//! the paper measures it spending up to 97 % of training time in the
//! sample phase (§1). Its memory IO uses plain prefetching and its
//! computation uses stock (naive) kernels.

use fastgl_core::hotness::CacheRankPolicy;
use fastgl_core::pipeline::{CachePolicy, Pipeline, PipelinePolicy};
use fastgl_core::{ComputeMode, EpochStats, FastGlConfig, IdMapKind, SampleDevice, TrainingSystem};
use fastgl_graph::DatasetBundle;

/// The PyG-like baseline.
#[derive(Debug)]
pub struct PygSystem {
    inner: Pipeline,
}

impl PygSystem {
    /// Builds PyG over the shared base configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(mut config: FastGlConfig) -> Self {
        config.sample_device = SampleDevice::Cpu;
        config.id_map = IdMapKind::Baseline;
        config.compute_mode = ComputeMode::Naive;
        config.enable_match = false;
        config.enable_reorder = false;
        config.cache_ratio = Some(0.0);
        let policy = PipelinePolicy {
            use_match: false,
            use_reorder: false,
            cache: CachePolicy::None,
            sampler_gpus: 0,
            overlap_sample: false,
            cache_rank: CacheRankPolicy::Degree,
        };
        Self {
            inner: Pipeline::new("PyG", config, policy),
        }
    }
}

impl TrainingSystem for PygSystem {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn run_epoch(&mut self, data: &DatasetBundle, epoch: u64) -> EpochStats {
        self.inner.run_epoch(data, epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgl_graph::Dataset;

    #[test]
    fn sampling_dominates_pyg_epochs() {
        // Paper §1: PyG spends up to 97% of training time sampling on CPU.
        let data = Dataset::Products.generate_scaled(1.0 / 512.0, 1);
        let cfg = FastGlConfig::default()
            .with_batch_size(256)
            .with_fanouts(vec![5, 10]);
        let mut sys = PygSystem::new(cfg);
        let s = sys.run_epoch(&data, 0);
        let (sample_frac, _, _) = s.breakdown.fractions();
        assert!(
            sample_frac > 0.5,
            "PyG sample fraction only {sample_frac:.2}"
        );
    }

    #[test]
    fn no_reuse_no_cache() {
        let data = Dataset::Reddit.generate_scaled(1.0 / 1024.0, 2);
        let cfg = FastGlConfig::default()
            .with_batch_size(64)
            .with_fanouts(vec![3, 3]);
        let mut sys = PygSystem::new(cfg);
        let s = sys.run_epoch(&data, 0);
        assert_eq!(s.rows_reused, 0);
        assert_eq!(s.rows_cached, 0);
        assert!(s.rows_loaded > 0);
    }
}
