//! A PaGraph-like system: computation-aware static feature caching.
//!
//! PaGraph (SoCC'20) pioneered treating spare GPU memory as a
//! software-managed feature cache filled with high-out-degree nodes. It
//! samples like DGL and computes naively; its benefit collapses on large
//! graphs where sampled subgraphs leave little memory for the cache (the
//! paper reports its hit rate dropping below 20 % on MAG, §3.1).

use fastgl_core::hotness::CacheRankPolicy;
use fastgl_core::pipeline::{CachePolicy, Pipeline, PipelinePolicy};
use fastgl_core::{ComputeMode, EpochStats, FastGlConfig, IdMapKind, SampleDevice, TrainingSystem};
use fastgl_graph::DatasetBundle;

/// The PaGraph-like baseline.
#[derive(Debug)]
pub struct PaGraphSystem {
    inner: Pipeline,
}

impl PaGraphSystem {
    /// Builds PaGraph over the shared base configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(mut config: FastGlConfig) -> Self {
        config.sample_device = SampleDevice::Gpu;
        config.id_map = IdMapKind::Baseline;
        config.compute_mode = ComputeMode::Naive;
        config.enable_match = false;
        config.enable_reorder = false;
        config.cache_ratio = None;
        let policy = PipelinePolicy {
            use_match: false,
            use_reorder: false,
            cache: CachePolicy::Auto,
            sampler_gpus: 0,
            overlap_sample: false,
            cache_rank: CacheRankPolicy::Degree,
        };
        Self {
            inner: Pipeline::new("PaGraph", config, policy),
        }
    }
}

impl TrainingSystem for PaGraphSystem {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn run_epoch(&mut self, data: &DatasetBundle, epoch: u64) -> EpochStats {
        self.inner.run_epoch(data, epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgl_graph::Dataset;

    #[test]
    fn cache_cuts_io_below_dgl() {
        let data = Dataset::Reddit.generate_scaled(1.0 / 256.0, 12);
        let cfg = FastGlConfig::default()
            .with_batch_size(128)
            .with_fanouts(vec![5, 10]);
        let mut pg = PaGraphSystem::new(cfg.clone());
        let mut dgl = crate::DglSystem::new(cfg);
        let s_pg = pg.run_epoch(&data, 0);
        let s_dgl = dgl.run_epoch(&data, 0);
        assert!(s_pg.rows_cached > 0);
        assert!(s_pg.breakdown.io < s_dgl.breakdown.io);
    }

    #[test]
    fn sampling_not_overlapped() {
        let data = Dataset::Products.generate_scaled(1.0 / 1024.0, 13);
        let cfg = FastGlConfig::default()
            .with_batch_size(64)
            .with_fanouts(vec![3, 5]);
        let mut pg = PaGraphSystem::new(cfg);
        let s = pg.run_epoch(&data, 0);
        assert!(s.breakdown.sample.as_nanos() > 0);
    }
}
