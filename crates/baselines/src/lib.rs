//! Baseline training systems, re-implemented as pipeline policies on the
//! FastGL substrate.
//!
//! The paper compares FastGL against PyG, DGL, GNNLab, GNNAdvisor, and
//! PaGraph (Table 5). Each baseline here configures the shared
//! [`fastgl_core::Pipeline`] with that system's published design choices:
//!
//! | System | Sample device | Sample opt. | Memory IO opt. | Compute opt. |
//! |---|---|---|---|---|
//! | PyG | CPU | none | prefetch | none |
//! | DGL | GPU | none | prefetch | none |
//! | GNNLab | GPU (dedicated) | parallel/overlap | static cache | none |
//! | GNNAdvisor | GPU (DGL sampler) | none | none | 2D workload mgmt |
//! | PaGraph | GPU (DGL sampler) | none | static cache | none |
//! | FastGL | GPU | Fused-Map | Match-Reorder (+cache) | Memory-Aware |
//!
//! Because all systems share the sampler, the graphs, and the simulated
//! GPU, measured differences are attributable to the pipeline policies —
//! the same property the paper gets from running on identical hardware.

#![warn(missing_docs)]

pub mod dgl;
pub mod gnnadvisor;
pub mod gnnlab;
pub mod pagraph;
pub mod pyg;

pub use dgl::DglSystem;
pub use gnnadvisor::GnnAdvisorSystem;
pub use gnnlab::GnnLabSystem;
pub use pagraph::PaGraphSystem;
pub use pyg::PygSystem;

use fastgl_core::{FastGl, FastGlConfig, TrainingSystem};

/// All systems the benchmarks compare, in the paper's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// PyTorch Geometric (CPU sampling).
    Pyg,
    /// Deep Graph Library (GPU sampling, baseline ID map).
    Dgl,
    /// GNNAdvisor grafted onto DGL's sampler.
    GnnAdvisor,
    /// GNNLab (factored sampling GPU + static cache).
    GnnLab,
    /// PaGraph (degree-ordered static cache).
    PaGraph,
    /// FastGL (this paper).
    FastGl,
}

impl SystemKind {
    /// The systems Fig. 9 plots (PyG is reported as a factor in the text).
    pub const FIGURE9: [SystemKind; 4] = [
        SystemKind::Dgl,
        SystemKind::GnnAdvisor,
        SystemKind::GnnLab,
        SystemKind::FastGl,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Pyg => "PyG",
            SystemKind::Dgl => "DGL",
            SystemKind::GnnAdvisor => "GNNAdvisor",
            SystemKind::GnnLab => "GNNLab",
            SystemKind::PaGraph => "PaGraph",
            SystemKind::FastGl => "FastGL",
        }
    }

    /// Builds the system over a base configuration (model, batch size,
    /// fanouts, GPU count are taken from `config`; each system then applies
    /// its own policy knobs).
    pub fn build(self, config: FastGlConfig) -> Box<dyn TrainingSystem> {
        match self {
            SystemKind::Pyg => Box::new(PygSystem::new(config)),
            SystemKind::Dgl => Box::new(DglSystem::new(config)),
            SystemKind::GnnAdvisor => Box::new(GnnAdvisorSystem::new(config)),
            SystemKind::GnnLab => Box::new(GnnLabSystem::new(config)),
            SystemKind::PaGraph => Box::new(PaGraphSystem::new(config)),
            SystemKind::FastGl => Box::new(FastGl::new(config)),
        }
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgl_graph::Dataset;

    #[test]
    fn every_system_runs_an_epoch() {
        let data = Dataset::Products.generate_scaled(1.0 / 2048.0, 5);
        let cfg = FastGlConfig::default()
            .with_batch_size(32)
            .with_fanouts(vec![3, 5]);
        for kind in [
            SystemKind::Pyg,
            SystemKind::Dgl,
            SystemKind::GnnAdvisor,
            SystemKind::GnnLab,
            SystemKind::PaGraph,
            SystemKind::FastGl,
        ] {
            let mut sys = kind.build(cfg.clone());
            let stats = sys.run_epoch(&data, 0);
            assert!(stats.iterations > 0, "{kind} ran no iterations");
            assert!(
                stats.total().as_nanos() > 0,
                "{kind} reported zero epoch time"
            );
        }
    }

    #[test]
    fn fastgl_is_fastest_dgl_beats_pyg() {
        let data = Dataset::Products.generate_scaled(1.0 / 512.0, 6);
        let cfg = FastGlConfig::default()
            .with_batch_size(256)
            .with_fanouts(vec![5, 10]);
        let time = |kind: SystemKind| {
            kind.build(cfg.clone())
                .run_epoch(&data, 0)
                .total()
                .as_secs_f64()
        };
        let pyg = time(SystemKind::Pyg);
        let dgl = time(SystemKind::Dgl);
        let fastgl = time(SystemKind::FastGl);
        assert!(pyg > dgl, "PyG {pyg} must be slower than DGL {dgl}");
        assert!(
            dgl > fastgl,
            "DGL {dgl} must be slower than FastGL {fastgl}"
        );
        // Paper: FastGL averages 2.2x over DGL and 11.8x over PyG.
        assert!(pyg / fastgl > 3.0, "PyG/FastGL = {}", pyg / fastgl);
    }
}
