//! Sampled-subgraph representation.
//!
//! A mini-batch's subgraph is a stack of *blocks* (DGL terminology), one
//! per GNN layer. Computation proceeds from the widest block (the sampled
//! L-hop frontier) towards the seeds: block `l`'s destination nodes are
//! exactly block `l + 1`'s source nodes, so each layer's output feeds the
//! next layer directly.
//!
//! All node references inside blocks are **local IDs** — indices into
//! [`SampledSubgraph::nodes`], the deduplicated list of global IDs produced
//! by the ID-map process. That list is also what the memory IO phase loads:
//! one feature row per entry.

use fastgl_graph::NodeId;
use std::sync::OnceLock;

/// One bipartite layer of a sampled subgraph.
///
/// Destination node `i` (a local index into [`Block::dst_locals`])
/// aggregates from `src_locals[src_offsets[i] .. src_offsets[i + 1]]`,
/// whose entries are local indices into the *subgraph's* node list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Local IDs (into the subgraph node list) of destination nodes.
    pub dst_locals: Vec<u64>,
    /// CSR offsets over destinations (`len = dst_locals.len() + 1`).
    pub src_offsets: Vec<u64>,
    /// Local IDs (into the subgraph node list) of sampled sources.
    pub src_locals: Vec<u64>,
}

impl Block {
    /// Number of destination nodes.
    pub fn num_dst(&self) -> usize {
        self.dst_locals.len()
    }

    /// Number of sampled edges in this block.
    pub fn num_edges(&self) -> u64 {
        self.src_locals.len() as u64
    }

    /// The sampled sources of destination `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sources_of(&self, i: usize) -> &[u64] {
        &self.src_locals[self.src_offsets[i] as usize..self.src_offsets[i + 1] as usize]
    }

    /// Validates internal invariants against a subgraph with `num_nodes`
    /// total nodes. Returns a description of the first violation.
    pub fn validate(&self, num_nodes: u64) -> Result<(), String> {
        if self.src_offsets.len() != self.dst_locals.len() + 1 {
            return Err(format!(
                "offsets length {} != dst count {} + 1",
                self.src_offsets.len(),
                self.dst_locals.len()
            ));
        }
        if self.src_offsets.first() != Some(&0) {
            return Err("offsets must start at 0".into());
        }
        if self.src_offsets.windows(2).any(|w| w[1] < w[0]) {
            return Err("offsets must be monotone".into());
        }
        if *self.src_offsets.last().expect("non-empty") != self.src_locals.len() as u64 {
            return Err("last offset must equal number of sources".into());
        }
        if let Some(&bad) = self
            .dst_locals
            .iter()
            .chain(&self.src_locals)
            .find(|&&x| x >= num_nodes)
        {
            return Err(format!("local id {bad} out of range ({num_nodes} nodes)"));
        }
        Ok(())
    }
}

/// A fully sampled, ID-mapped mini-batch subgraph.
#[derive(Debug, Clone)]
pub struct SampledSubgraph {
    /// Global IDs of every distinct node, indexed by local ID.
    pub nodes: Vec<NodeId>,
    /// Blocks ordered for computation: widest (input-side) first; the last
    /// block's destinations are the seeds.
    pub blocks: Vec<Block>,
    /// Local IDs of the seed (training) nodes.
    pub seed_locals: Vec<u64>,
    /// Memoized sorted node set (see [`SampledSubgraph::sorted_global_ids`]);
    /// computed at most once per subgraph instead of per consuming stage.
    sorted: OnceLock<Vec<NodeId>>,
}

impl PartialEq for SampledSubgraph {
    fn eq(&self, other: &Self) -> bool {
        // The memo is derived state; equality is over the sampled content.
        self.nodes == other.nodes
            && self.blocks == other.blocks
            && self.seed_locals == other.seed_locals
    }
}

impl Eq for SampledSubgraph {}

impl SampledSubgraph {
    /// Assembles a subgraph from its parts.
    pub fn new(nodes: Vec<NodeId>, blocks: Vec<Block>, seed_locals: Vec<u64>) -> Self {
        Self {
            nodes,
            blocks,
            seed_locals,
            sorted: OnceLock::new(),
        }
    }

    /// Number of distinct nodes (= feature rows the IO phase must provide).
    pub fn num_nodes(&self) -> u64 {
        self.nodes.len() as u64
    }

    /// Total sampled edges across blocks.
    pub fn num_edges(&self) -> u64 {
        self.blocks.iter().map(Block::num_edges).sum()
    }

    /// The subgraph's node set as a sorted slice of global IDs, the form
    /// the Match process consumes. Sorted once on first call and memoized,
    /// so the Reorder, Match, and cache stages all share one copy.
    pub fn sorted_global_ids(&self) -> &[NodeId] {
        self.sorted.get_or_init(|| {
            let mut ids = self.nodes.clone();
            ids.sort_unstable();
            ids
        })
    }

    /// Bytes of feature data this subgraph needs on the device.
    pub fn feature_bytes(&self, feature_dim: usize) -> u64 {
        self.num_nodes() * feature_dim as u64 * 4
    }

    /// Bytes of topology (blocks' CSR arrays plus the node list).
    pub fn topology_bytes(&self) -> u64 {
        let mut words = self.nodes.len() as u64 + self.seed_locals.len() as u64;
        for b in &self.blocks {
            words +=
                b.dst_locals.len() as u64 + b.src_offsets.len() as u64 + b.src_locals.len() as u64;
        }
        words * 8
    }

    /// Validates every block and the seed list. Returns the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_nodes();
        for (i, b) in self.blocks.iter().enumerate() {
            b.validate(n).map_err(|e| format!("block {i}: {e}"))?;
        }
        if let Some(&bad) = self.seed_locals.iter().find(|&&s| s >= n) {
            return Err(format!("seed local {bad} out of range"));
        }
        for w in self.blocks.windows(2) {
            if w[1].dst_locals.len() > w[0].dst_locals.len() {
                return Err("blocks must narrow towards the seeds".into());
            }
        }
        if let Some(last) = self.blocks.last() {
            if last.dst_locals != self.seed_locals {
                return Err("final block's destinations must be the seeds".into());
            }
        }
        Ok(())
    }
}

/// Builds the degenerate "subgraph" used for **full-graph inference**:
/// every layer's block covers all nodes with their complete neighbour
/// lists (plus self-loops). Running a trained model's forward pass over it
/// produces exact (non-sampled) predictions for every node — the standard
/// GraphSAGE-style inference step after sampled training.
///
/// The result satisfies [`SampledSubgraph::validate`]; its memory cost is
/// `O(num_layers · num_edges)`, so call it on graphs that fit, or batch.
pub fn full_graph_blocks(graph: &fastgl_graph::Csr, num_layers: usize) -> SampledSubgraph {
    let n = graph.num_nodes();
    let make_block = || {
        let mut src_offsets = Vec::with_capacity(n as usize + 1);
        let mut src_locals = Vec::with_capacity((graph.num_edges() + n) as usize);
        src_offsets.push(0u64);
        for u in graph.nodes() {
            src_locals.push(u.0); // self-loop
            src_locals.extend_from_slice(graph.neighbors(u));
            src_offsets.push(src_locals.len() as u64);
        }
        Block {
            dst_locals: (0..n).collect(),
            src_offsets,
            src_locals,
        }
    };
    SampledSubgraph::new(
        graph.nodes().collect(),
        (0..num_layers.max(1)).map(|_| make_block()).collect(),
        (0..n).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_layer() -> SampledSubgraph {
        // Nodes: global 10, 20, 30, 40; seeds: local 0 (global 10).
        // Block 0 (wide): dst {0, 1}, srcs {0:[2,3], 1:[3]}.
        // Block 1 (seed): dst {0}, srcs {0:[1]}.
        SampledSubgraph::new(
            vec![NodeId(10), NodeId(20), NodeId(30), NodeId(40)],
            vec![
                Block {
                    dst_locals: vec![0, 1],
                    src_offsets: vec![0, 2, 3],
                    src_locals: vec![2, 3, 3],
                },
                Block {
                    dst_locals: vec![0],
                    src_offsets: vec![0, 1],
                    src_locals: vec![1],
                },
            ],
            vec![0],
        )
    }

    #[test]
    fn counts() {
        let g = two_layer();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.blocks[0].num_dst(), 2);
        assert_eq!(g.blocks[0].sources_of(0), &[2, 3]);
    }

    #[test]
    fn valid_subgraph_validates() {
        assert_eq!(two_layer().validate(), Ok(()));
    }

    #[test]
    fn validation_catches_bad_offsets() {
        let mut g = two_layer();
        g.blocks[0].src_offsets = vec![0, 3, 2];
        assert!(g.validate().unwrap_err().contains("monotone"));
    }

    #[test]
    fn validation_catches_out_of_range_local() {
        let mut g = two_layer();
        g.blocks[0].src_locals[0] = 99;
        assert!(g.validate().unwrap_err().contains("out of range"));
    }

    #[test]
    fn validation_catches_seed_mismatch() {
        let mut g = two_layer();
        g.seed_locals = vec![1];
        assert!(g.validate().is_err());
    }

    #[test]
    fn validation_requires_narrowing() {
        let mut g = two_layer();
        g.blocks.reverse();
        assert!(g.validate().is_err());
    }

    #[test]
    fn sorted_ids_are_sorted() {
        let g = two_layer();
        let ids = g.sorted_global_ids();
        assert!(ids.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn full_graph_blocks_are_valid_and_complete() {
        use fastgl_graph::GraphBuilder;
        let g = GraphBuilder::new(5)
            .symmetric(true)
            .extend_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
            .build();
        let sg = full_graph_blocks(&g, 2);
        sg.validate().unwrap();
        assert_eq!(sg.num_nodes(), 5);
        assert_eq!(sg.blocks.len(), 2);
        // Node 1 aggregates from itself plus its two neighbours.
        assert_eq!(sg.blocks[0].sources_of(1), &[1, 0, 2]);
        // Every node is a seed.
        assert_eq!(sg.seed_locals.len(), 5);
    }

    #[test]
    fn byte_accounting() {
        let g = two_layer();
        assert_eq!(g.feature_bytes(100), 4 * 100 * 4);
        // words: nodes 4 + seeds 1 + block0 (2+3+3) + block1 (1+2+1) = 17
        assert_eq!(g.topology_bytes(), 17 * 8);
    }
}
