//! K-hop uniform neighbour sampling (the paper's default sampler).
//!
//! Following GraphSAGE/DGL, each hop `h` samples up to `fanouts[h]`
//! neighbours *without replacement* for every node of the current frontier;
//! the frontier then grows by the newly discovered nodes (the "neighbour
//! explosion"). The paper's models use three hops with fanouts
//! `[5, 10, 15]` (§6.1).
//!
//! The ID-map process runs once per hop over `[frontier ‖ sampled]`, which
//! keeps earlier nodes' local IDs stable (they are a prefix of the unique
//! list), exactly like DGL's `to_block`.

use crate::id_map::{IdMap, IdMapStats};
use crate::subgraph::{Block, SampledSubgraph};
use fastgl_graph::{Csr, DeterministicRng, NodeId};

/// Statistics of one sampling run (one mini-batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SampleStats {
    /// Neighbour draws performed (edges sampled, before self-loops).
    pub edges_sampled: u64,
    /// Self-loop edges added.
    pub self_loops: u64,
    /// Aggregated ID-map event counts across hops.
    pub id_map: IdMapStats,
}

/// Uniform k-hop neighbour sampler.
///
/// # Example
///
/// ```
/// use fastgl_graph::{DeterministicRng, GraphBuilder, NodeId};
/// use fastgl_sample::{FusedIdMap, NeighborSampler};
///
/// let graph = GraphBuilder::new(6)
///     .symmetric(true)
///     .extend_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
///     .build();
/// let sampler = NeighborSampler::new(vec![2, 2]);
/// let mut rng = DeterministicRng::seed(7);
/// let (subgraph, stats) =
///     sampler.sample(&graph, &[NodeId(0)], &FusedIdMap::new(), &mut rng);
/// subgraph.validate().unwrap();
/// assert_eq!(subgraph.blocks.len(), 2);
/// assert!(stats.edges_sampled > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborSampler {
    /// Per-hop fanouts, hop 1 (from the seeds) first. The paper's default
    /// is `[5, 10, 15]`.
    pub fanouts: Vec<usize>,
    /// Whether each destination also aggregates from itself (GCN-style
    /// self-loops). Default `true`.
    pub add_self_loops: bool,
}

impl NeighborSampler {
    /// A sampler with the given fanouts and self-loops enabled.
    ///
    /// # Panics
    ///
    /// Panics if `fanouts` is empty or contains a zero.
    pub fn new(fanouts: Vec<usize>) -> Self {
        assert!(!fanouts.is_empty(), "need at least one hop");
        assert!(fanouts.iter().all(|&f| f > 0), "fanouts must be positive");
        Self {
            fanouts,
            add_self_loops: true,
        }
    }

    /// The paper's default 3-hop `[5, 10, 15]` sampler.
    pub fn paper_default() -> Self {
        Self::new(vec![5, 10, 15])
    }

    /// Samples the L-hop subgraph of `seeds`.
    ///
    /// Deterministic in `(self, graph, seeds, rng state)`.
    ///
    /// # Panics
    ///
    /// Panics if any seed is out of range for `graph`.
    pub fn sample(
        &self,
        graph: &Csr,
        seeds: &[NodeId],
        id_map: &dyn IdMap,
        rng: &mut DeterministicRng,
    ) -> (SampledSubgraph, SampleStats) {
        let _span = fastgl_telemetry::span("sample.neighbor")
            .with_u64("seeds", seeds.len() as u64)
            .with_u64("hops", self.fanouts.len() as u64);
        let mut stats = SampleStats::default();
        // Current frontier as global IDs; local IDs of earlier entries stay
        // stable because every hop's unique list starts with this prefix.
        let mut frontier: Vec<u64> = seeds.iter().map(|n| n.0).collect();
        let mut hop_blocks: Vec<Block> = Vec::with_capacity(self.fanouts.len());

        for (hop, &fanout) in self.fanouts.iter().enumerate() {
            let num_dst = frontier.len();
            // Draw neighbours for every frontier node, in parallel. Each
            // frontier position gets its own RNG stream derived from one
            // draw of the batch RNG, so (a) the draws are independent of
            // how positions are split across threads, and (b) consecutive
            // mini-batches still see different streams because the parent
            // RNG advances once per hop.
            let hop_rng = DeterministicRng::seed(rng.next().wrapping_add(hop as u64));
            let per_node: Vec<(Vec<u64>, u64)> = fastgl_tensor::parallel::par_map_collect(
                &frontier,
                fastgl_tensor::parallel::SAMPLE_GRAIN_SEEDS,
                |f_idx, &g| {
                    let node = NodeId(g);
                    assert!(g < graph.num_nodes(), "seed/frontier node {g} out of range");
                    let neighbors = graph.neighbors(node);
                    let deg = neighbors.len();
                    let take = deg.min(fanout);
                    let sampled = if deg <= fanout {
                        neighbors.to_vec()
                    } else {
                        let mut node_rng = hop_rng.derive(f_idx as u64);
                        node_rng
                            .sample_distinct(deg as u64, take)
                            .into_iter()
                            .map(|idx| neighbors[idx as usize])
                            .collect()
                    };
                    (sampled, take as u64)
                },
            );
            let mut sampled_flat: Vec<u64> = Vec::with_capacity(num_dst * fanout);
            let mut counts: Vec<u64> = Vec::with_capacity(num_dst);
            for (sampled, take) in per_node {
                sampled_flat.extend_from_slice(&sampled);
                counts.push(take);
                stats.edges_sampled += take;
            }

            // ID map over [frontier ‖ sampled]: the unique list's prefix is
            // the frontier itself (it is already deduplicated).
            let mut stream = Vec::with_capacity(frontier.len() + sampled_flat.len());
            stream.extend_from_slice(&frontier);
            stream.extend_from_slice(&sampled_flat);
            let out = id_map.map(&stream);
            stats.id_map.merge(&out.stats);
            debug_assert_eq!(&out.unique[..num_dst], &frontier[..]);

            // Build this hop's block: dst i = frontier position i.
            let sampled_locals = &out.locals[num_dst..];
            let self_loop = self.add_self_loops;
            let mut src_offsets = Vec::with_capacity(num_dst + 1);
            let mut src_locals =
                Vec::with_capacity(sampled_flat.len() + if self_loop { num_dst } else { 0 });
            src_offsets.push(0u64);
            let mut cursor = 0usize;
            for (i, &count) in counts.iter().enumerate() {
                if self_loop {
                    src_locals.push(i as u64);
                    stats.self_loops += 1;
                }
                src_locals.extend_from_slice(&sampled_locals[cursor..cursor + count as usize]);
                cursor += count as usize;
                src_offsets.push(src_locals.len() as u64);
            }
            hop_blocks.push(Block {
                dst_locals: (0..num_dst as u64).collect(),
                src_offsets,
                src_locals,
            });
            frontier = out.unique;
        }

        // Computation runs widest block first: reverse hop order.
        hop_blocks.reverse();
        let subgraph = SampledSubgraph::new(
            frontier.into_iter().map(NodeId).collect(),
            hop_blocks,
            (0..seeds.len() as u64).collect(),
        );
        fastgl_telemetry::counter_add("sample.nodes_sampled", subgraph.nodes.len() as u64);
        fastgl_telemetry::counter_add("sample.edges_sampled", stats.edges_sampled);
        (subgraph, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id_map::fused::FusedIdMap;
    use fastgl_graph::generate::rmat::{self, RmatConfig};

    fn graph() -> Csr {
        rmat::generate(&RmatConfig::social(2_000, 16_000), 3)
    }

    fn sample_default(seeds: &[NodeId]) -> (SampledSubgraph, SampleStats) {
        let g = graph();
        let sampler = NeighborSampler::new(vec![3, 5]);
        let mut rng = DeterministicRng::seed(1);
        sampler.sample(&g, seeds, &FusedIdMap::new(), &mut rng)
    }

    fn seeds(n: u64) -> Vec<NodeId> {
        (0..n).map(|i| NodeId(i * 13 % 2_000)).collect()
    }

    #[test]
    fn produces_valid_subgraph() {
        let (sg, stats) = sample_default(&seeds(64));
        sg.validate().unwrap();
        assert!(stats.edges_sampled > 0);
        assert_eq!(sg.blocks.len(), 2);
    }

    #[test]
    fn seeds_are_local_prefix() {
        let s = seeds(32);
        let (sg, _) = sample_default(&s);
        for (i, &seed) in s.iter().enumerate() {
            assert_eq!(sg.nodes[i], seed);
        }
        assert_eq!(sg.seed_locals, (0..32).collect::<Vec<u64>>());
    }

    #[test]
    fn fanout_bounds_hold() {
        let (sg, _) = sample_default(&seeds(64));
        // Final (seed-side) block sampled fanout 3 + self-loop.
        let seed_block = sg.blocks.last().unwrap();
        for i in 0..seed_block.num_dst() {
            let deg = seed_block.sources_of(i).len();
            assert!(deg <= 4, "seed dst {i} has {deg} sources");
            assert!(deg >= 1, "self-loop guarantees at least one source");
        }
        // Wide block sampled fanout 5 + self-loop.
        let wide = &sg.blocks[0];
        for i in 0..wide.num_dst() {
            assert!(wide.sources_of(i).len() <= 6);
        }
    }

    #[test]
    fn self_loop_present_for_every_dst() {
        let (sg, stats) = sample_default(&seeds(16));
        for block in &sg.blocks {
            for (i, &dst) in block.dst_locals.iter().enumerate() {
                assert!(
                    block.sources_of(i).contains(&dst),
                    "dst {dst} lacks its self-loop"
                );
            }
        }
        assert!(stats.self_loops > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = graph();
        let sampler = NeighborSampler::paper_default();
        let mut r1 = DeterministicRng::seed(9);
        let mut r2 = DeterministicRng::seed(9);
        let (a, sa) = sampler.sample(&g, &seeds(32), &FusedIdMap::new(), &mut r1);
        let (b, sb) = sampler.sample(&g, &seeds(32), &FusedIdMap::new(), &mut r2);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn frontier_grows_across_hops() {
        let (sg, _) = sample_default(&seeds(64));
        // blocks[0] is the widest; its dst count equals the hop-1 frontier.
        assert!(sg.blocks[0].num_dst() >= sg.blocks[1].num_dst());
        assert!(sg.num_nodes() >= sg.blocks[0].num_dst() as u64);
    }

    #[test]
    fn neighbor_sampling_without_replacement() {
        let (sg, _) = sample_default(&seeds(128));
        for block in &sg.blocks {
            for i in 0..block.num_dst() {
                let srcs = block.sources_of(i);
                let mut sorted = srcs.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), srcs.len(), "duplicate sampled neighbour");
            }
        }
    }

    #[test]
    fn id_map_stats_accumulate_per_hop() {
        let (_, stats) = sample_default(&seeds(64));
        // Two hops with the fused map: 2 kernels each.
        assert_eq!(stats.id_map.kernel_launches, 4);
        assert!(stats.id_map.total_ids > stats.edges_sampled);
    }

    #[test]
    fn isolated_node_yields_only_self_loop() {
        let g = Csr::empty(10);
        let sampler = NeighborSampler::new(vec![5]);
        let mut rng = DeterministicRng::seed(2);
        let (sg, stats) = sampler.sample(&g, &[NodeId(3)], &FusedIdMap::new(), &mut rng);
        sg.validate().unwrap();
        assert_eq!(stats.edges_sampled, 0);
        assert_eq!(sg.blocks[0].sources_of(0), &[0]);
    }

    #[test]
    #[should_panic(expected = "fanouts must be positive")]
    fn zero_fanout_rejected() {
        let _ = NeighborSampler::new(vec![5, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_seed_panics() {
        let g = Csr::empty(5);
        let mut rng = DeterministicRng::seed(0);
        let _ =
            NeighborSampler::new(vec![2]).sample(&g, &[NodeId(99)], &FusedIdMap::new(), &mut rng);
    }
}
