//! Subgraph sampling for FastGL: mini-batching, k-hop neighbour and
//! random-walk samplers, the ID-map process (baseline and Fused-Map), and
//! inter-subgraph overlap measurement.
//!
//! The sample phase of sampling-based GNN training (paper Fig. 2) has two
//! steps: drawing the subgraph and renumbering its global node IDs to dense
//! local IDs (*ID map*). This crate implements both, with the ID map
//! available in two strategies whose event counts differ exactly the way
//! the paper describes:
//!
//! * [`id_map::baseline::BaselineIdMap`] — the DGL-style three-kernel map
//!   whose local-ID assignment serializes on thread synchronizations;
//! * [`id_map::fused::FusedIdMap`] — the paper's Algorithm 2, fusing table
//!   construction with local-ID assignment (no synchronization), including
//!   a genuinely concurrent lock-free execution used in tests.
//!
//! [`overlap`] quantifies the node overlap between sampled subgraphs
//! (*match degree*), the quantity Match-Reorder exploits.

#![warn(missing_docs)]

pub mod id_map;
pub mod layer_wise;
pub mod minibatch;
pub mod neighbor;
pub mod overlap;
pub mod random_walk;
pub mod subgraph;

pub use id_map::baseline::BaselineIdMap;
pub use id_map::fused::FusedIdMap;
pub use id_map::{IdMap, IdMapOutput, IdMapStats};
pub use layer_wise::LayerWiseSampler;
pub use minibatch::MinibatchPlan;
pub use neighbor::{NeighborSampler, SampleStats};
pub use random_walk::RandomWalkSampler;
pub use subgraph::{full_graph_blocks, Block, SampledSubgraph};
