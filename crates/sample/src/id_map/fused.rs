//! Fused-Map — the paper's Algorithm 2.
//!
//! The fused ID map builds the hash table *and* assigns local IDs in one
//! kernel: the thread whose `atomicCAS` first claims a slot for a global
//! ID immediately reserves that ID's local ID with an `atomicAdd` on a
//! shared counter; every other thread observing the same global ID does
//! nothing. No device-wide synchronization separates table construction
//! from local-ID assignment, which removes the serialization that
//! dominates the baseline.
//!
//! Two executions are provided:
//!
//! * [`FusedIdMap::map`] — a deterministic sequential replay producing the
//!   exact probe counts the simulator charges (insertion order is the input
//!   order, so local IDs follow first occurrence; conflicts cannot occur).
//! * [`FusedIdMap::map_parallel`] — the real lock-free algorithm over
//!   `AtomicU64` slots executed by true OS threads, demonstrating that the
//!   fused construction is correct under genuine concurrency. Local-ID
//!   *numbering* then depends on thread interleaving (as on a GPU), but the
//!   mapping is always a valid bijection and the unique ID *set* is
//!   identical to the sequential one.

use super::{fib_hash, table_capacity_with_factor, IdMap, IdMapOutput, IdMapStats};
use std::sync::atomic::{AtomicU64, Ordering};

const EMPTY: u64 = u64::MAX;

/// The Fused-Map strategy (paper Algorithm 2). See the module docs.
///
/// # Example
///
/// ```
/// use fastgl_sample::{FusedIdMap, IdMap};
///
/// let out = FusedIdMap::new().map(&[30, 10, 30, 20]);
/// assert_eq!(out.unique, vec![30, 10, 20]); // first-occurrence order
/// assert_eq!(out.locals, vec![0, 1, 0, 2]);
/// assert_eq!(out.stats.sync_serializations, 0); // the point of fusing
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FusedIdMap {
    /// Worker threads for [`FusedIdMap::map_parallel`].
    pub threads: usize,
    /// Hash-table headroom: capacity = next power of two ≥
    /// `capacity_factor × n`. DGL-style tables use 2.0 (load ≤ 0.5);
    /// lower values trade memory for probe chains.
    pub capacity_factor: f64,
}

impl FusedIdMap {
    /// A Fused-Map executing with four worker threads in parallel mode and
    /// the standard 2x table headroom.
    pub fn new() -> Self {
        Self {
            threads: 4,
            capacity_factor: 2.0,
        }
    }

    /// Same strategy with explicit table headroom (the load-factor
    /// ablation).
    ///
    /// # Panics
    ///
    /// Panics unless `factor > 1.0` (the table must fit all unique IDs
    /// with slack for termination of linear probing).
    pub fn with_capacity_factor(factor: f64) -> Self {
        assert!(factor > 1.0, "capacity factor must exceed 1.0");
        Self {
            threads: 4,
            capacity_factor: factor,
        }
    }

    /// The real lock-free execution over atomics with `self.threads` OS
    /// threads. Returns a valid mapping whose local numbering depends on
    /// scheduling; `stats.cas_conflicts` reports observed contention.
    pub fn map_parallel(&self, ids: &[u64]) -> IdMapOutput {
        let capacity = table_capacity_with_factor(ids.len(), self.capacity_factor);
        let bits = capacity.trailing_zeros();
        let mask = capacity - 1;
        let keys: Vec<AtomicU64> = (0..capacity).map(|_| AtomicU64::new(EMPTY)).collect();
        // value = local_id + 1; 0 means "not yet assigned".
        let values: Vec<AtomicU64> = (0..capacity).map(|_| AtomicU64::new(0)).collect();
        let local_counter = AtomicU64::new(0);
        let probes = AtomicU64::new(0);
        let conflicts = AtomicU64::new(0);

        let threads = self.threads.max(1).min(ids.len().max(1));
        let chunk = ids.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let keys = &keys;
                let values = &values;
                let local_counter = &local_counter;
                let probes = &probes;
                let conflicts = &conflicts;
                let slice =
                    &ids[(worker * chunk).min(ids.len())..((worker + 1) * chunk).min(ids.len())];
                scope.spawn(move || {
                    let mut my_probes = 0u64;
                    let mut my_conflicts = 0u64;
                    for &id in slice {
                        debug_assert_ne!(id, EMPTY, "EMPTY sentinel is reserved");
                        let mut slot = fib_hash(id, bits);
                        loop {
                            // Algorithm 2's atomicCAS(HashIndex, -1, GlobalID).
                            match keys[slot].compare_exchange(
                                EMPTY,
                                id,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            ) {
                                Ok(_) => {
                                    // Flag == False: this thread claimed the
                                    // slot; fuse the local-ID assignment.
                                    let local = local_counter.fetch_add(1, Ordering::Relaxed);
                                    values[slot].store(local + 1, Ordering::Release);
                                    break;
                                }
                                Err(existing) if existing == id => {
                                    // Flag == True: someone else owns this
                                    // global ID; nothing to do.
                                    break;
                                }
                                Err(_) => {
                                    // Occupied by a different ID: linear
                                    // probing (a lost CAS race is contention).
                                    my_conflicts += 1;
                                    slot = (slot + 1) & mask;
                                    my_probes += 1;
                                }
                            }
                        }
                    }
                    probes.fetch_add(my_probes, Ordering::Relaxed);
                    conflicts.fetch_add(my_conflicts, Ordering::Relaxed);
                });
            }
        });

        let unique_count = local_counter.load(Ordering::Acquire) as usize;
        let mut unique = vec![0u64; unique_count];
        for (k, v) in keys.iter().zip(&values) {
            let key = k.load(Ordering::Acquire);
            if key != EMPTY {
                let val = v.load(Ordering::Acquire);
                debug_assert!(val > 0, "claimed slot must have an assigned value");
                unique[(val - 1) as usize] = key;
            }
        }

        // Transform kernel: rewrite the stream through the finished table.
        let mut stats = IdMapStats {
            total_ids: ids.len() as u64,
            unique_ids: unique_count as u64,
            probes: probes.load(Ordering::Relaxed),
            cas_conflicts: conflicts.load(Ordering::Relaxed),
            kernel_launches: 2,
            device_syncs: 1,
            sync_serializations: 0,
            lookups: 0,
        };
        let locals = transform(ids, &keys, &values, bits, mask, &mut stats);
        IdMapOutput {
            unique,
            locals,
            stats,
        }
    }
}

impl Default for FusedIdMap {
    fn default() -> Self {
        Self::new()
    }
}

fn transform(
    ids: &[u64],
    keys: &[AtomicU64],
    values: &[AtomicU64],
    bits: u32,
    mask: usize,
    stats: &mut IdMapStats,
) -> Vec<u64> {
    let mut locals = Vec::with_capacity(ids.len());
    for &id in ids {
        let mut slot = fib_hash(id, bits);
        while keys[slot].load(Ordering::Relaxed) != id {
            slot = (slot + 1) & mask;
            stats.probes += 1;
        }
        locals.push(values[slot].load(Ordering::Relaxed) - 1);
        stats.lookups += 1;
    }
    locals
}

impl IdMap for FusedIdMap {
    /// Deterministic sequential replay of Algorithm 2: identical table,
    /// probe counts, and first-occurrence local numbering on every run.
    fn map(&self, ids: &[u64]) -> IdMapOutput {
        let capacity = table_capacity_with_factor(ids.len(), self.capacity_factor);
        let bits = capacity.trailing_zeros();
        let mask = capacity - 1;
        let mut keys = vec![EMPTY; capacity];
        let mut values = vec![0u64; capacity];
        let mut unique = Vec::new();
        let mut stats = IdMapStats {
            total_ids: ids.len() as u64,
            kernel_launches: 2,
            device_syncs: 1,
            ..Default::default()
        };
        for &id in ids {
            debug_assert_ne!(id, EMPTY, "EMPTY sentinel is reserved");
            let mut slot = fib_hash(id, bits);
            loop {
                if keys[slot] == EMPTY {
                    keys[slot] = id;
                    values[slot] = unique.len() as u64 + 1;
                    unique.push(id);
                    break;
                }
                if keys[slot] == id {
                    break;
                }
                slot = (slot + 1) & mask;
                stats.probes += 1;
            }
        }
        stats.unique_ids = unique.len() as u64;
        let mut locals = Vec::with_capacity(ids.len());
        for &id in ids {
            let mut slot = fib_hash(id, bits);
            while keys[slot] != id {
                slot = (slot + 1) & mask;
                stats.probes += 1;
            }
            locals.push(values[slot] - 1);
            stats.lookups += 1;
        }
        IdMapOutput {
            unique,
            locals,
            stats,
        }
    }

    fn name(&self) -> &'static str {
        "Fused-Map"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn sequential_maps_simple_stream() {
        let ids = [3u64, 7, 3, 9, 7, 3];
        let out = FusedIdMap::new().map(&ids);
        assert_eq!(out.unique, vec![3, 7, 9]);
        assert_eq!(out.locals, vec![0, 1, 0, 2, 1, 0]);
        out.verify(&ids).unwrap();
    }

    #[test]
    fn sequential_has_no_serializations() {
        let out = FusedIdMap::new().map(&[1, 2, 3, 1, 2, 3]);
        assert_eq!(out.stats.sync_serializations, 0);
        assert_eq!(out.stats.device_syncs, 1);
        assert_eq!(out.stats.kernel_launches, 2);
    }

    #[test]
    fn parallel_produces_valid_bijection() {
        let ids: Vec<u64> = (0..50_000).map(|i| (i * 2654435761) % 9973).collect();
        let out = FusedIdMap {
            threads: 8,
            ..FusedIdMap::new()
        }
        .map_parallel(&ids);
        out.verify(&ids).unwrap();
        assert_eq!(out.stats.unique_ids, 9973);
    }

    #[test]
    fn parallel_and_sequential_agree_on_unique_set() {
        let ids: Vec<u64> = (0..10_000).map(|i| (i * 31) % 1234).collect();
        let seq = FusedIdMap::new().map(&ids);
        let par = FusedIdMap {
            threads: 6,
            ..FusedIdMap::new()
        }
        .map_parallel(&ids);
        let a: HashSet<u64> = seq.unique.iter().copied().collect();
        let b: HashSet<u64> = par.unique.iter().copied().collect();
        assert_eq!(a, b);
        assert_eq!(seq.stats.unique_ids, par.stats.unique_ids);
    }

    #[test]
    fn sequential_is_deterministic() {
        let ids: Vec<u64> = (0..5_000).map(|i| (i * 17) % 700).collect();
        let a = FusedIdMap::new().map(&ids);
        let b = FusedIdMap::new().map(&ids);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let out = FusedIdMap::new().map(&[]);
        assert!(out.unique.is_empty());
        let out = FusedIdMap::new().map(&[42]);
        assert_eq!(out.unique, vec![42]);
        assert_eq!(out.locals, vec![0]);
        let out = FusedIdMap {
            threads: 3,
            ..FusedIdMap::new()
        }
        .map_parallel(&[42]);
        out.verify(&[42]).unwrap();
    }

    #[test]
    fn fused_probes_fewer_sync_events_than_baseline() {
        use crate::id_map::baseline::BaselineIdMap;
        let ids: Vec<u64> = (0..20_000).map(|i| (i * 97) % 5000).collect();
        let fused = FusedIdMap::new().map(&ids);
        let base = BaselineIdMap::new().map(&ids);
        // Identical semantic output...
        assert_eq!(fused.unique, base.unique);
        assert_eq!(fused.locals, base.locals);
        // ...but no serialized synchronizations and fewer barriers.
        assert_eq!(fused.stats.sync_serializations, 0);
        assert!(base.stats.sync_serializations > 0);
        assert!(fused.stats.device_syncs < base.stats.device_syncs);
    }

    #[test]
    fn tighter_tables_probe_more() {
        // Distinct keys sized just under a power of two, so the capacity
        // factor translates directly into table load (capacities round up
        // to powers of two; 60k ids: 1.05x -> 65536 slots at 92% load,
        // 4x -> 262144 slots at 23% load).
        let ids: Vec<u64> = (0..60_000u64).map(|i| i.wrapping_mul(2654435761)).collect();
        let roomy = FusedIdMap::with_capacity_factor(4.0).map(&ids);
        let tight = FusedIdMap::with_capacity_factor(1.05).map(&ids);
        assert_eq!(roomy.unique, tight.unique, "semantics are load-independent");
        assert!(
            tight.stats.probes > 2 * roomy.stats.probes.max(1),
            "tight {} vs roomy {}",
            tight.stats.probes,
            roomy.stats.probes
        );
    }

    #[test]
    #[should_panic(expected = "must exceed 1.0")]
    fn capacity_factor_at_or_below_one_rejected() {
        let _ = FusedIdMap::with_capacity_factor(1.0);
    }

    #[test]
    fn parallel_single_thread_matches_sequential_numbering() {
        let ids: Vec<u64> = (0..1000).map(|i| (i * 13) % 321).collect();
        let seq = FusedIdMap::new().map(&ids);
        let par = FusedIdMap {
            threads: 1,
            ..FusedIdMap::new()
        }
        .map_parallel(&ids);
        assert_eq!(seq.unique, par.unique);
        assert_eq!(seq.locals, par.locals);
    }
}
