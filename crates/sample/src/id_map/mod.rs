//! The ID-map process: converting global node IDs to consecutive local IDs.
//!
//! Every sampled mini-batch must renumber its global node IDs to a dense
//! `0..n` range before features can be gathered into a compact device
//! buffer (paper §2.2, Fig. 4). The paper identifies this step as up to
//! 70 % of the sample phase and contributes the **Fused-Map** algorithm
//! (its Algorithm 2) to remove the thread synchronizations that the
//! baseline (DGL-style) three-kernel approach requires.
//!
//! Two implementations live here:
//!
//! * [`BaselineIdMap`](baseline::BaselineIdMap) — build table, synchronize,
//!   assign local IDs, synchronize, transform (three kernels).
//! * [`FusedIdMap`](fused::FusedIdMap) — Algorithm 2: CAS-insert and local
//!   ID assignment fused in one kernel, then a transform kernel. A truly
//!   parallel variant with real atomics validates lock-freedom; a
//!   sequential replay provides deterministic event counts for the
//!   simulator.

pub mod baseline;
pub mod fused;

/// Event counts of one ID-map execution, consumed by the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IdMapStats {
    /// IDs processed (with duplicates).
    pub total_ids: u64,
    /// Distinct IDs discovered.
    pub unique_ids: u64,
    /// Linear-probe steps beyond the first slot.
    pub probes: u64,
    /// CAS operations that lost a race and retried (parallel execution).
    pub cas_conflicts: u64,
    /// Kernel launches.
    pub kernel_launches: u64,
    /// Device-wide synchronizations between kernels.
    pub device_syncs: u64,
    /// Per-unique-ID serialized synchronization events (the baseline's
    /// local-ID assignment; zero for Fused-Map).
    pub sync_serializations: u64,
    /// Hash lookups performed by the final transform kernel.
    pub lookups: u64,
}

impl IdMapStats {
    /// Accumulates another execution's counters into this one.
    pub fn merge(&mut self, other: &IdMapStats) {
        self.total_ids += other.total_ids;
        self.unique_ids += other.unique_ids;
        self.probes += other.probes;
        self.cas_conflicts += other.cas_conflicts;
        self.kernel_launches += other.kernel_launches;
        self.device_syncs += other.device_syncs;
        self.sync_serializations += other.sync_serializations;
        self.lookups += other.lookups;
    }
}

/// The output of an ID map over an ID stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdMapOutput {
    /// Distinct global IDs indexed by their assigned local ID.
    pub unique: Vec<u64>,
    /// The input stream rewritten as local IDs (same length and order).
    pub locals: Vec<u64>,
    /// Event counts for the cost model.
    pub stats: IdMapStats,
}

impl IdMapOutput {
    /// Checks that the mapping is a bijection consistent with the input:
    /// every input ID maps to the local whose `unique` entry is that ID.
    pub fn verify(&self, input: &[u64]) -> Result<(), String> {
        if self.locals.len() != input.len() {
            return Err("locals length differs from input".into());
        }
        let n = self.unique.len() as u64;
        for (&id, &local) in input.iter().zip(&self.locals) {
            if local >= n {
                return Err(format!("local {local} out of range {n}"));
            }
            if self.unique[local as usize] != id {
                return Err(format!(
                    "local {local} maps to {} but input was {id}",
                    self.unique[local as usize]
                ));
            }
        }
        let mut sorted = self.unique.clone();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err("unique list contains duplicates".into());
        }
        Ok(())
    }
}

/// A strategy converting a global-ID stream into local IDs.
pub trait IdMap {
    /// Renumbers `ids` (duplicates allowed) into dense local IDs.
    fn map(&self, ids: &[u64]) -> IdMapOutput;

    /// Short display name for tables.
    fn name(&self) -> &'static str;
}

/// Hash-table capacity for `n` IDs: the next power of two at or above
/// `2 n`, keeping the load factor at or below 0.5 like DGL's GPU table.
pub(crate) fn table_capacity(n: usize) -> usize {
    table_capacity_with_factor(n, 2.0)
}

/// Hash-table capacity for `n` IDs with an explicit headroom `factor`
/// (capacity = next power of two ≥ `factor · n`). Lower factors trade
/// memory for longer linear-probe chains — the trade the load-factor
/// ablation sweeps.
pub(crate) fn table_capacity_with_factor(n: usize, factor: f64) -> usize {
    (((n.max(1) as f64) * factor).ceil() as usize)
        .max(2)
        .next_power_of_two()
}

/// Fibonacci multiplicative hash into a table of `1 << bits` slots.
#[inline]
pub(crate) fn fib_hash(id: u64, bits: u32) -> usize {
    (id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - bits)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_power_of_two_and_roomy() {
        for n in [1usize, 2, 3, 100, 1000, 4096] {
            let c = table_capacity(n);
            assert!(c.is_power_of_two());
            assert!(c >= 2 * n);
            assert!(c < 8 * n.max(1));
        }
    }

    #[test]
    fn fib_hash_in_range() {
        for id in [0u64, 1, 42, u64::MAX, 0xdeadbeef] {
            let h = fib_hash(id, 10);
            assert!(h < 1024);
        }
    }

    #[test]
    fn verify_accepts_identity_mapping() {
        let out = IdMapOutput {
            unique: vec![7, 9],
            locals: vec![0, 1, 0],
            stats: IdMapStats::default(),
        };
        assert!(out.verify(&[7, 9, 7]).is_ok());
    }

    #[test]
    fn verify_rejects_wrong_mapping() {
        let out = IdMapOutput {
            unique: vec![7, 9],
            locals: vec![1, 1, 0],
            stats: IdMapStats::default(),
        };
        assert!(out.verify(&[7, 9, 7]).is_err());
    }

    #[test]
    fn verify_rejects_duplicate_unique() {
        let out = IdMapOutput {
            unique: vec![7, 7],
            locals: vec![0, 1],
            stats: IdMapStats::default(),
        };
        assert!(out.verify(&[7, 7]).is_err());
    }
}
