//! The baseline (DGL-style) three-kernel ID map.
//!
//! DGL renumbers global IDs on the GPU in three steps (paper Fig. 4):
//!
//! 1. build a hash table over the global IDs,
//! 2. assign a local ID to each *new* global ID — which requires
//!    synchronizing threads so the same global ID is never counted twice
//!    (the serialization the paper identifies as the sample-phase
//!    bottleneck), and
//! 3. transform the ID stream through the table.
//!
//! Steps are separate kernels, so two device-wide synchronizations separate
//! them, and every unique ID pays a serialized atomic in step 2. The event
//! counts recorded here feed the simulator's sample-phase cost model.

use super::{fib_hash, table_capacity, IdMap, IdMapOutput, IdMapStats};

const EMPTY: u64 = u64::MAX;

/// The DGL-style ID map. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineIdMap;

impl BaselineIdMap {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self
    }
}

impl IdMap for BaselineIdMap {
    fn map(&self, ids: &[u64]) -> IdMapOutput {
        let capacity = table_capacity(ids.len());
        let bits = capacity.trailing_zeros();
        let mut keys = vec![EMPTY; capacity];
        let mut values = vec![0u64; capacity];
        let mut stats = IdMapStats {
            total_ids: ids.len() as u64,
            kernel_launches: 3,
            device_syncs: 2,
            ..Default::default()
        };

        // Kernel 1: insert every ID into the table (duplicates collapse).
        for &id in ids {
            debug_assert_ne!(id, EMPTY, "EMPTY sentinel is reserved");
            let mut slot = fib_hash(id, bits);
            loop {
                if keys[slot] == EMPTY {
                    keys[slot] = id;
                    break;
                }
                if keys[slot] == id {
                    break;
                }
                slot = (slot + 1) & (capacity - 1);
                stats.probes += 1;
            }
        }

        // Kernel 2: assign local IDs in first-occurrence order. On the GPU
        // every *new* ID requires a serialized atomic increment; we count
        // one synchronization event per unique ID.
        let mut unique = Vec::new();
        let mut seen = vec![false; capacity];
        for &id in ids {
            let mut slot = fib_hash(id, bits);
            while keys[slot] != id {
                slot = (slot + 1) & (capacity - 1);
                stats.probes += 1;
            }
            if !seen[slot] {
                seen[slot] = true;
                values[slot] = unique.len() as u64;
                unique.push(id);
                stats.sync_serializations += 1;
            }
        }
        stats.unique_ids = unique.len() as u64;

        // Kernel 3: transform the stream.
        let mut locals = Vec::with_capacity(ids.len());
        for &id in ids {
            let mut slot = fib_hash(id, bits);
            while keys[slot] != id {
                slot = (slot + 1) & (capacity - 1);
                stats.probes += 1;
            }
            locals.push(values[slot]);
            stats.lookups += 1;
        }

        IdMapOutput {
            unique,
            locals,
            stats,
        }
    }

    fn name(&self) -> &'static str {
        "DGL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_simple_stream() {
        let out = BaselineIdMap::new().map(&[3, 7, 3, 9, 7, 3]);
        assert_eq!(out.unique, vec![3, 7, 9]);
        assert_eq!(out.locals, vec![0, 1, 0, 2, 1, 0]);
        out.verify(&[3, 7, 3, 9, 7, 3]).unwrap();
    }

    #[test]
    fn stats_reflect_structure() {
        let ids = [10u64, 20, 10, 30];
        let out = BaselineIdMap::new().map(&ids);
        let s = out.stats;
        assert_eq!(s.total_ids, 4);
        assert_eq!(s.unique_ids, 3);
        assert_eq!(s.sync_serializations, 3, "one serialization per unique");
        assert_eq!(s.lookups, 4);
        assert_eq!(s.kernel_launches, 3);
        assert_eq!(s.device_syncs, 2);
        assert_eq!(s.cas_conflicts, 0);
    }

    #[test]
    fn empty_input() {
        let out = BaselineIdMap::new().map(&[]);
        assert!(out.unique.is_empty());
        assert!(out.locals.is_empty());
        assert_eq!(out.stats.unique_ids, 0);
    }

    #[test]
    fn all_duplicates() {
        let out = BaselineIdMap::new().map(&[5; 100]);
        assert_eq!(out.unique, vec![5]);
        assert!(out.locals.iter().all(|&l| l == 0));
        assert_eq!(out.stats.sync_serializations, 1);
    }

    #[test]
    fn handles_colliding_hashes() {
        // Many IDs, deterministic verification of the probing path.
        let ids: Vec<u64> = (0..10_000).map(|i| (i * 7919) % 4096).collect();
        let out = BaselineIdMap::new().map(&ids);
        out.verify(&ids).unwrap();
        assert_eq!(out.stats.unique_ids, 4096);
    }

    #[test]
    fn first_occurrence_order_is_preserved() {
        let out = BaselineIdMap::new().map(&[100, 1, 50, 1, 100, 2]);
        assert_eq!(out.unique, vec![100, 1, 50, 2]);
    }
}
