//! PinSAGE-style random-walk sampling (paper Table 7).
//!
//! Instead of hop-wise fanouts, each seed launches short random walks and
//! its neighbourhood is the set of nodes the walks visit. The paper uses
//! walk length 3 as PinSAGE does when demonstrating that Match-Reorder
//! also accelerates non-fanout samplers.

use crate::id_map::{IdMap, IdMapStats};
use crate::neighbor::SampleStats;
use crate::subgraph::{Block, SampledSubgraph};
use fastgl_graph::{Csr, DeterministicRng, NodeId};

/// Random-walk neighbourhood sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomWalkSampler {
    /// Steps per walk (PinSAGE/paper: 3).
    pub walk_length: usize,
    /// Walks launched per seed.
    pub num_walks: usize,
}

impl RandomWalkSampler {
    /// The paper's configuration: length-3 walks, 8 per seed.
    pub fn paper_default() -> Self {
        Self {
            walk_length: 3,
            num_walks: 8,
        }
    }

    /// Samples one-block subgraphs: each seed aggregates from the distinct
    /// nodes its walks visited (plus itself).
    ///
    /// # Panics
    ///
    /// Panics if any seed is out of range, or if `walk_length` or
    /// `num_walks` is zero.
    pub fn sample(
        &self,
        graph: &Csr,
        seeds: &[NodeId],
        id_map: &dyn IdMap,
        rng: &mut DeterministicRng,
    ) -> (SampledSubgraph, SampleStats) {
        assert!(self.walk_length > 0, "walk length must be positive");
        assert!(self.num_walks > 0, "need at least one walk");
        let _span = fastgl_telemetry::span("sample.random_walk")
            .with_u64("seeds", seeds.len() as u64)
            .with_u64("walk_length", self.walk_length as u64)
            .with_u64("num_walks", self.num_walks as u64);
        let mut stats = SampleStats::default();

        let mut visited_flat: Vec<u64> = Vec::new();
        let mut counts: Vec<u64> = Vec::with_capacity(seeds.len());
        for &seed in seeds {
            assert!(seed.0 < graph.num_nodes(), "seed {seed} out of range");
            let mut visited: Vec<u64> = Vec::with_capacity(self.num_walks * self.walk_length);
            for _ in 0..self.num_walks {
                let mut cur = seed;
                for _ in 0..self.walk_length {
                    let neighbors = graph.neighbors(cur);
                    if neighbors.is_empty() {
                        break;
                    }
                    let next = neighbors[rng.below(neighbors.len() as u64) as usize];
                    stats.edges_sampled += 1;
                    visited.push(next);
                    cur = NodeId(next);
                }
            }
            visited.sort_unstable();
            visited.dedup();
            counts.push(visited.len() as u64);
            visited_flat.extend_from_slice(&visited);
        }

        // One ID map over [seeds ‖ visited]: seeds keep prefix locals.
        let mut stream: Vec<u64> = seeds.iter().map(|n| n.0).collect();
        let num_dst = stream.len();
        stream.extend_from_slice(&visited_flat);
        let out = id_map.map(&stream);
        stats.id_map = IdMapStats::default();
        stats.id_map.merge(&out.stats);

        let visited_locals = &out.locals[num_dst..];
        let mut src_offsets = Vec::with_capacity(num_dst + 1);
        let mut src_locals = Vec::with_capacity(visited_flat.len() + num_dst);
        src_offsets.push(0u64);
        let mut cursor = 0usize;
        for (i, &count) in counts.iter().enumerate() {
            // The seed itself always participates (self-loop).
            src_locals.push(i as u64);
            stats.self_loops += 1;
            for &local in &visited_locals[cursor..cursor + count as usize] {
                if local != i as u64 {
                    src_locals.push(local);
                }
            }
            cursor += count as usize;
            src_offsets.push(src_locals.len() as u64);
        }

        let subgraph = SampledSubgraph::new(
            out.unique.into_iter().map(NodeId).collect(),
            vec![Block {
                dst_locals: (0..num_dst as u64).collect(),
                src_offsets,
                src_locals,
            }],
            (0..num_dst as u64).collect(),
        );
        fastgl_telemetry::counter_add("sample.nodes_sampled", subgraph.nodes.len() as u64);
        fastgl_telemetry::counter_add("sample.edges_sampled", stats.edges_sampled);
        (subgraph, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id_map::fused::FusedIdMap;
    use fastgl_graph::generate::rmat::{self, RmatConfig};

    fn graph() -> Csr {
        rmat::generate(&RmatConfig::social(1_000, 8_000), 5)
    }

    fn seeds(n: u64) -> Vec<NodeId> {
        (0..n).map(|i| NodeId(i * 7 % 1_000)).collect()
    }

    #[test]
    fn produces_valid_single_block_subgraph() {
        let g = graph();
        let mut rng = DeterministicRng::seed(1);
        let (sg, stats) =
            RandomWalkSampler::paper_default().sample(&g, &seeds(32), &FusedIdMap::new(), &mut rng);
        sg.validate().unwrap();
        assert_eq!(sg.blocks.len(), 1);
        assert!(stats.edges_sampled > 0);
    }

    #[test]
    fn neighbourhood_size_bounded_by_walk_budget() {
        let g = graph();
        let sampler = RandomWalkSampler {
            walk_length: 3,
            num_walks: 4,
        };
        let mut rng = DeterministicRng::seed(2);
        let (sg, _) = sampler.sample(&g, &seeds(16), &FusedIdMap::new(), &mut rng);
        let block = &sg.blocks[0];
        for i in 0..block.num_dst() {
            // self + at most walks × length distinct visits
            assert!(block.sources_of(i).len() <= 1 + 12);
        }
    }

    #[test]
    fn deterministic() {
        let g = graph();
        let s = RandomWalkSampler::paper_default();
        let mut r1 = DeterministicRng::seed(3);
        let mut r2 = DeterministicRng::seed(3);
        let a = s.sample(&g, &seeds(8), &FusedIdMap::new(), &mut r1);
        let b = s.sample(&g, &seeds(8), &FusedIdMap::new(), &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn isolated_seed_gets_only_self() {
        let g = Csr::empty(4);
        let mut rng = DeterministicRng::seed(4);
        let (sg, stats) = RandomWalkSampler::paper_default().sample(
            &g,
            &[NodeId(2)],
            &FusedIdMap::new(),
            &mut rng,
        );
        sg.validate().unwrap();
        assert_eq!(sg.blocks[0].sources_of(0), &[0]);
        assert_eq!(stats.edges_sampled, 0);
    }

    #[test]
    fn no_duplicate_sources_per_seed() {
        let g = graph();
        let mut rng = DeterministicRng::seed(5);
        let (sg, _) =
            RandomWalkSampler::paper_default().sample(&g, &seeds(32), &FusedIdMap::new(), &mut rng);
        let block = &sg.blocks[0];
        for i in 0..block.num_dst() {
            let mut srcs = block.sources_of(i).to_vec();
            srcs.sort_unstable();
            srcs.dedup();
            assert_eq!(srcs.len(), block.sources_of(i).len());
        }
    }
}
