//! Mini-batch planning: shuffling training seeds and chunking them.

use fastgl_graph::{DeterministicRng, NodeId};

/// The mini-batches of one training epoch.
///
/// Seeds are shuffled deterministically per `(seed, epoch)` and chunked
/// into batches of `batch_size` (the final batch may be smaller).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinibatchPlan {
    batches: Vec<Vec<NodeId>>,
}

impl MinibatchPlan {
    /// Plans an epoch over `train_nodes`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(train_nodes: &[NodeId], batch_size: usize, seed: u64, epoch: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        let mut nodes = train_nodes.to_vec();
        let mut rng = DeterministicRng::seed(seed ^ 0xE90C_42A7).derive(epoch);
        rng.shuffle(&mut nodes);
        let batches = nodes.chunks(batch_size).map(<[NodeId]>::to_vec).collect();
        Self { batches }
    }

    /// Number of mini-batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Whether the epoch has no batches.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// The `i`-th batch's seed nodes.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn batch(&self, i: usize) -> &[NodeId] {
        &self.batches[i]
    }

    /// Iterator over batches.
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> {
        self.batches.iter().map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn nodes(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn covers_all_seeds_once() {
        let plan = MinibatchPlan::new(&nodes(100), 32, 1, 0);
        assert_eq!(plan.len(), 4);
        let all: HashSet<NodeId> = plan.iter().flatten().copied().collect();
        assert_eq!(all.len(), 100);
        assert_eq!(plan.batch(3).len(), 4, "last batch holds the remainder");
    }

    #[test]
    fn epochs_shuffle_differently() {
        let e0 = MinibatchPlan::new(&nodes(64), 16, 7, 0);
        let e1 = MinibatchPlan::new(&nodes(64), 16, 7, 1);
        assert_ne!(e0, e1);
    }

    #[test]
    fn same_epoch_reproduces() {
        let a = MinibatchPlan::new(&nodes(64), 16, 7, 3);
        let b = MinibatchPlan::new(&nodes(64), 16, 7, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_train_set() {
        let plan = MinibatchPlan::new(&[], 10, 0, 0);
        assert!(plan.is_empty());
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        let _ = MinibatchPlan::new(&nodes(10), 0, 0, 0);
    }
}
