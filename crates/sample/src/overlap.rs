//! Inter-subgraph node overlap — the *match degree* of paper §4.1.
//!
//! `M_ij = |V_i ∩ V_j| / min(|V_i|, |V_j|)` measures how many nodes two
//! sampled subgraphs share. The paper's Table 4 reports averages up to
//! 93 % on Reddit, which is the headroom the Match-Reorder strategy
//! converts into saved PCIe traffic.

use fastgl_graph::NodeId;

/// Size of the intersection of two **sorted** ID slices (merge scan).
///
/// Inputs must be sorted ascending and duplicate-free; use
/// [`crate::subgraph::SampledSubgraph::sorted_global_ids`] to obtain them.
pub fn intersection_size(a: &[NodeId], b: &[NodeId]) -> usize {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "a must be sorted unique");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "b must be sorted unique");
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// The match degree `M_ij` of two sorted node sets; zero when either is
/// empty.
///
/// # Example
///
/// ```
/// use fastgl_graph::NodeId;
/// use fastgl_sample::overlap::match_degree;
///
/// let a: Vec<NodeId> = [1, 2, 3, 4].map(NodeId).to_vec();
/// let b: Vec<NodeId> = [3, 4, 5].map(NodeId).to_vec();
/// assert!((match_degree(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
/// ```
pub fn match_degree(a: &[NodeId], b: &[NodeId]) -> f64 {
    let denom = a.len().min(b.len());
    if denom == 0 {
        return 0.0;
    }
    intersection_size(a, b) as f64 / denom as f64
}

/// Minimum intersection pairs per worker thread of
/// [`match_degree_matrix`]; each pair is an `O(|V_i| + |V_j|)` merge scan,
/// so a handful of pairs already amortises a thread spawn.
pub const MATCH_PAIR_GRAIN: usize = 4;

/// The symmetric match-degree matrix of a window of node sets, with a zero
/// diagonal (a subgraph is never matched against itself in Algorithm 1).
///
/// The `O(window²)` pairwise sorted-set intersections are independent, so
/// they run on the shared parallel backend; the matrix is filled from the
/// per-pair results in a fixed order, making the output bit-identical at
/// any `FASTGL_THREADS`.
pub fn match_degree_matrix<S: AsRef<[NodeId]> + Sync>(sets: &[S]) -> Vec<Vec<f64>> {
    let n = sets.len();
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .collect();
    let degrees =
        fastgl_tensor::parallel::par_map_collect(&pairs, MATCH_PAIR_GRAIN, |_, &(i, j)| {
            match_degree(sets[i].as_ref(), sets[j].as_ref())
        });
    let mut m = vec![vec![0.0; n]; n];
    for (&(i, j), d) in pairs.iter().zip(degrees) {
        m[i][j] = d;
        m[j][i] = d;
    }
    m
}

/// Summary of a match-degree matrix: the average off-diagonal degree and
/// the spread `ΔM = max − min` (paper Table 4's two rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchDegreeSummary {
    /// Mean of all off-diagonal `M_ij`.
    pub average: f64,
    /// `max(M_ij) − min(M_ij)` over off-diagonal entries.
    pub spread: f64,
}

/// Summarises a match-degree matrix; zero summary for fewer than 2 sets.
pub fn summarize_matrix(m: &[Vec<f64>]) -> MatchDegreeSummary {
    let n = m.len();
    if n < 2 {
        return MatchDegreeSummary {
            average: 0.0,
            spread: 0.0,
        };
    }
    let mut sum = 0.0;
    let mut count = 0usize;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for (i, row) in m.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if i != j {
                sum += v;
                count += 1;
                min = min.min(v);
                max = max.max(v);
            }
        }
    }
    MatchDegreeSummary {
        average: sum / count as f64,
        spread: max - min,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u64]) -> Vec<NodeId> {
        xs.iter().map(|&x| NodeId(x)).collect()
    }

    #[test]
    fn intersection_of_disjoint_is_zero() {
        assert_eq!(intersection_size(&ids(&[1, 2, 3]), &ids(&[4, 5])), 0);
        assert_eq!(match_degree(&ids(&[1, 2, 3]), &ids(&[4, 5])), 0.0);
    }

    #[test]
    fn intersection_of_identical_is_full() {
        let a = ids(&[1, 5, 9]);
        assert_eq!(intersection_size(&a, &a), 3);
        assert_eq!(match_degree(&a, &a), 1.0);
    }

    #[test]
    fn partial_overlap() {
        let a = ids(&[1, 2, 3, 4]);
        let b = ids(&[3, 4, 5]);
        assert_eq!(intersection_size(&a, &b), 2);
        assert!((match_degree(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sets() {
        assert_eq!(match_degree(&[], &ids(&[1])), 0.0);
        assert_eq!(match_degree(&[], &[]), 0.0);
    }

    #[test]
    fn degree_is_symmetric_and_bounded() {
        let a = ids(&[2, 4, 6, 8, 10]);
        let b = ids(&[1, 2, 3, 4]);
        let d1 = match_degree(&a, &b);
        let d2 = match_degree(&b, &a);
        assert_eq!(d1, d2);
        assert!((0.0..=1.0).contains(&d1));
    }

    #[test]
    fn matrix_is_symmetric_zero_diagonal() {
        let sets = vec![ids(&[1, 2, 3]), ids(&[2, 3, 4]), ids(&[9, 10])];
        let m = match_degree_matrix(&sets);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, m[j][i]);
            }
        }
        assert!((m[0][1] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m[0][2], 0.0);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let sets = vec![ids(&[1, 2]), ids(&[2, 3]), ids(&[1, 2])];
        let m = match_degree_matrix(&sets);
        let s = summarize_matrix(&m);
        // Pairs: (0,1)=0.5, (0,2)=1.0, (1,2)=0.5 -> avg 2/3, spread 0.5.
        assert!((s.average - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.spread - 0.5).abs() < 1e-12);
    }

    #[test]
    fn matrix_is_thread_count_invariant() {
        // 16 sets -> 120 pairs, enough to cross MATCH_PAIR_GRAIN.
        let sets: Vec<Vec<NodeId>> = (0..16u64)
            .map(|i| (0..200).map(|k| NodeId(i * 7 + k * 3)).collect())
            .collect();
        fastgl_tensor::parallel::set_num_threads(1);
        let serial = match_degree_matrix(&sets);
        for threads in [2usize, 8] {
            fastgl_tensor::parallel::set_num_threads(threads);
            assert_eq!(match_degree_matrix(&sets), serial, "{threads} threads");
        }
        fastgl_tensor::parallel::set_num_threads(0);
        // Slices work as inputs too (the memoized subgraph form).
        let views: Vec<&[NodeId]> = sets.iter().map(Vec::as_slice).collect();
        assert_eq!(match_degree_matrix(&views), serial);
    }

    #[test]
    fn summary_of_trivial_windows() {
        assert_eq!(summarize_matrix(&[]).average, 0.0);
        let one = match_degree_matrix(&[ids(&[1])]);
        assert_eq!(summarize_matrix(&one).spread, 0.0);
    }
}
