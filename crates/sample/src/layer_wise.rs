//! Layer-wise importance sampling (the FastGCN/LADIES family).
//!
//! Instead of sampling a fanout per node (which multiplies into the
//! neighbour explosion), layer-wise samplers draw a *fixed budget of nodes
//! per layer*, weighted by how strongly each candidate connects to the
//! current frontier, then keep the existing edges between frontier and the
//! drawn layer. The paper's §7 argues FastGL's techniques apply to diverse
//! sampling algorithms because all of them end with the same ID-map step —
//! this sampler exercises that claim.

use crate::id_map::IdMap;
use crate::neighbor::SampleStats;
use crate::subgraph::{Block, SampledSubgraph};
use fastgl_graph::{Csr, DeterministicRng, NodeId};
use std::collections::HashMap;

/// LADIES-style layer-wise sampler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerWiseSampler {
    /// Node budget per layer, hop 1 (next to the seeds) first.
    pub layer_budgets: Vec<usize>,
}

impl LayerWiseSampler {
    /// A sampler with the given per-layer budgets.
    ///
    /// # Panics
    ///
    /// Panics if `layer_budgets` is empty or contains a zero.
    pub fn new(layer_budgets: Vec<usize>) -> Self {
        assert!(!layer_budgets.is_empty(), "need at least one layer");
        assert!(
            layer_budgets.iter().all(|&b| b > 0),
            "layer budgets must be positive"
        );
        Self { layer_budgets }
    }

    /// Samples an L-layer subgraph with per-layer node budgets.
    ///
    /// Candidates for each layer are the current frontier's neighbours,
    /// weighted by their connection count to the frontier (the degree-based
    /// importance LADIES uses); `budget` distinct candidates are drawn by
    /// weighted sampling without replacement.
    ///
    /// # Panics
    ///
    /// Panics if any seed is out of range for `graph`.
    pub fn sample(
        &self,
        graph: &Csr,
        seeds: &[NodeId],
        id_map: &dyn IdMap,
        rng: &mut DeterministicRng,
    ) -> (SampledSubgraph, SampleStats) {
        let _span = fastgl_telemetry::span("sample.layer_wise")
            .with_u64("seeds", seeds.len() as u64)
            .with_u64("layers", self.layer_budgets.len() as u64);
        let mut stats = SampleStats::default();
        let mut frontier: Vec<u64> = seeds.iter().map(|n| n.0).collect();
        let mut hop_blocks: Vec<Block> = Vec::with_capacity(self.layer_budgets.len());

        for &budget in &self.layer_budgets {
            let num_dst = frontier.len();
            // Importance weights: connections into the frontier.
            let mut weight: HashMap<u64, u32> = HashMap::new();
            for &g in &frontier {
                assert!(g < graph.num_nodes(), "frontier node {g} out of range");
                for &v in graph.neighbors(NodeId(g)) {
                    *weight.entry(v).or_insert(0) += 1;
                }
            }
            // Weighted sampling without replacement (exponential-key top-k).
            // Every candidate's key comes from an RNG stream derived from
            // its own node ID (off one draw of the batch RNG), so the keys
            // do not depend on candidate order or on how the keying is
            // split across threads — HashMap iteration order and thread
            // count are both irrelevant to the draw.
            let layer_rng = DeterministicRng::seed(rng.next());
            let mut candidates: Vec<(u64, u32)> = weight.iter().map(|(&v, &w)| (v, w)).collect();
            candidates.sort_unstable();
            let mut keyed: Vec<(f64, u64)> = fastgl_tensor::parallel::par_map_collect(
                &candidates,
                fastgl_tensor::parallel::SAMPLE_GRAIN_SEEDS,
                |_, &(v, w)| {
                    let u = layer_rng.derive(v).unit_f64().max(1e-300);
                    (-u.ln() / w as f64, v)
                },
            );
            keyed.sort_by(|a, b| a.partial_cmp(b).expect("keys are finite"));
            // Deterministic order within the draw: sort selected IDs.
            let mut layer: Vec<u64> = keyed.iter().take(budget).map(|&(_, v)| v).collect();
            layer.sort_unstable();
            let selected: HashMap<u64, ()> = layer.iter().map(|&v| (v, ())).collect();

            // Keep the frontier→layer edges that exist in the graph. Each
            // frontier node's scan is independent, so the filter runs in
            // parallel and the per-node results concatenate in frontier
            // order (identical to the serial scan).
            let per_node: Vec<(Vec<u64>, u64)> = fastgl_tensor::parallel::par_map_collect(
                &frontier,
                fastgl_tensor::parallel::SAMPLE_GRAIN_SEEDS,
                |_, &g| {
                    let mut kept: Vec<u64> = graph
                        .neighbors(NodeId(g))
                        .iter()
                        .copied()
                        .filter(|v| selected.contains_key(v))
                        .collect();
                    let raw = kept.len() as u64;
                    kept.sort_unstable();
                    kept.dedup();
                    (kept, raw)
                },
            );
            let mut kept_flat: Vec<u64> = Vec::new();
            let mut counts: Vec<u64> = Vec::with_capacity(num_dst);
            for (kept, raw) in per_node {
                stats.edges_sampled += raw;
                counts.push(kept.len() as u64);
                kept_flat.extend(kept);
            }

            // ID map over [frontier ‖ kept]: prefix-stable locals.
            let mut stream = Vec::with_capacity(frontier.len() + kept_flat.len());
            stream.extend_from_slice(&frontier);
            stream.extend_from_slice(&kept_flat);
            let out = id_map.map(&stream);
            stats.id_map.merge(&out.stats);
            let kept_locals = &out.locals[num_dst..];

            let mut src_offsets = Vec::with_capacity(num_dst + 1);
            let mut src_locals = Vec::with_capacity(kept_flat.len() + num_dst);
            src_offsets.push(0u64);
            let mut cursor = 0usize;
            for (i, &count) in counts.iter().enumerate() {
                // Self-loop keeps isolated-from-layer destinations sound.
                src_locals.push(i as u64);
                stats.self_loops += 1;
                for &local in &kept_locals[cursor..cursor + count as usize] {
                    if local != i as u64 {
                        src_locals.push(local);
                    }
                }
                cursor += count as usize;
                src_offsets.push(src_locals.len() as u64);
            }
            hop_blocks.push(Block {
                dst_locals: (0..num_dst as u64).collect(),
                src_offsets,
                src_locals,
            });
            frontier = out.unique;
        }

        hop_blocks.reverse();
        let subgraph = SampledSubgraph::new(
            frontier.into_iter().map(NodeId).collect(),
            hop_blocks,
            (0..seeds.len() as u64).collect(),
        );
        fastgl_telemetry::counter_add("sample.nodes_sampled", subgraph.nodes.len() as u64);
        fastgl_telemetry::counter_add("sample.edges_sampled", stats.edges_sampled);
        (subgraph, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id_map::fused::FusedIdMap;
    use fastgl_graph::generate::rmat::{self, RmatConfig};

    fn graph() -> Csr {
        rmat::generate(&RmatConfig::social(2_000, 20_000), 8)
    }

    fn seeds(n: u64) -> Vec<NodeId> {
        (0..n).map(|i| NodeId(i * 31 % 2_000)).collect()
    }

    #[test]
    fn produces_valid_subgraph() {
        let g = graph();
        let mut rng = DeterministicRng::seed(1);
        let (sg, stats) = LayerWiseSampler::new(vec![64, 128]).sample(
            &g,
            &seeds(32),
            &FusedIdMap::new(),
            &mut rng,
        );
        sg.validate().unwrap();
        assert_eq!(sg.blocks.len(), 2);
        assert!(stats.edges_sampled > 0);
    }

    #[test]
    fn layer_budget_bounds_growth() {
        // The defining property vs fanout sampling: each hop adds at most
        // `budget` new nodes, taming the neighbour explosion.
        let g = graph();
        let mut rng = DeterministicRng::seed(2);
        let (sg, _) = LayerWiseSampler::new(vec![50, 100]).sample(
            &g,
            &seeds(32),
            &FusedIdMap::new(),
            &mut rng,
        );
        assert!(
            sg.num_nodes() <= 32 + 50 + 100,
            "nodes {} exceed seed+budget bound",
            sg.num_nodes()
        );
    }

    #[test]
    fn kept_edges_exist_in_graph() {
        let g = graph();
        let mut rng = DeterministicRng::seed(3);
        let (sg, _) =
            LayerWiseSampler::new(vec![80]).sample(&g, &seeds(16), &FusedIdMap::new(), &mut rng);
        let block = &sg.blocks[0];
        for (i, &dst) in block.dst_locals.iter().enumerate() {
            let dst_global = sg.nodes[dst as usize];
            for &src in block.sources_of(i) {
                if src == dst {
                    continue;
                }
                let src_global = sg.nodes[src as usize];
                assert!(g.neighbors(dst_global).contains(&src_global.0));
            }
        }
    }

    #[test]
    fn deterministic() {
        let g = graph();
        let sampler = LayerWiseSampler::new(vec![64, 64]);
        let mut r1 = DeterministicRng::seed(4);
        let mut r2 = DeterministicRng::seed(4);
        let a = sampler.sample(&g, &seeds(16), &FusedIdMap::new(), &mut r1);
        let b = sampler.sample(&g, &seeds(16), &FusedIdMap::new(), &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn small_candidate_pool_takes_everything() {
        // Star graph: the frontier's neighbourhood is tiny.
        let g = fastgl_graph::GraphBuilder::new(5)
            .symmetric(true)
            .add_edge(0, 1)
            .add_edge(0, 2)
            .build();
        let mut rng = DeterministicRng::seed(5);
        let (sg, _) =
            LayerWiseSampler::new(vec![100]).sample(&g, &[NodeId(0)], &FusedIdMap::new(), &mut rng);
        sg.validate().unwrap();
        // Self + both neighbours.
        assert_eq!(sg.blocks[0].sources_of(0).len(), 3);
    }

    #[test]
    fn high_degree_nodes_selected_more_often() {
        // A hub connected to every frontier node must practically always
        // be drawn under importance weighting.
        let mut builder = fastgl_graph::GraphBuilder::new(200).symmetric(true);
        for i in 1..100 {
            builder.push_edge(0, i); // node 0 is the hub
            builder.push_edge(i, 100 + i); // each frontier node has one leaf
        }
        let g = builder.build();
        let sampler = LayerWiseSampler::new(vec![5]);
        let seeds: Vec<NodeId> = (1..50).map(NodeId).collect();
        let mut hub_drawn = 0;
        for s in 0..20 {
            let mut rng = DeterministicRng::seed(s);
            let (sg, _) = sampler.sample(&g, &seeds, &FusedIdMap::new(), &mut rng);
            if sg.nodes.contains(&NodeId(0)) {
                hub_drawn += 1;
            }
        }
        assert!(hub_drawn >= 19, "hub drawn only {hub_drawn}/20 times");
    }

    #[test]
    #[should_panic(expected = "budgets must be positive")]
    fn zero_budget_rejected() {
        let _ = LayerWiseSampler::new(vec![10, 0]);
    }
}
