//! Graph statistics: degree distributions and shape fidelity checks.
//!
//! The experiments rest on the synthetic stand-ins *matching the published
//! shape* of the paper's graphs (Table 6). This module computes the
//! statistics that claim is judged by: degree moments, histogram, skew
//! (power-law tail weight), and a Gini coefficient of the degree
//! distribution.

use crate::csr::{Csr, NodeId};

/// Summary statistics of a graph's out-degree distribution.
///
/// # Example
///
/// ```
/// use fastgl_graph::{DegreeStats, GraphBuilder};
///
/// // A star: one hub owns every edge.
/// let mut b = GraphBuilder::new(10);
/// for i in 1..10 {
///     b.push_edge(0, i);
/// }
/// let stats = DegreeStats::compute(&b.build());
/// assert_eq!(stats.max, 9);
/// assert!(stats.gini > 0.8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Number of nodes.
    pub num_nodes: u64,
    /// Number of directed edges.
    pub num_edges: u64,
    /// Mean out-degree.
    pub mean: f64,
    /// Median out-degree.
    pub median: u64,
    /// Maximum out-degree.
    pub max: u64,
    /// Fraction of nodes with zero out-degree.
    pub isolated_fraction: f64,
    /// Gini coefficient of the degree distribution (0 = uniform,
    /// → 1 = all edges on one node); real power-law graphs sit ~0.5–0.8.
    pub gini: f64,
    /// Fraction of all edges owned by the top 1 % highest-degree nodes.
    pub top1pct_edge_share: f64,
}

impl DegreeStats {
    /// Computes the statistics of `graph`.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no nodes.
    pub fn compute(graph: &Csr) -> Self {
        assert!(graph.num_nodes() > 0, "empty graph has no statistics");
        let mut degrees: Vec<u64> = graph.nodes().map(|u| graph.degree(u)).collect();
        degrees.sort_unstable();
        let n = degrees.len();
        let num_edges: u64 = degrees.iter().sum();
        let mean = num_edges as f64 / n as f64;
        let median = degrees[n / 2];
        let max = *degrees.last().expect("non-empty");
        let isolated = degrees.iter().filter(|&&d| d == 0).count();

        // Gini over the sorted degree sequence.
        let gini = if num_edges == 0 {
            0.0
        } else {
            let weighted: f64 = degrees
                .iter()
                .enumerate()
                .map(|(i, &d)| (i as f64 + 1.0) * d as f64)
                .sum();
            (2.0 * weighted) / (n as f64 * num_edges as f64) - (n as f64 + 1.0) / n as f64
        };

        let top = (n / 100).max(1);
        let top_edges: u64 = degrees[n - top..].iter().sum();
        Self {
            num_nodes: n as u64,
            num_edges,
            mean,
            median,
            max,
            isolated_fraction: isolated as f64 / n as f64,
            gini,
            top1pct_edge_share: if num_edges == 0 {
                0.0
            } else {
                top_edges as f64 / num_edges as f64
            },
        }
    }
}

/// A log-2-bucketed degree histogram: `buckets[k]` counts nodes with
/// out-degree in `[2^k, 2^(k+1))`; bucket 0 additionally holds degree-0
/// and degree-1 nodes.
pub fn degree_histogram(graph: &Csr) -> Vec<u64> {
    let mut buckets: Vec<u64> = Vec::new();
    for u in graph.nodes() {
        let d = graph.degree(u);
        let bucket = if d <= 1 {
            0
        } else {
            63 - d.leading_zeros() as usize
        };
        if buckets.len() <= bucket {
            buckets.resize(bucket + 1, 0);
        }
        buckets[bucket] += 1;
    }
    buckets
}

/// Per-node reachability sample: the number of distinct nodes within
/// `hops` of `start` (BFS, capped at `cap` visits). Used to sanity-check
/// the neighbour-explosion behaviour of the generators.
pub fn neighborhood_size(graph: &Csr, start: NodeId, hops: usize, cap: usize) -> usize {
    let mut visited = std::collections::HashSet::from([start.0]);
    let mut frontier = vec![start.0];
    for _ in 0..hops {
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in graph.neighbors(NodeId(u)) {
                if visited.len() >= cap {
                    return visited.len();
                }
                if visited.insert(v) {
                    next.push(v);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    visited.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generate::rmat::{self, RmatConfig};

    fn star(n: u64) -> Csr {
        let mut b = GraphBuilder::new(n);
        for i in 1..n {
            b.push_edge(0, i);
        }
        b.build()
    }

    #[test]
    fn star_statistics() {
        let s = DegreeStats::compute(&star(100));
        assert_eq!(s.num_nodes, 100);
        assert_eq!(s.num_edges, 99);
        assert_eq!(s.max, 99);
        assert_eq!(s.median, 0);
        assert!((s.isolated_fraction - 0.99).abs() < 1e-12);
        assert!(
            s.gini > 0.95,
            "star should be maximally unequal: {}",
            s.gini
        );
        assert!((s.top1pct_edge_share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn regular_graph_has_zero_gini() {
        // Ring: every node has degree 1.
        let mut b = GraphBuilder::new(50);
        for i in 0..50 {
            b.push_edge(i, (i + 1) % 50);
        }
        let s = DegreeStats::compute(&b.build());
        assert!(s.gini.abs() < 1e-9, "ring gini {}", s.gini);
        assert_eq!(s.median, 1);
    }

    #[test]
    fn rmat_is_skewed_but_not_degenerate() {
        let g = rmat::generate(&RmatConfig::social(4_000, 40_000), 7);
        let s = DegreeStats::compute(&g);
        assert!(s.gini > 0.3, "R-MAT gini {}", s.gini);
        assert!(s.gini < 0.95);
        assert!(s.top1pct_edge_share > 0.05);
        assert!(s.max as f64 > 5.0 * s.mean);
    }

    #[test]
    fn histogram_counts_every_node() {
        let g = rmat::generate(&RmatConfig::social(1_000, 8_000), 9);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<u64>(), 1_000);
        // Power law: bucket counts decay towards the tail.
        assert!(h[0] + h[1] > *h.last().unwrap());
    }

    #[test]
    fn neighborhood_grows_with_hops_and_respects_cap() {
        let g = rmat::generate(&RmatConfig::social(2_000, 20_000), 11);
        let n1 = neighborhood_size(&g, NodeId(0), 1, usize::MAX);
        let n2 = neighborhood_size(&g, NodeId(0), 2, usize::MAX);
        assert!(n2 >= n1);
        let capped = neighborhood_size(&g, NodeId(0), 3, 50);
        assert!(capped <= 51);
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn empty_graph_rejected() {
        let _ = DegreeStats::compute(&Csr::empty(0));
    }
}
