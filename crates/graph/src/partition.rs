//! Train/validation/test node splits and per-GPU seed partitioning.

use crate::csr::NodeId;
use crate::rng::DeterministicRng;

/// A disjoint train/validation/test split over node IDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSplit {
    train: Vec<NodeId>,
    validation: Vec<NodeId>,
    test: Vec<NodeId>,
}

impl NodeSplit {
    /// Splits `num_nodes` nodes with the given train and validation
    /// fractions; the remainder is the test set. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the fractions are negative or sum above 1.
    pub fn stratified(num_nodes: u64, train_frac: f64, val_frac: f64, seed: u64) -> Self {
        assert!(
            train_frac >= 0.0 && val_frac >= 0.0 && train_frac + val_frac <= 1.0,
            "invalid split fractions train={train_frac} val={val_frac}"
        );
        let mut ids: Vec<u64> = (0..num_nodes).collect();
        let mut rng = DeterministicRng::seed(seed ^ 0x5917_ACE0_44D1_0C3B);
        rng.shuffle(&mut ids);
        let n_train = ((num_nodes as f64) * train_frac).round() as usize;
        let n_val = ((num_nodes as f64) * val_frac).round() as usize;
        let train = ids[..n_train].iter().map(|&i| NodeId(i)).collect();
        let validation = ids[n_train..(n_train + n_val).min(ids.len())]
            .iter()
            .map(|&i| NodeId(i))
            .collect();
        let test = ids[(n_train + n_val).min(ids.len())..]
            .iter()
            .map(|&i| NodeId(i))
            .collect();
        Self {
            train,
            validation,
            test,
        }
    }

    /// Training nodes.
    pub fn train(&self) -> &[NodeId] {
        &self.train
    }

    /// Validation nodes.
    pub fn validation(&self) -> &[NodeId] {
        &self.validation
    }

    /// Test nodes.
    pub fn test(&self) -> &[NodeId] {
        &self.test
    }

    /// Partitions the training nodes across `num_workers` simulated GPUs in
    /// round-robin order (how data-parallel samplers shard seed nodes).
    ///
    /// # Panics
    ///
    /// Panics if `num_workers == 0`.
    pub fn shard_train(&self, num_workers: usize) -> Vec<Vec<NodeId>> {
        assert!(num_workers > 0, "need at least one worker");
        let mut shards = vec![Vec::new(); num_workers];
        for (i, &node) in self.train.iter().enumerate() {
            shards[i % num_workers].push(node);
        }
        shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn split_is_disjoint_and_complete() {
        let s = NodeSplit::stratified(1000, 0.6, 0.2, 1);
        assert_eq!(s.train().len(), 600);
        assert_eq!(s.validation().len(), 200);
        assert_eq!(s.test().len(), 200);
        let all: HashSet<NodeId> = s
            .train()
            .iter()
            .chain(s.validation())
            .chain(s.test())
            .copied()
            .collect();
        assert_eq!(all.len(), 1000);
    }

    #[test]
    fn split_is_deterministic() {
        let a = NodeSplit::stratified(500, 0.5, 0.25, 9);
        let b = NodeSplit::stratified(500, 0.5, 0.25, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn split_is_shuffled() {
        let s = NodeSplit::stratified(1000, 0.5, 0.0, 2);
        let first_500: Vec<u64> = (0..500).collect();
        let train: Vec<u64> = s.train().iter().map(|n| n.0).collect();
        assert_ne!(train, first_500);
    }

    #[test]
    #[should_panic(expected = "invalid split fractions")]
    fn rejects_overfull_split() {
        let _ = NodeSplit::stratified(10, 0.8, 0.5, 0);
    }

    #[test]
    fn sharding_balances_and_covers() {
        let s = NodeSplit::stratified(100, 0.9, 0.0, 3);
        let shards = s.shard_train(4);
        assert_eq!(shards.len(), 4);
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        let total: usize = sizes.iter().sum();
        assert_eq!(total, 90);
    }

    #[test]
    fn zero_fraction_split() {
        let s = NodeSplit::stratified(10, 0.0, 0.0, 4);
        assert!(s.train().is_empty());
        assert_eq!(s.test().len(), 10);
    }
}
