//! Compressed sparse row (CSR) adjacency storage.
//!
//! Every sampler and simulated kernel in the workspace consumes this format:
//! an `offsets` array of length `n + 1` and a flat `targets` array holding
//! the out-neighbours of node `i` at `targets[offsets[i]..offsets[i + 1]]`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node in the *raw* (global) graph.
///
/// The paper calls these **global IDs**; after sampling they are remapped to
/// consecutive **local IDs** by the ID-map process (see `fastgl-sample`).
/// The public field mirrors the paper's treatment of IDs as plain integers —
/// `NodeId` is a passive value, not an abstraction boundary.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u64);

impl NodeId {
    /// The node's position when used as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u64 {
    fn from(v: NodeId) -> u64 {
        v.0
    }
}

/// Errors produced while validating or constructing a [`Csr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrError {
    /// `offsets` must start at zero.
    OffsetsMustStartAtZero,
    /// `offsets` must be monotonically non-decreasing.
    OffsetsNotMonotone {
        /// Index at which monotonicity is violated.
        at: usize,
    },
    /// The final offset must equal `targets.len()`.
    OffsetsTargetMismatch {
        /// Value of the final offset.
        last_offset: u64,
        /// Actual number of stored targets.
        targets_len: usize,
    },
    /// A target column index refers to a node that does not exist.
    TargetOutOfRange {
        /// The offending target value.
        target: u64,
        /// The number of nodes in the graph.
        num_nodes: u64,
    },
    /// `offsets` was empty (must contain at least the leading zero).
    EmptyOffsets,
}

impl fmt::Display for CsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsrError::OffsetsMustStartAtZero => write!(f, "offsets must start at zero"),
            CsrError::OffsetsNotMonotone { at } => {
                write!(f, "offsets decrease at index {at}")
            }
            CsrError::OffsetsTargetMismatch {
                last_offset,
                targets_len,
            } => write!(
                f,
                "last offset {last_offset} does not match targets length {targets_len}"
            ),
            CsrError::TargetOutOfRange { target, num_nodes } => {
                write!(f, "target {target} out of range for {num_nodes} nodes")
            }
            CsrError::EmptyOffsets => write!(f, "offsets array was empty"),
        }
    }
}

impl std::error::Error for CsrError {}

/// A directed graph in compressed sparse row form.
///
/// # Example
///
/// ```
/// use fastgl_graph::{Csr, NodeId};
///
/// // 0 -> 1, 0 -> 2, 2 -> 0
/// let g = Csr::from_parts(vec![0, 2, 2, 3], vec![1, 2, 0]).unwrap();
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.neighbors(NodeId(0)), &[1, 2]);
/// assert_eq!(g.degree(NodeId(1)), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    offsets: Vec<u64>,
    targets: Vec<u64>,
}

impl Csr {
    /// Builds a CSR from raw arrays, validating all structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a [`CsrError`] if the offsets are empty, do not start at
    /// zero, decrease anywhere, disagree with `targets.len()`, or if any
    /// target index is out of range.
    pub fn from_parts(offsets: Vec<u64>, targets: Vec<u64>) -> Result<Self, CsrError> {
        if offsets.is_empty() {
            return Err(CsrError::EmptyOffsets);
        }
        if offsets[0] != 0 {
            return Err(CsrError::OffsetsMustStartAtZero);
        }
        for i in 1..offsets.len() {
            if offsets[i] < offsets[i - 1] {
                return Err(CsrError::OffsetsNotMonotone { at: i });
            }
        }
        let last = *offsets.last().expect("non-empty");
        if last != targets.len() as u64 {
            return Err(CsrError::OffsetsTargetMismatch {
                last_offset: last,
                targets_len: targets.len(),
            });
        }
        let num_nodes = (offsets.len() - 1) as u64;
        if let Some(&bad) = targets.iter().find(|&&t| t >= num_nodes) {
            return Err(CsrError::TargetOutOfRange {
                target: bad,
                num_nodes,
            });
        }
        Ok(Self { offsets, targets })
    }

    /// An empty graph with `n` isolated nodes.
    pub fn empty(n: u64) -> Self {
        Self {
            offsets: vec![0; n as usize + 1],
            targets: Vec::new(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> u64 {
        (self.offsets.len() - 1) as u64
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Out-degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn degree(&self, u: NodeId) -> u64 {
        let i = u.index();
        self.offsets[i + 1] - self.offsets[i]
    }

    /// The out-neighbours of `u` as a slice of raw node indices.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[u64] {
        let i = u.index();
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterator over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes()).map(NodeId)
    }

    /// Iterator over all `(source, target)` edges in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, NodeId(v))))
    }

    /// Average out-degree.
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> u64 {
        (0..self.num_nodes())
            .map(|u| self.degree(NodeId(u)))
            .max()
            .unwrap_or(0)
    }

    /// Raw offsets array (length `num_nodes + 1`).
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Raw flat targets array (length `num_edges`).
    #[inline]
    pub fn targets(&self) -> &[u64] {
        &self.targets
    }

    /// Bytes needed to store the topology (offsets + targets) on a device.
    ///
    /// Used by the simulator's memory accounting (paper Tables 1 and 9).
    pub fn topology_bytes(&self) -> u64 {
        (self.offsets.len() + self.targets.len()) as u64 * std::mem::size_of::<u64>() as u64
    }

    /// Nodes sorted by descending out-degree.
    ///
    /// This is the ordering used by degree-based static feature caches
    /// (PaGraph and the optional FastGL cache): high-degree nodes are the
    /// most likely to be sampled, so they are cached first.
    pub fn nodes_by_degree_desc(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.nodes().collect();
        nodes.sort_by_key(|&u| std::cmp::Reverse(self.degree(u)));
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> {1, 2}, 1 -> {3}, 2 -> {3}, 3 -> {}
        Csr::from_parts(vec![0, 2, 3, 4, 4], vec![1, 2, 3, 3]).unwrap()
    }

    #[test]
    fn from_parts_accepts_valid() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn rejects_empty_offsets() {
        assert_eq!(Csr::from_parts(vec![], vec![]), Err(CsrError::EmptyOffsets));
    }

    #[test]
    fn rejects_nonzero_start() {
        assert_eq!(
            Csr::from_parts(vec![1, 2], vec![0, 0]),
            Err(CsrError::OffsetsMustStartAtZero)
        );
    }

    #[test]
    fn rejects_decreasing_offsets() {
        assert_eq!(
            Csr::from_parts(vec![0, 2, 1], vec![0, 0]),
            Err(CsrError::OffsetsNotMonotone { at: 2 })
        );
    }

    #[test]
    fn rejects_offset_target_mismatch() {
        assert_eq!(
            Csr::from_parts(vec![0, 3], vec![0, 0]),
            Err(CsrError::OffsetsTargetMismatch {
                last_offset: 3,
                targets_len: 2
            })
        );
    }

    #[test]
    fn rejects_out_of_range_target() {
        assert_eq!(
            Csr::from_parts(vec![0, 1], vec![5]),
            Err(CsrError::TargetOutOfRange {
                target: 5,
                num_nodes: 1
            })
        );
    }

    #[test]
    fn neighbors_and_degree_agree() {
        let g = diamond();
        for u in g.nodes() {
            assert_eq!(g.neighbors(u).len() as u64, g.degree(u));
        }
        assert_eq!(g.neighbors(NodeId(0)), &[1, 2]);
        assert_eq!(g.degree(NodeId(3)), 0);
    }

    #[test]
    fn edges_iterates_in_csr_order() {
        let g = diamond();
        let edges: Vec<_> = g.edges().map(|(u, v)| (u.0, v.0)).collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn zero_node_graph_average_degree_is_zero() {
        let g = Csr::empty(0);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn degree_ordering_descends() {
        let g = diamond();
        let order = g.nodes_by_degree_desc();
        assert_eq!(order[0], NodeId(0));
        let degs: Vec<u64> = order.iter().map(|&u| g.degree(u)).collect();
        let mut sorted = degs.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(degs, sorted);
    }

    #[test]
    fn topology_bytes_counts_both_arrays() {
        let g = diamond();
        assert_eq!(g.topology_bytes(), (5 + 4) * 8);
    }

    #[test]
    fn node_id_display_and_conversions() {
        let n = NodeId(42);
        assert_eq!(n.to_string(), "n42");
        assert_eq!(u64::from(n), 42);
        assert_eq!(NodeId::from(42u64), n);
        assert_eq!(n.index(), 42);
    }
}
