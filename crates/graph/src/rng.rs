//! A small, fully deterministic random number generator.
//!
//! The workspace needs bit-for-bit reproducible experiments across machines
//! and across versions of the `rand` crate, whose standard generators do not
//! guarantee a stable stream. We therefore ship our own xoshiro256\*\*
//! implementation seeded through SplitMix64 (the construction recommended by
//! the xoshiro authors) and expose it through [`rand::RngCore`] so all
//! of `rand`'s distributions remain usable.

use rand::RngCore;

/// SplitMix64 step used to expand a single `u64` seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256\*\* random number generator.
///
/// The stream produced by a given seed is stable forever, unlike
/// `rand::rngs::StdRng` whose algorithm may change between `rand` releases.
///
/// # Example
///
/// ```
/// use fastgl_graph::rng::DeterministicRng;
/// use rand::Rng;
///
/// let mut a = DeterministicRng::seed(42);
/// let mut b = DeterministicRng::seed(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterministicRng {
    s: [u64; 4],
}

impl DeterministicRng {
    /// Creates a generator from a single `u64` seed.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Derives an independent child generator, e.g. one per worker thread.
    ///
    /// The child stream is a deterministic function of the parent seed and
    /// `stream`, and children with different `stream` values are
    /// statistically independent.
    pub fn derive(&self, stream: u64) -> Self {
        let mut sm = self.s[0] ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Next raw 64-bit output of xoshiro256\*\*.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Widening multiply keeps the distribution unbiased enough for
        // simulation purposes (bias < 2^-64 * bound).
        let x = self.next();
        ((x as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn unit_f32(&mut self) -> f32 {
        (self.next() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Standard normal sample via Box–Muller.
    pub fn normal_f32(&mut self) -> f32 {
        let u1 = self.unit_f64().max(1e-12);
        let u2 = self.unit_f64();
        ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        let n = xs.len();
        for i in (1..n).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)`.
    ///
    /// Uses Floyd's algorithm; `O(k)` expected time, independent of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: u64, k: usize) -> Vec<u64> {
        assert!(k as u64 <= n, "cannot sample {k} distinct values from {n}");
        let mut chosen = std::collections::HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        for j in (n - k as u64)..n {
            let t = self.below(j + 1);
            let v = if chosen.insert(t) { t } else { j };
            if v != t {
                chosen.insert(v);
            }
            out.push(v);
        }
        out
    }
}

impl RngCore for DeterministicRng {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::seed(1);
        let mut b = DeterministicRng::seed(1);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DeterministicRng::seed(1);
        let mut b = DeterministicRng::seed(2);
        let same = (0..64).filter(|_| a.next() == b.next()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DeterministicRng::seed(3);
        for bound in [1u64, 2, 3, 17, 1000, u64::MAX] {
            for _ in 0..50 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_small_range() {
        let mut rng = DeterministicRng::seed(4);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = DeterministicRng::seed(5);
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut rng = DeterministicRng::seed(6);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal_f32() as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DeterministicRng::seed(7);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_distinct_is_distinct() {
        let mut rng = DeterministicRng::seed(8);
        let got = rng.sample_distinct(50, 20);
        assert_eq!(got.len(), 20);
        let set: std::collections::HashSet<_> = got.iter().collect();
        assert_eq!(set.len(), 20);
        assert!(got.iter().all(|&v| v < 50));
    }

    #[test]
    fn sample_distinct_full_range() {
        let mut rng = DeterministicRng::seed(9);
        let mut got = rng.sample_distinct(10, 10);
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn derive_produces_independent_streams() {
        let parent = DeterministicRng::seed(10);
        let mut c1 = parent.derive(0);
        let mut c2 = parent.derive(1);
        let mut c1b = parent.derive(0);
        assert_eq!(c1.next(), c1b.next());
        let same = (0..64).filter(|_| c1.next() == c2.next()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fill_bytes_deterministic_and_complete() {
        let mut a = DeterministicRng::seed(11);
        let mut b = DeterministicRng::seed(11);
        let mut buf_a = [0u8; 13];
        let mut buf_b = [0u8; 13];
        a.fill_bytes(&mut buf_a);
        b.fill_bytes(&mut buf_b);
        assert_eq!(buf_a, buf_b);
        assert!(buf_a.iter().any(|&x| x != 0));
    }
}
