//! Graph substrate for the FastGL reproduction.
//!
//! This crate provides everything FastGL needs to know about graphs:
//!
//! * [`Csr`] — a compact sparse-row adjacency structure with cheap
//!   neighbour iteration, the storage format used by every sampler and
//!   kernel in the workspace.
//! * [`GraphBuilder`] — edge-list ingestion (dedup, sort, symmetrise).
//! * [`generate`] — synthetic generators: an R-MAT generator for power-law
//!   graphs standing in for the paper's large benchmark graphs, and a
//!   planted-partition generator with correlated features and labels used
//!   for real convergence training (paper Fig. 16).
//! * [`datasets`] — a registry describing the five graphs of the paper's
//!   Table 6 (Reddit, Products, MAG, IGB-large, Papers100M) and producing
//!   deterministic scaled-down synthetic stand-ins.
//! * [`features`] — node feature stores, either *virtual* (sizes only, for
//!   timing simulation at scale) or *materialized* (real `f32` rows for
//!   training).
//! * [`partition`] — train/validation/test splits over nodes.
//! * [`rng`] — a small, fully deterministic xoshiro256** RNG so that every
//!   experiment in the workspace is reproducible bit-for-bit.
//!
//! # Example
//!
//! ```
//! use fastgl_graph::{datasets::Dataset, generate::rmat::RmatConfig, Csr};
//!
//! // A scaled-down synthetic stand-in for ogbn-products.
//! let bundle = Dataset::Products.generate_scaled(1.0 / 512.0, 7);
//! let graph: &Csr = &bundle.graph;
//! assert!(graph.num_nodes() > 0);
//! let deg0 = graph.degree(fastgl_graph::NodeId(0));
//! assert_eq!(graph.neighbors(fastgl_graph::NodeId(0)).len() as u64, deg0);
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod datasets;
pub mod features;
pub mod generate;
pub mod io;
pub mod partition;
pub mod rng;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::{Csr, NodeId};
pub use datasets::{Dataset, DatasetBundle, DatasetSpec};
pub use features::FeatureStore;
pub use partition::NodeSplit;
pub use rng::DeterministicRng;
pub use stats::DegreeStats;
