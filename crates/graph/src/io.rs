//! Graph serialisation: text edge lists and a compact binary CSR format.
//!
//! Lets users bring their own graphs (the library is not tied to the
//! synthetic generators) and lets expensive generated stand-ins be cached
//! on disk between runs.

use crate::builder::GraphBuilder;
use crate::csr::{Csr, CsrError};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes of the binary CSR format.
const MAGIC: &[u8; 8] = b"FASTGLv1";

/// Errors from graph I/O.
#[derive(Debug)]
pub enum GraphIoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A line of an edge list could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The binary file is not a FastGL CSR file or is truncated/corrupt.
    BadFormat(String),
    /// The decoded arrays do not form a valid CSR.
    InvalidCsr(CsrError),
}

impl std::fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "io error: {e}"),
            GraphIoError::Parse { line, content } => {
                write!(f, "cannot parse edge on line {line}: '{content}'")
            }
            GraphIoError::BadFormat(msg) => write!(f, "bad file format: {msg}"),
            GraphIoError::InvalidCsr(e) => write!(f, "invalid CSR payload: {e}"),
        }
    }
}

impl std::error::Error for GraphIoError {}

impl From<std::io::Error> for GraphIoError {
    fn from(e: std::io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

/// Reads a whitespace-separated `src dst` edge list (one edge per line;
/// `#`-prefixed lines and blank lines are ignored) into a CSR over
/// `num_nodes` nodes.
///
/// # Errors
///
/// Returns [`GraphIoError::Parse`] with the line number on malformed input.
pub fn read_edge_list<R: Read>(
    reader: R,
    num_nodes: u64,
    symmetric: bool,
) -> Result<Csr, GraphIoError> {
    let mut builder = GraphBuilder::new(num_nodes).symmetric(symmetric);
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |part: Option<&str>| -> Result<u64, GraphIoError> {
            part.and_then(|p| p.parse().ok())
                .ok_or_else(|| GraphIoError::Parse {
                    line: idx + 1,
                    content: trimmed.to_string(),
                })
        };
        let u = parse(parts.next())?;
        let v = parse(parts.next())?;
        builder.push_edge(u, v);
    }
    Ok(builder.build())
}

/// Writes a graph as a `src dst` edge list.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_edge_list<W: Write>(graph: &Csr, writer: W) -> Result<(), GraphIoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# fastgl edge list: {} nodes", graph.num_nodes())?;
    for (u, v) in graph.edges() {
        writeln!(w, "{} {}", u.0, v.0)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a graph in the compact binary CSR format.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csr_binary<W: Write>(graph: &Csr, writer: W) -> Result<(), GraphIoError> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&(graph.num_nodes()).to_le_bytes())?;
    w.write_all(&(graph.num_edges()).to_le_bytes())?;
    for &off in graph.offsets() {
        w.write_all(&off.to_le_bytes())?;
    }
    for &t in graph.targets() {
        w.write_all(&t.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a graph from the binary CSR format.
///
/// # Errors
///
/// Returns [`GraphIoError::BadFormat`] on wrong magic or truncation, and
/// [`GraphIoError::InvalidCsr`] if the payload violates CSR invariants.
pub fn read_csr_binary<R: Read>(reader: R) -> Result<Csr, GraphIoError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|_| GraphIoError::BadFormat("missing header".into()))?;
    if &magic != MAGIC {
        return Err(GraphIoError::BadFormat("wrong magic bytes".into()));
    }
    let read_u64 = |r: &mut BufReader<R>| -> Result<u64, GraphIoError> {
        let mut buf = [0u8; 8];
        r.read_exact(&mut buf)
            .map_err(|_| GraphIoError::BadFormat("truncated file".into()))?;
        Ok(u64::from_le_bytes(buf))
    };
    let num_nodes = read_u64(&mut r)?;
    let num_edges = read_u64(&mut r)?;
    if num_nodes > u32::MAX as u64 * 16 || num_edges > u32::MAX as u64 * 64 {
        return Err(GraphIoError::BadFormat("implausible header sizes".into()));
    }
    let mut offsets = Vec::with_capacity(num_nodes as usize + 1);
    for _ in 0..=num_nodes {
        offsets.push(read_u64(&mut r)?);
    }
    let mut targets = Vec::with_capacity(num_edges as usize);
    for _ in 0..num_edges {
        targets.push(read_u64(&mut r)?);
    }
    Csr::from_parts(offsets, targets).map_err(GraphIoError::InvalidCsr)
}

/// Convenience: saves a graph to `path` in binary CSR form.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save(graph: &Csr, path: &Path) -> Result<(), GraphIoError> {
    write_csr_binary(graph, std::fs::File::create(path)?)
}

/// Convenience: loads a binary CSR graph from `path`.
///
/// # Errors
///
/// See [`read_csr_binary`].
pub fn load(path: &Path) -> Result<Csr, GraphIoError> {
    read_csr_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::rmat::{self, RmatConfig};

    #[test]
    fn edge_list_round_trip() {
        let g = rmat::generate(&RmatConfig::social(200, 1_500), 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..], 200, false).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn edge_list_skips_comments_and_blanks() {
        let text = "# header\n\n0 1\n  2 3  \n# trailing\n";
        let g = read_edge_list(text.as_bytes(), 4, false).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_reports_bad_line() {
        let text = "0 1\nnot an edge\n";
        match read_edge_list(text.as_bytes(), 4, false) {
            Err(GraphIoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn edge_list_symmetric_mode() {
        let g = read_edge_list("0 1\n".as_bytes(), 2, true).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn binary_round_trip() {
        let g = rmat::generate(&RmatConfig::citation(500, 4_000), 5);
        let mut buf = Vec::new();
        write_csr_binary(&g, &mut buf).unwrap();
        let back = read_csr_binary(&buf[..]).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn binary_rejects_wrong_magic() {
        let buf = b"NOTAGRPH00000000".to_vec();
        assert!(matches!(
            read_csr_binary(&buf[..]),
            Err(GraphIoError::BadFormat(_))
        ));
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = rmat::generate(&RmatConfig::social(100, 500), 1);
        let mut buf = Vec::new();
        write_csr_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(matches!(
            read_csr_binary(&buf[..]),
            Err(GraphIoError::BadFormat(_))
        ));
    }

    #[test]
    fn file_save_load_round_trip() {
        let g = rmat::generate(&RmatConfig::social(150, 900), 9);
        let path = std::env::temp_dir().join("fastgl_io_test.csr");
        save(&g, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(g, back);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn error_display_is_informative() {
        let e = GraphIoError::Parse {
            line: 7,
            content: "x y".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }
}
