//! Edge-list ingestion: building a validated [`Csr`] from raw edges.

use crate::csr::Csr;
#[cfg(test)]
use crate::csr::NodeId;

/// Incrementally accumulates edges and produces a [`Csr`].
///
/// The builder sorts adjacency lists, optionally removes duplicate edges
/// and self loops, and optionally symmetrises the graph (adds the reverse
/// of every edge), which is how the undirected benchmark graphs of the
/// paper (e.g. Reddit, Products) are stored by DGL/PyG.
///
/// # Example
///
/// ```
/// use fastgl_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(3)
///     .dedup(true)
///     .symmetric(true)
///     .add_edge(0, 1)
///     .add_edge(0, 1) // duplicate, removed
///     .add_edge(1, 2)
///     .build();
/// assert_eq!(g.num_edges(), 4); // 0-1, 1-0, 1-2, 2-1
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_nodes: u64,
    edges: Vec<(u64, u64)>,
    dedup: bool,
    symmetric: bool,
    drop_self_loops: bool,
}

impl GraphBuilder {
    /// A builder for a graph over `num_nodes` nodes.
    pub fn new(num_nodes: u64) -> Self {
        Self {
            num_nodes,
            edges: Vec::new(),
            dedup: true,
            symmetric: false,
            drop_self_loops: true,
        }
    }

    /// Whether duplicate edges are removed (default `true`).
    pub fn dedup(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Whether every edge also inserts its reverse (default `false`).
    pub fn symmetric(mut self, yes: bool) -> Self {
        self.symmetric = yes;
        self
    }

    /// Whether self loops are dropped (default `true`).
    pub fn drop_self_loops(mut self, yes: bool) -> Self {
        self.drop_self_loops = yes;
        self
    }

    /// Adds one directed edge `u -> v`.
    ///
    /// Out-of-range endpoints are clamped into range by modulo, which lets
    /// generators produce raw 64-bit draws without range checks; callers
    /// inserting real data should pass valid indices.
    pub fn add_edge(mut self, u: u64, v: u64) -> Self {
        self.push_edge(u, v);
        self
    }

    /// Non-consuming variant of [`GraphBuilder::add_edge`] for loops.
    pub fn push_edge(&mut self, u: u64, v: u64) {
        debug_assert!(self.num_nodes > 0, "graph must have nodes");
        let u = u % self.num_nodes;
        let v = v % self.num_nodes;
        self.edges.push((u, v));
    }

    /// Adds many edges at once.
    pub fn extend_edges<I: IntoIterator<Item = (u64, u64)>>(mut self, iter: I) -> Self {
        for (u, v) in iter {
            self.push_edge(u, v);
        }
        self
    }

    /// Number of edges accumulated so far (before dedup/symmetrise).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalises the builder into a validated [`Csr`].
    ///
    /// # Panics
    ///
    /// Panics only if internal invariants are violated, which indicates a
    /// bug in this crate rather than bad user input (all user input is
    /// clamped in [`GraphBuilder::push_edge`]).
    pub fn build(self) -> Csr {
        let n = self.num_nodes;
        let mut edges = self.edges;
        if self.symmetric {
            let rev: Vec<(u64, u64)> = edges.iter().map(|&(u, v)| (v, u)).collect();
            edges.extend(rev);
        }
        if self.drop_self_loops {
            edges.retain(|&(u, v)| u != v);
        }
        edges.sort_unstable();
        if self.dedup {
            edges.dedup();
        }
        let mut offsets = vec![0u64; n as usize + 1];
        for &(u, _) in &edges {
            offsets[u as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let targets: Vec<u64> = edges.into_iter().map(|(_, v)| v).collect();
        Csr::from_parts(offsets, targets).expect("builder output must be structurally valid")
    }
}

/// Convenience: builds a symmetric CSR directly from an edge list.
pub fn csr_from_edges(num_nodes: u64, edges: &[(u64, u64)], symmetric: bool) -> Csr {
    GraphBuilder::new(num_nodes)
        .symmetric(symmetric)
        .extend_edges(edges.iter().copied())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_adjacency() {
        let g = GraphBuilder::new(4)
            .add_edge(0, 3)
            .add_edge(0, 1)
            .add_edge(0, 2)
            .build();
        assert_eq!(g.neighbors(NodeId(0)), &[1, 2, 3]);
    }

    #[test]
    fn dedup_removes_duplicates() {
        let g = GraphBuilder::new(2).add_edge(0, 1).add_edge(0, 1).build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn dedup_disabled_keeps_duplicates() {
        let g = GraphBuilder::new(2)
            .dedup(false)
            .add_edge(0, 1)
            .add_edge(0, 1)
            .build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn symmetric_adds_reverse_edges() {
        let g = GraphBuilder::new(3).symmetric(true).add_edge(0, 1).build();
        assert_eq!(g.neighbors(NodeId(0)), &[1]);
        assert_eq!(g.neighbors(NodeId(1)), &[0]);
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let g = GraphBuilder::new(2).add_edge(1, 1).add_edge(0, 1).build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn self_loops_kept_when_enabled() {
        let g = GraphBuilder::new(2)
            .drop_self_loops(false)
            .add_edge(1, 1)
            .build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(NodeId(1)), &[1]);
    }

    #[test]
    fn out_of_range_endpoints_wrap() {
        let g = GraphBuilder::new(3).add_edge(4, 5).build(); // 1 -> 2
        assert_eq!(g.neighbors(NodeId(1)), &[2]);
    }

    #[test]
    fn csr_from_edges_symmetric() {
        let g = csr_from_edges(3, &[(0, 1), (1, 2)], true);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(NodeId(1)), 2);
    }

    #[test]
    fn empty_builder_gives_empty_graph() {
        let g = GraphBuilder::new(7).build();
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.num_edges(), 0);
    }
}
