//! Node feature storage.
//!
//! Two representations exist because the workspace runs experiments at two
//! fidelities:
//!
//! * **Virtual** features carry only a dimensionality. Timing experiments
//!   (everything except the convergence study) only need to know *how many
//!   bytes* each feature row occupies when it crosses PCIe or the GPU memory
//!   hierarchy — materialising 100M × 1024 floats would be pointless.
//! * **Materialized** features hold real `f32` rows and are used when models
//!   actually train (paper Fig. 16 and the examples).

use crate::csr::NodeId;

/// Bytes per feature element; the paper's systems use FP32 throughout.
pub const BYTES_PER_ELEM: u64 = 4;

/// Node feature storage, either virtual (sizes only) or materialized.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureStore {
    dim: usize,
    data: Option<Vec<f32>>,
    num_rows: u64,
}

impl FeatureStore {
    /// A virtual store: `num_rows` rows of `dim` f32 elements that occupy
    /// space in the simulator but hold no actual values.
    pub fn virtual_store(num_rows: u64, dim: usize) -> Self {
        Self {
            dim,
            data: None,
            num_rows,
        }
    }

    /// A materialized store over a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `dim`, or `dim == 0`.
    pub fn materialized(data: Vec<f32>, dim: usize) -> Self {
        assert!(dim > 0, "feature dim must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "feature buffer length {} not a multiple of dim {}",
            data.len(),
            dim
        );
        let num_rows = (data.len() / dim) as u64;
        Self {
            dim,
            data: Some(data),
            num_rows,
        }
    }

    /// Feature dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of feature rows (= number of nodes).
    #[inline]
    pub fn num_rows(&self) -> u64 {
        self.num_rows
    }

    /// Whether real values are stored.
    #[inline]
    pub fn is_materialized(&self) -> bool {
        self.data.is_some()
    }

    /// The full flat buffer when materialized.
    pub fn as_slice(&self) -> Option<&[f32]> {
        self.data.as_deref()
    }

    /// One node's feature row when materialized.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn row(&self, node: NodeId) -> Option<&[f32]> {
        self.data.as_ref().map(|d| {
            let i = node.index() * self.dim;
            &d[i..i + self.dim]
        })
    }

    /// Bytes occupied by one feature row.
    #[inline]
    pub fn row_bytes(&self) -> u64 {
        self.dim as u64 * BYTES_PER_ELEM
    }

    /// Bytes occupied by the whole store.
    #[inline]
    pub fn total_bytes(&self) -> u64 {
        self.num_rows * self.row_bytes()
    }

    /// Gathers the rows of `nodes` into a dense row-major buffer — the CPU
    /// side "organise the data to be consecutive" step of the memory IO
    /// phase (paper §7(3)).
    ///
    /// Returns `None` for virtual stores.
    pub fn gather(&self, nodes: &[NodeId]) -> Option<Vec<f32>> {
        let data = self.data.as_ref()?;
        let mut out = Vec::with_capacity(nodes.len() * self.dim);
        for &n in nodes {
            let i = n.index() * self.dim;
            out.extend_from_slice(&data[i..i + self.dim]);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_store_reports_sizes() {
        let f = FeatureStore::virtual_store(100, 256);
        assert_eq!(f.dim(), 256);
        assert_eq!(f.num_rows(), 100);
        assert!(!f.is_materialized());
        assert_eq!(f.row_bytes(), 1024);
        assert_eq!(f.total_bytes(), 102_400);
        assert!(f.row(NodeId(0)).is_none());
        assert!(f.gather(&[NodeId(0)]).is_none());
        assert!(f.as_slice().is_none());
    }

    #[test]
    fn materialized_row_access() {
        let f = FeatureStore::materialized(vec![1.0, 2.0, 3.0, 4.0], 2);
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.row(NodeId(1)).unwrap(), &[3.0, 4.0]);
    }

    #[test]
    fn gather_concatenates_rows() {
        let f = FeatureStore::materialized(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2);
        let g = f.gather(&[NodeId(2), NodeId(0)]).unwrap();
        assert_eq!(g, vec![5.0, 6.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn materialized_rejects_ragged_buffer() {
        let _ = FeatureStore::materialized(vec![1.0, 2.0, 3.0], 2);
    }

    #[test]
    #[should_panic(expected = "dim must be positive")]
    fn materialized_rejects_zero_dim() {
        let _ = FeatureStore::materialized(vec![], 0);
    }
}
